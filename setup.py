"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that editable installs also work in offline environments whose
tooling lacks the ``wheel`` package (``python setup.py develop``).
"""

from setuptools import setup

setup()
