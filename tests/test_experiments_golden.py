"""Fixed-seed golden tests: the legacy wrappers stay bit-identical.

``tests/golden/experiment_rows.json`` was captured from the pre-registry
experiment functions (the hand-rolled serial loops) at small parameter
grids and fixed master seeds.  Every wrapper in
:mod:`repro.analysis.experiments` — and therefore the registry path it
delegates to — must keep reproducing those rows exactly, bit for bit.
Regenerate the fixture only on a deliberate, documented behaviour change.
"""

import json
import os

import pytest

from repro.analysis import experiments as legacy
from repro.experiments import get_experiment

GOLDEN_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden", "experiment_rows.json")

WRAPPERS = {
    "E1": legacy.run_feasibility_experiment,
    "E2": legacy.run_exponential_rounds_experiment,
    "E3": legacy.run_lower_bound_experiment,
    "E4": legacy.run_crash_forgetful_experiment,
    "E5": legacy.run_committee_experiment,
    "E6": legacy.run_baseline_experiment,
    "E7": legacy.run_threshold_ablation,
    "E8": legacy.run_constants_experiment,
}


def _golden():
    with open(GOLDEN_PATH) as handle:
        return json.load(handle)


def _params(raw):
    return {key: (tuple(value) if isinstance(value, list) else value)
            for key, value in raw.items()}


@pytest.mark.parametrize("name", sorted(WRAPPERS))
def test_legacy_wrapper_rows_bit_identical(name):
    golden = _golden()[name]
    rows = WRAPPERS[name](**_params(golden["params"]))
    assert rows == golden["rows"]


@pytest.mark.parametrize("name", ["E2", "E6"])
def test_registry_run_matches_wrapper_rows(name):
    """The registry path and the wrapper path are the same code path."""
    golden = _golden()[name]
    params = _params(golden["params"])
    assert get_experiment(name).run(params=params, workers=0) \
        == golden["rows"]
