"""Unit tests for the analytic running-time model (Section 3 analysis)."""


import pytest

from repro.core.analysis import (binomial_tail_at_least,
                                 expected_windows_curve,
                                 exponential_growth_rate,
                                 probability_all_coins_agree,
                                 split_vote_analysis,
                                 unanimous_decision_windows)
from repro.core.thresholds import default_thresholds, max_tolerable_t


class TestBinomialTail:
    def test_extreme_cases(self):
        assert binomial_tail_at_least(10, 0) == 1.0
        assert binomial_tail_at_least(10, -3) == 1.0
        assert binomial_tail_at_least(10, 11) == 0.0

    def test_matches_direct_computation(self):
        # P[Binomial(4, 1/2) >= 3] = (4 + 1) / 16.
        assert binomial_tail_at_least(4, 3) == pytest.approx(5 / 16)

    def test_monotone_in_threshold(self):
        tails = [binomial_tail_at_least(20, k) for k in range(0, 21)]
        assert tails == sorted(tails, reverse=True)


class TestCoinAgreement:
    def test_probability_all_coins_agree(self):
        assert probability_all_coins_agree(1) == 1.0
        assert probability_all_coins_agree(3) == pytest.approx(0.25)
        assert probability_all_coins_agree(10) == pytest.approx(2 ** -9)

    def test_unanimous_decision_takes_one_window(self):
        assert unanimous_decision_windows() == 1


class TestSplitVoteAnalysis:
    def test_expected_windows_exceed_one(self):
        analysis = split_vote_analysis(default_thresholds(24, 3))
        assert analysis.escape_probability <= 1.0
        assert analysis.expected_windows > 1.0

    def test_expected_windows_grow_with_n_at_fixed_fraction(self):
        configs = []
        for n in (18, 24, 30, 36, 48):
            t = max_tolerable_t(n)
            configs.append(default_thresholds(n, t))
        curve = expected_windows_curve(configs)
        assert all(b >= a * 0.8 for a, b in zip(curve, curve[1:]))
        assert curve[-1] > curve[0]

    def test_growth_rate_is_positive(self):
        configs = [default_thresholds(n, max_tolerable_t(n))
                   for n in (18, 24, 30, 36, 48, 60)]
        rate = exponential_growth_rate(configs)
        assert rate > 0

    def test_growth_rate_requires_two_points(self):
        with pytest.raises(ValueError):
            exponential_growth_rate([default_thresholds(24, 3)])

    def test_fast_decide_thresholds_beat_the_defaults(self):
        """The paper's remark: a smaller T2/T3 improves running time."""
        from repro.core.thresholds import fast_decide_thresholds

        default = split_vote_analysis(default_thresholds(36, 5))
        fast = split_vote_analysis(fast_decide_thresholds(36, 5))
        assert fast.expected_windows <= default.expected_windows
