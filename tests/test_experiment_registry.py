"""Registry-completeness tests for the declarative experiment layer.

Every registered experiment must run end to end at a smoke-sized grid and
emit rows matching its declared schema; lookups must work by canonical
name and by slug, case-insensitively; and the quick overrides must stay
inside each experiment's parameter space.
"""

import random

import pytest

from repro.experiments import (available_experiments, get_experiment,
                               register)
from repro.experiments.base import Experiment

# Smoke-sized grids: small enough for the tier-1 suite, large enough to
# produce at least one row per experiment.
SMOKE_PARAMS = {
    "E1": {"ns": (12,), "trials": 1, "max_windows": 2000, "seed": 5},
    "E2": {"ns": (12,), "trials": 1, "seed": 5},
    "E3": {"ns": (8,), "samples": 2, "separation_trials": 2, "seed": 5},
    "E4": {"ns": (9,), "trials": 1, "seed": 5},
    "E5": {"ns": (32,), "trials": 5, "seed": 5},
    "E6": {"ben_or_ns": (9,), "bracha_ns": (7,), "trials": 1, "seed": 5},
    "E7": {"n": 18, "trials": 1, "max_windows": 600, "seed": 5},
    "E8": {"cs": (0.1,), "ns": (50,), "seed": 5},
    "E9": {"generations": 2, "population": 2, "windows": 20, "seed": 5},
}


def test_every_experiment_is_registered():
    names = [experiment.name for experiment in available_experiments()]
    assert names == ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9"]
    assert len(SMOKE_PARAMS) == len(names)


@pytest.mark.parametrize("name", sorted(SMOKE_PARAMS))
def test_experiment_runs_and_rows_match_schema(name):
    experiment = get_experiment(name)
    rows = experiment.run(params=SMOKE_PARAMS[name], workers=0)
    assert rows, f"{name} produced no rows"
    schema = set(experiment.row_schema)
    for row in rows:
        assert set(row) == schema, \
            f"{name} row keys {sorted(row)} != schema {sorted(schema)}"


@pytest.mark.parametrize("name", sorted(SMOKE_PARAMS))
def test_cells_are_one_to_one_with_data_rows(name):
    experiment = get_experiment(name)
    cells = experiment.cells(params=SMOKE_PARAMS[name])
    rows = experiment.run(params=SMOKE_PARAMS[name], workers=0)
    data_rows = [row for row in rows
                 if not str(row["experiment"]).endswith("-fit")]
    assert len(cells) == len(data_rows)
    # Cell keys are unique — the results store keys resume on them.
    keys = [tuple(cell.key) for cell in cells]
    assert len(keys) == len(set(keys))


def test_lookup_by_slug_and_case_insensitive():
    assert get_experiment("feasibility") is get_experiment("E1")
    assert get_experiment("e2") is get_experiment("E2")
    assert get_experiment("Threshold-Ablation") is get_experiment("E7")


def test_unknown_experiment_raises_with_known_names():
    with pytest.raises(KeyError, match="known experiments: E1"):
        get_experiment("E99")


def test_unknown_parameter_rejected():
    with pytest.raises(ValueError, match="unknown parameter"):
        get_experiment("E2").resolve_params({"bogus": 1})


def test_quick_overrides_stay_inside_the_parameter_space():
    for experiment in available_experiments():
        assert set(experiment.quick_overrides) <= set(experiment.defaults)
        assert "seed" in experiment.defaults


def test_duplicate_registration_rejected():
    experiment = get_experiment("E1")
    with pytest.raises(ValueError, match="already registered"):
        register(experiment)


def test_quick_run_equals_explicit_quick_params():
    experiment = get_experiment("E8")
    quick_rows = experiment.run(quick=True, workers=0)
    explicit = experiment.run(
        params=experiment.resolve_params(quick=True), workers=0)
    assert quick_rows == explicit


def test_seed_draw_order_is_independent_of_execution():
    """Building cells twice draws identical seeds (pure grid expansion)."""
    experiment = get_experiment("E2")
    params = SMOKE_PARAMS["E2"]
    merged = experiment.resolve_params(params)
    cells_a = experiment.build_cells(merged, random.Random(merged["seed"]))
    cells_b = experiment.build_cells(merged, random.Random(merged["seed"]))
    specs_a = [spec for cell in cells_a for spec in cell.specs]
    specs_b = [spec for cell in cells_b for spec in cell.specs]
    assert specs_a == specs_b


def test_experiment_dataclass_is_frozen():
    with pytest.raises(Exception):
        get_experiment("E1").name = "X"  # type: ignore[misc]


def test_workers_do_not_change_rows():
    experiment = get_experiment("E4")
    params = SMOKE_PARAMS["E4"]
    assert experiment.run(params=params, workers=0) \
        == experiment.run(params=params, workers=2)


def test_registry_experiment_type():
    for experiment in available_experiments():
        assert isinstance(experiment, Experiment)
