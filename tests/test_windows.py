"""Unit tests for acceptable windows and the window engine."""

import pytest

from repro.adversaries.benign import BenignAdversary, SilencingAdversary
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.protocols.base import ProtocolFactory
from repro.simulation.errors import InvalidWindowError
from repro.simulation.windows import (WindowAdversary, WindowEngine,
                                      WindowSpec, run_execution)


def make_engine(n=13, t=2, inputs=None, seed=11, record=False):
    factory = ProtocolFactory(ResetTolerantAgreement, n=n, t=t)
    if inputs is None:
        inputs = [pid % 2 for pid in range(n)]
    return WindowEngine(factory, inputs, seed=seed,
                        record_configurations=record)


class TestWindowSpec:
    def test_full_delivery(self):
        spec = WindowSpec.full_delivery(5)
        assert len(spec.senders_for) == 5
        assert all(senders == frozenset(range(5))
                   for senders in spec.senders_for)
        assert spec.resets == frozenset()
        spec.validate(5, 1)

    def test_uniform(self):
        senders = frozenset({0, 1, 2})
        spec = WindowSpec.uniform(4, senders, resets=frozenset({3}))
        assert all(s == senders for s in spec.senders_for)
        spec.validate(4, 1)

    def test_validate_rejects_small_sender_set(self):
        spec = WindowSpec.uniform(5, frozenset({0, 1}))
        with pytest.raises(InvalidWindowError):
            spec.validate(5, 1)

    def test_validate_rejects_too_many_resets(self):
        spec = WindowSpec.uniform(5, frozenset(range(5)),
                                  resets=frozenset({0, 1}))
        with pytest.raises(InvalidWindowError):
            spec.validate(5, 1)

    def test_validate_rejects_wrong_length(self):
        spec = WindowSpec(senders_for=(frozenset(range(5)),) * 4)
        with pytest.raises(InvalidWindowError):
            spec.validate(5, 1)

    def test_validate_rejects_out_of_range_identities(self):
        spec = WindowSpec.uniform(5, frozenset({0, 1, 2, 3, 9}))
        with pytest.raises(InvalidWindowError):
            spec.validate(5, 1)
        spec = WindowSpec.uniform(5, frozenset(range(5)),
                                  resets=frozenset({9}))
        with pytest.raises(InvalidWindowError):
            spec.validate(5, 1)


class TestWindowEngine:
    def test_run_window_counts_windows_and_messages(self):
        engine = make_engine()
        engine.run_window(WindowSpec.full_delivery(engine.n))
        assert engine.window_index == 1
        assert engine.network.sent_count == engine.n * engine.n

    def test_unanimous_inputs_decide_in_first_window(self):
        engine = make_engine(inputs=[1] * 13)
        engine.run_window(WindowSpec.full_delivery(engine.n))
        assert engine.any_decided()
        assert engine.all_live_decided()
        assert set(engine.outputs()) == {1}

    def test_reset_applies_and_counts(self):
        engine = make_engine()
        spec = WindowSpec.uniform(engine.n, frozenset(range(engine.n)),
                                  resets=frozenset({0, 1}))
        engine.run_window(spec)
        assert engine.total_resets == 2
        assert engine.processors[0].protocol.reset_count == 1
        assert engine.processors[2].protocol.reset_count == 0

    def test_record_configurations(self):
        engine = make_engine(record=True)
        assert len(engine.configurations) == 1  # initial snapshot
        engine.run_window(WindowSpec.full_delivery(engine.n))
        assert len(engine.configurations) == 2

    def test_configuration_reflects_inputs(self):
        engine = make_engine(inputs=[0] * 13)
        config = engine.configuration()
        assert config.inputs() == tuple([0] * 13)

    def test_clone_is_independent(self):
        engine = make_engine()
        clone = engine.clone()
        clone.run_window(WindowSpec.full_delivery(engine.n))
        assert engine.window_index == 0
        assert clone.window_index == 1

    def test_reseed_changes_randomness(self):
        engine = make_engine()
        clone_a = engine.clone()
        clone_b = engine.clone()
        clone_a.reseed(1)
        clone_b.reseed(2)
        draws_a = [p.protocol.rng.random() for p in clone_a.processors]
        draws_b = [p.protocol.rng.random() for p in clone_b.processors]
        assert draws_a != draws_b


class TestRun:
    def test_run_with_benign_adversary_terminates_and_agrees(self):
        engine = make_engine()
        result = engine.run(BenignAdversary(), max_windows=50,
                            stop_when="all")
        assert result.all_live_decided
        assert result.agreement_ok
        assert result.validity_ok

    def test_run_stop_when_first(self):
        engine = make_engine()
        result = engine.run(BenignAdversary(), max_windows=50,
                            stop_when="first")
        assert result.decided
        assert result.first_decision_window is not None

    def test_run_rejects_bad_stop_condition(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.run(BenignAdversary(), max_windows=5, stop_when="never")

    def test_run_respects_max_windows(self):
        class StallingAdversary(WindowAdversary):
            def next_window(self, engine):
                # Keep silencing different processors; the protocol still
                # progresses but we only check the cap here.
                return WindowSpec.full_delivery(engine.n)

        engine = make_engine(inputs=[0] * 13)
        result = engine.run(StallingAdversary(), max_windows=3,
                            stop_when="all")
        assert result.windows_elapsed <= 3

    def test_run_execution_helper(self):
        result = run_execution(ResetTolerantAgreement, n=13, t=2,
                               inputs=[1] * 13,
                               adversary=BenignAdversary(), max_windows=20,
                               seed=5)
        assert result.correct
        assert result.all_live_decided

    def test_silencing_adversary_still_terminates(self):
        result = run_execution(ResetTolerantAgreement, n=13, t=2,
                               inputs=[pid % 2 for pid in range(13)],
                               adversary=SilencingAdversary(),
                               max_windows=4000, seed=5)
        assert result.all_live_decided
        assert result.agreement_ok


class TestResultSummaries:
    def test_result_summary_fields(self):
        engine = make_engine(inputs=[1] * 13)
        result = engine.run(BenignAdversary(), max_windows=10)
        summary = result.summary()
        assert summary["n"] == 13
        assert summary["decided"] is True
        assert summary["agreement_ok"] is True
        assert summary["first_decision_window"] == 1

    def test_running_time_windows(self):
        engine = make_engine(inputs=[1] * 13)
        result = engine.run(BenignAdversary(), max_windows=10)
        assert result.running_time_windows() == 1
