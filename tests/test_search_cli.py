"""CLI tests for `repro search`, `repro replay` and the list flags."""

import json
import os


from repro.cli import main
from repro.results import RunStore
from repro.search import SEARCH_EXPERIMENT, resolve_search_params
from repro.verification import save_counterexample
from repro.verification.shrink import ReplaySetup
from repro.simulation.windows import WindowSpec


def _search_args(out, extra=()):
    return ["search", "--generations", "3", "--population", "4",
            "--windows", "40", "--workers", "0", "--seed", "3",
            "--out", out, *extra]


class TestSearchCli:
    def test_campaign_runs_resumes_and_shows(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(_search_args(out)) == 0
        first = capsys.readouterr().out
        assert "0 cached + 12 computed" in first
        assert "best score:" in first
        assert "best-schedule.json" in first
        # Rerunning the identical campaign resumes fully from cache.
        assert main(_search_args(out)) == 0
        assert "12 cached + 0 computed" in capsys.readouterr().out
        assert main(["show", "search", "--out", out]) == 0
        rendered = capsys.readouterr().out
        assert "search run" in rendered
        assert "generation" in rendered

    def test_campaign_artifact_replays_clean(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(_search_args(out)) == 0
        capsys.readouterr()
        params = resolve_search_params(generations=3, population=4,
                                       windows=40, seed=3)
        store = RunStore.open(out, SEARCH_EXPERIMENT, params)
        artifact = os.path.join(store.path, "best-schedule.json")
        assert os.path.isfile(artifact)
        assert main(["replay", artifact]) == 0
        printed = capsys.readouterr().out
        assert "invariant verdict: OK" in printed

    def test_no_store_mode_persists_nothing(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["search", "--generations", "2", "--population", "2",
                     "--windows", "20", "--workers", "0",
                     "--no-store"]) == 0
        assert not os.path.exists(tmp_path / "results")

    def test_violating_search_exits_one(self, tmp_path, capsys,
                                        buggy_protocol):
        out = str(tmp_path / "results")
        assert main(["search", "--protocol", buggy_protocol, "--n", "9",
                     "--objective", "invariant-violation",
                     "--generations", "2", "--population", "4",
                     "--windows", "12", "--workers", "0",
                     "--out", out]) == 1
        printed = capsys.readouterr().out
        assert "invariant-violating candidate(s)" in printed
        assert "counterexamples/gen-" in printed

    def test_bad_search_arguments_exit_two(self, capsys):
        assert main(["search", "--strategy", "nope", "--no-store"]) == 2
        assert "unknown search strategy" in capsys.readouterr().err
        assert main(["search", "--objective", "nope", "--no-store"]) == 2
        assert "unknown objective" in capsys.readouterr().err
        assert main(["search", "--n", "4", "--no-store"]) == 2
        assert "tolerates no faults" in capsys.readouterr().err

    def test_unsupported_objective_is_a_usage_error(self, tmp_path,
                                                    capsys):
        # vote-margin needs the estimate hook Bracha does not expose;
        # this must be a usage error, not a traceback after the run
        # directory was already created.
        out = str(tmp_path / "results")
        assert main(["search", "--objective", "vote-margin",
                     "--protocol", "bracha", "--n", "7",
                     "--out", out]) == 2
        assert "estimate_from_fingerprint" in capsys.readouterr().err
        assert not os.path.exists(out)


class TestReplayCli:
    def test_replays_a_violating_counterexample(self, tmp_path, capsys,
                                                buggy_protocol):
        # A hand-made counterexample: the eager-bug protocol violates
        # agreement under one benign full-delivery window.
        n = 9
        setup = ReplaySetup(protocol=buggy_protocol, n=n, t=1,
                            inputs=tuple(pid % 2 for pid in range(n)),
                            seed=1)
        path = str(tmp_path / "cex.json")
        save_counterexample(path, setup, [WindowSpec.full_delivery(n)],
                            ["agreement: conflicting decisions"])
        assert main(["replay", path]) == 1
        printed = capsys.readouterr().out
        assert "invariant verdict: VIOLATED" in printed
        assert "agreement" in printed

    def test_missing_and_malformed_artifacts_exit_two(self, tmp_path,
                                                      capsys):
        assert main(["replay", str(tmp_path / "absent.json")]) == 2
        assert "no schedule artifact" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "an artifact"}))
        assert main(["replay", str(bad)]) == 2
        assert "not a schedule artifact" in capsys.readouterr().err
        # Valid JSON that is not an object (e.g. a rows.jsonl line
        # pasted by mistake) is a usage error too, not a traceback.
        not_object = tmp_path / "list.json"
        not_object.write_text("[]")
        assert main(["replay", str(not_object)]) == 2
        assert "not a schedule artifact" in capsys.readouterr().err


class TestListFlags:
    def test_lists_adversaries_and_strategies(self, capsys):
        assert main(["list", "--adversaries"]) == 0
        printed = capsys.readouterr().out
        assert "replay-schedule" in printed
        assert "schedule-fuzzer" in printed
        assert "equivocate" in printed

    def test_lists_protocols_with_fault_models(self, capsys):
        assert main(["list", "--protocols"]) == 0
        printed = capsys.readouterr().out
        assert "reset-tolerant" in printed
        assert "strongly adaptive" in printed
        assert "bracha" in printed

    def test_e9_is_registered_and_documented(self, capsys):
        assert main(["list"]) == 0
        assert "adversary-search" in capsys.readouterr().out
        assert main(["list", "--doc"]) == 0
        doc = capsys.readouterr().out
        assert "## E9" in doc
