"""Unit tests for the committee-election contrast protocol (E5 substrate)."""

import pytest

from repro.protocols.committee import (CommitteeElectionProtocol,
                                       CommitteeRunResult, failure_rate)
from repro.workloads.inputs import split, unanimous


class TestConstruction:
    def test_rejects_tiny_networks(self):
        with pytest.raises(ValueError):
            CommitteeElectionProtocol(n=3, t=1)

    def test_rejects_bad_fault_bound(self):
        with pytest.raises(ValueError):
            CommitteeElectionProtocol(n=16, t=16)

    def test_committee_size_is_polylogarithmic(self):
        small = CommitteeElectionProtocol(n=32, t=5)
        large = CommitteeElectionProtocol(n=1024, t=100)
        assert small.committee_size >= 4
        assert large.committee_size <= 3 * 11  # 3 * log2(1024) + rounding
        assert large.committee_size > small.committee_size / 4


class TestRuns:
    def test_run_rejects_wrong_input_length(self):
        protocol = CommitteeElectionProtocol(n=32, t=5)
        with pytest.raises(ValueError):
            protocol.run([0] * 5)

    def test_no_corruption_is_correct_and_fast(self):
        protocol = CommitteeElectionProtocol(n=64, t=10)
        result = protocol.run(split(64), corrupted=set(), seed=1)
        assert isinstance(result, CommitteeRunResult)
        assert result.correct
        assert result.decided
        assert result.decision in (0, 1)
        assert result.communication_rounds < 64

    def test_unanimous_inputs_yield_the_common_value_when_honest(self):
        protocol = CommitteeElectionProtocol(n=64, t=10)
        result = protocol.run(unanimous(64, 1), corrupted=set(), seed=3)
        assert result.decision == 1

    def test_explicit_corrupted_set_over_budget_rejected(self):
        protocol = CommitteeElectionProtocol(n=32, t=2)
        with pytest.raises(ValueError):
            protocol.run(split(32), corrupted=set(range(5)))

    def test_adaptive_adversary_corrupts_final_committee(self):
        protocol = CommitteeElectionProtocol(n=64, t=20)
        result = protocol.run(split(64), adaptive=True, seed=5)
        assert result.final_corrupted_fraction >= 1 / 3
        assert not result.correct

    def test_rounds_grow_slowly_with_n(self):
        rounds = []
        for n in (32, 128, 512):
            protocol = CommitteeElectionProtocol(n=n, t=max(1, n // 10))
            result = protocol.run(split(n), corrupted=set(), seed=7)
            rounds.append(result.communication_rounds)
        # Polylogarithmic growth: far slower than linear in n.
        assert rounds[-1] < 32
        assert rounds[-1] <= rounds[0] * 4


class TestFailureRates:
    def test_adaptive_fails_much_more_often_than_nonadaptive(self):
        protocol = CommitteeElectionProtocol(n=64, t=12)
        nonadaptive = failure_rate(protocol, split(64), trials=30,
                                   adaptive=False, seed=11)
        adaptive = failure_rate(protocol, split(64), trials=30,
                                adaptive=True, seed=11)
        assert adaptive >= 0.9
        assert nonadaptive < adaptive

    def test_zero_faults_never_fail(self):
        protocol = CommitteeElectionProtocol(n=32, t=1)
        rate = failure_rate(protocol, unanimous(32, 0), trials=20,
                            adaptive=False, seed=2)
        assert rate <= 0.1
