"""Unit tests for the staticcheck linter machinery itself.

The fixture corpus (``test_staticcheck_fixtures.py``) pins each check's
end-to-end behaviour; these tests cover the plumbing — suppression
parsing and application, code selection, rendering, and the symbol
index's cross-file lookups over the real tree.
"""

import json

import pytest

from repro.staticcheck import (CHECK_CODES, SLOTS_MANIFEST, SymbolIndex,
                               default_package_root, default_tests_root,
                               expand_code_selection, project_scenarios,
                               run_lint)
from repro.staticcheck.report import (Finding, LintResult,
                                      apply_suppressions, filter_findings,
                                      parse_suppressions)
from repro.staticcheck.walker import walk_project


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------
def test_parse_suppression_with_justification():
    lines = ["x = rng.random()  # repro: allow[D1] -- injected stream"]
    (suppression,) = parse_suppressions(lines)
    assert suppression.codes == ("D1",)
    assert suppression.justified
    assert suppression.line == 1


def test_comment_only_suppression_covers_the_next_line():
    lines = ["# repro: allow[D3, D4] -- sentinel compare on sorted data",
             "value = compute()"]
    (suppression,) = parse_suppressions(lines)
    assert suppression.line == 2
    assert suppression.codes == ("D3", "D4")


def test_unjustified_suppression_becomes_x1():
    lines = ["value = 1  # repro: allow[D1]"]
    suppressions = {"mod.py": parse_suppressions(lines)}
    finding = Finding(code="D1", path="mod.py", line=1, message="boom")
    kept = apply_suppressions([finding], suppressions)
    # The D1 finding is silenced, but the bare suppression is flagged.
    assert [f.code for f in kept] == ["X1"]


def test_family_letter_suppresses_the_whole_family():
    lines = ["value = 1  # repro: allow[D] -- whole-family exemption"]
    suppressions = {"mod.py": parse_suppressions(lines)}
    findings = [Finding(code="D1", path="mod.py", line=1, message="a"),
                Finding(code="D4", path="mod.py", line=1, message="b"),
                Finding(code="P1", path="mod.py", line=1, message="c")]
    kept = apply_suppressions(findings, suppressions)
    assert [f.code for f in kept] == ["P1"]


def test_suppression_only_covers_its_own_line():
    lines = ["value = 1  # repro: allow[D1] -- here only", "other = 2"]
    suppressions = {"mod.py": parse_suppressions(lines)}
    finding = Finding(code="D1", path="mod.py", line=2, message="boom")
    assert apply_suppressions([finding], suppressions) == [finding]


# ----------------------------------------------------------------------
# Selection and rendering.
# ----------------------------------------------------------------------
def test_expand_code_selection_accepts_codes_and_families():
    assert expand_code_selection("D1,P3") == {"D1", "P3"}
    expanded = expand_code_selection("D")
    assert expanded == {"D1", "D2", "D3", "D4", "D5", "D6"}
    assert expand_code_selection(None) is None


def test_expand_code_selection_rejects_unknown_tokens():
    with pytest.raises(ValueError, match="unknown check code"):
        expand_code_selection("Q7")


def test_filter_findings_select_then_ignore():
    findings = [Finding(code="D1", path="a.py", line=1, message="m"),
                Finding(code="P1", path="a.py", line=2, message="m")]
    assert [f.code for f in filter_findings(findings,
                                            select={"D1", "P1"},
                                            ignore={"P1"})] == ["D1"]


def test_json_rendering_round_trips():
    result = LintResult(
        findings=[Finding(code="D1", path="a.py", line=3, message="m")],
        files_scanned=7)
    payload = json.loads(result.render_json())
    assert payload["finding_count"] == 1
    assert payload["findings"][0]["code"] == "D1"
    assert payload["findings"][0]["line"] == 3
    assert payload["files_scanned"] == 7


def test_every_code_has_a_description():
    for code, description in CHECK_CODES.items():
        assert description, code


# ----------------------------------------------------------------------
# The symbol index over the real tree.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def real_index():
    project = walk_project(default_package_root(), default_tests_root())
    return SymbolIndex(project)


def test_trace_event_kinds_match_the_engines(real_index):
    kinds = real_index.trace_event_kinds()
    assert set(kinds.values()) == {"send", "deliver", "reset", "crash",
                                   "decide"}


def test_step_type_members_are_found(real_index):
    assert set(real_index.step_type_members()) == {"SEND", "RECEIVE",
                                                   "RESET", "CRASH"}


def test_mutation_operators_are_discovered(real_index):
    operators = set(real_index.mutation_operators())
    assert {"perturb_delivery", "relocate_resets", "relocate_crashes",
            "flip_deliver_last", "splice", "regrow_tail",
            "mutate"} <= operators
    assert not any(name.startswith("_") for name in operators)


def test_subclass_closure_finds_transitive_adversaries(real_index):
    names = {info.name for info
             in real_index.subclasses_of("WindowAdversary")}
    # CrashSplitVoteAdversary subclasses SplitVoteAdversary, two hops
    # from the root.
    assert "CrashSplitVoteAdversary" in names


def test_scenario_tables_parse_statistically(real_index):
    tables = real_index.scenario_tables()
    assert tables is not None
    assert "benign" in tables.adversaries
    assert "flip" in tables.strategies
    assert tables.protocols == {"reset-tolerant", "ben-or", "bracha"}


def test_project_scenarios_matches_module_level_helper(real_index):
    assert project_scenarios() == real_index.scenario_tables()


def test_slots_manifest_classes_exist(real_index):
    for relpath, class_name in SLOTS_MANIFEST:
        infos = [info for info in real_index.class_named(class_name)
                 if info.relpath == relpath]
        assert infos, (relpath, class_name)
        assert all(info.has_slots for info in infos)


# ----------------------------------------------------------------------
# run_lint plumbing.
# ----------------------------------------------------------------------
def test_run_lint_select_restricts_codes():
    result = run_lint(select={"S1"})
    assert result.ok
    assert result.files_scanned > 50
