"""Unit and integration tests for Bracha's agreement protocol."""

import pytest

from repro.adversaries.byzantine import (ByzantineAdversary,
                                         EquivocateStrategy,
                                         FlipValueStrategy, SilentStrategy)
from repro.protocols.base import ProtocolFactory
from repro.protocols.bracha import DECIDED_MARKER, BrachaAgreement
from repro.simulation.engine import StepEngine


def run_bracha(n, t, inputs, strategy, corrupted=None, seed=3,
               max_steps=400000):
    factory = ProtocolFactory(BrachaAgreement, n=n, t=t)
    engine = StepEngine(factory, inputs, seed=seed)
    adversary = ByzantineAdversary(
        corrupted=corrupted if corrupted is not None else tuple(range(t)),
        strategy=strategy, seed=seed)
    return engine.run(adversary, max_steps=max_steps, stop_when="all")


def honest_view(result, corrupted):
    honest = [pid for pid in range(result.n) if pid not in corrupted]
    outputs = {result.outputs[pid] for pid in honest}
    values = {value for value in outputs if value is not None}
    decided = None not in outputs
    return values, decided


class TestConstruction:
    def test_resilience_requirement(self):
        with pytest.raises(ValueError):
            BrachaAgreement(pid=0, n=6, t=2, input_bit=0)

    def test_fully_communicative_flag(self):
        assert BrachaAgreement.fully_communicative
        assert not BrachaAgreement.forgetful

    def test_initial_send_starts_a_reliable_broadcast(self):
        protocol = BrachaAgreement(pid=0, n=7, t=2, input_bit=1)
        messages = protocol.send_step()
        # The INIT of the (round 1, phase 1) broadcast goes to everyone.
        assert len(messages) == 7
        assert all(m.payload[0] == "RBC_INIT" for m in messages)
        assert all(m.payload[3] == 1 for m in messages)


class TestValidation:
    def test_fabricated_decided_claim_is_filtered(self):
        protocol = BrachaAgreement(pid=0, n=7, t=2, input_bit=0)
        # The receiver has accepted seven phase-2 values, all zeros.
        protocol._accepted[(1, 2)] = {pid: 0 for pid in range(7)}
        # A claim that "more than n/2 said 1" is impossible and rejected.
        protocol._accepted[(1, 3)] = {6: (DECIDED_MARKER, 1)}
        valid = protocol._valid_accepted(1, 3)
        assert valid == {}

    def test_honest_decided_claim_passes(self):
        protocol = BrachaAgreement(pid=0, n=7, t=2, input_bit=0)
        protocol._accepted[(1, 2)] = {pid: 1 for pid in range(5)}
        protocol._accepted[(1, 3)] = {2: (DECIDED_MARKER, 1)}
        valid = protocol._valid_accepted(1, 3)
        assert valid == {2: (DECIDED_MARKER, 1)}

    def test_phase_one_values_always_admissible(self):
        protocol = BrachaAgreement(pid=0, n=7, t=2, input_bit=0)
        protocol._accepted[(2, 1)] = {3: 1, 4: 0}
        assert protocol._valid_accepted(2, 1) == {3: 1, 4: 0}


class TestAgainstByzantineStrategies:
    @pytest.mark.parametrize("strategy_cls", [SilentStrategy,
                                              FlipValueStrategy,
                                              EquivocateStrategy])
    def test_unanimous_inputs_decide_the_common_value(self, strategy_cls):
        n, t = 7, 2
        result = run_bracha(n, t, [0] * n, strategy_cls())
        values, decided = honest_view(result, set(range(t)))
        assert decided
        assert values == {0}

    @pytest.mark.parametrize("strategy_cls", [SilentStrategy,
                                              FlipValueStrategy,
                                              EquivocateStrategy])
    def test_split_inputs_agree_on_a_valid_value(self, strategy_cls):
        n, t = 7, 2
        inputs = [pid % 2 for pid in range(n)]
        result = run_bracha(n, t, inputs, strategy_cls())
        values, decided = honest_view(result, set(range(t)))
        assert decided
        assert len(values) == 1
        assert values.issubset({0, 1})

    def test_no_failures_is_fast_and_correct(self):
        n, t = 7, 2
        result = run_bracha(n, t, [1] * n, SilentStrategy(), corrupted=())
        assert result.all_live_decided
        assert result.decision_values == {1}
