"""Unit tests for the Theorem 4 threshold configuration."""

import pytest

from repro.core.thresholds import (ThresholdConfig, ThresholdError,
                                   default_thresholds,
                                   fast_decide_thresholds, max_tolerable_t,
                                   threshold_grid)


class TestDefaultThresholds:
    def test_matches_theorem_4_settings(self):
        config = default_thresholds(24, 3)
        assert (config.t1, config.t2, config.t3) == (18, 18, 15)
        assert config.valid

    def test_invalid_for_t_at_least_n_over_6(self):
        with pytest.raises(ThresholdError):
            default_thresholds(24, 4)

    @pytest.mark.parametrize("n", [7, 13, 19, 25, 31, 43, 61])
    def test_default_valid_whenever_t_positive(self, n):
        t = max_tolerable_t(n)
        if t == 0:
            pytest.skip("no positive t admissible at this n")
        config = default_thresholds(n, t)
        assert config.valid


class TestConstraintChecks:
    def test_violation_messages_enumerate_broken_constraints(self):
        config = ThresholdConfig(n=24, t=3, t1=23, t2=23, t3=20)
        problems = config.violations()
        assert any("n - 2t >= T1" in problem for problem in problems)

    def test_2t3_greater_than_n_required(self):
        config = ThresholdConfig(n=24, t=3, t1=18, t2=18, t3=12)
        assert not config.valid
        assert any("2*T3 > n" in problem for problem in config.violations())

    def test_t2_at_least_t3_plus_t_required(self):
        config = ThresholdConfig(n=24, t=3, t1=18, t2=15, t3=15)
        assert not config.valid
        assert any("T2 >= T3 + t" in problem
                   for problem in config.violations())

    def test_require_valid_raises_with_reason(self):
        config = ThresholdConfig(n=24, t=3, t1=18, t2=18, t3=12)
        with pytest.raises(ThresholdError):
            config.require_valid()

    def test_require_valid_returns_self_when_valid(self):
        config = default_thresholds(30, 4)
        assert config.require_valid() is config

    def test_describe_mentions_all_thresholds(self):
        text = default_thresholds(24, 3).describe()
        assert "T1=18" in text and "T2=18" in text and "T3=15" in text


class TestVariants:
    def test_fast_decide_thresholds_valid_and_smaller_t2(self):
        default = default_thresholds(36, 2)
        fast = fast_decide_thresholds(36, 2)
        assert fast.valid
        assert fast.t2 < default.t2
        assert fast.t2 == fast.t3 + fast.t

    def test_max_tolerable_t_below_n_over_6(self):
        for n in (12, 24, 36, 60, 100):
            t = max_tolerable_t(n)
            assert t < n / 6
            if t > 0:
                assert default_thresholds(n, t).valid

    def test_max_tolerable_t_zero_for_tiny_n(self):
        assert max_tolerable_t(6) == 0

    def test_threshold_grid_contains_valid_and_invalid_points(self):
        grid = threshold_grid(24, 3)
        assert any(config.valid for config in grid)
        assert any(not config.valid for config in grid)
        assert all(config.n == 24 and config.t == 3 for config in grid)

    def test_decision_margin_positive_for_valid_configs(self):
        config = default_thresholds(24, 3)
        assert config.decision_margin > 0
