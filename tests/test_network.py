"""Unit tests for the message buffer."""

import random

import pytest

from repro.simulation.errors import InvalidStepError
from repro.simulation.message import Message, broadcast
from repro.simulation.network import Network


@pytest.fixture
def network():
    return Network(4)


class TestSubmit:
    def test_submit_stamps_sequence_numbers(self, network):
        stored = network.submit(broadcast(0, 4, "a"))
        assert [m.sequence for m in stored] == [0, 1, 2, 3]
        stored = network.submit(broadcast(1, 4, "b"))
        assert [m.sequence for m in stored] == [4, 5, 6, 7]

    def test_submit_stamps_chain_depth(self, network):
        stored = network.submit(broadcast(0, 4, "a"), chain_depth=3)
        assert all(m.chain_depth == 3 for m in stored)

    def test_submit_rejects_unknown_receiver(self, network):
        with pytest.raises(InvalidStepError):
            network.submit([Message(sender=0, receiver=9, payload="x")])

    def test_submit_rejects_unknown_sender(self, network):
        with pytest.raises(InvalidStepError):
            network.submit([Message(sender=9, receiver=0, payload="x")])

    def test_sent_count(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        assert network.sent_count == 8


class TestPendingAndDelivery:
    def test_pending_for_receiver(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        pending = network.pending_for(2)
        assert len(pending) == 2
        assert {m.sender for m in pending} == {0, 1}

    def test_pending_for_with_sender_filter(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        pending = network.pending_for(2, senders={1})
        assert len(pending) == 1
        assert pending[0].sender == 1

    def test_deliver_removes_message(self, network):
        network.submit(broadcast(0, 4, "a"))
        message = network.pending_for(3)[0]
        delivered = network.deliver(message)
        assert delivered.payload == "a"
        assert network.pending_for(3) == []
        assert network.delivered_count == 1

    def test_deliver_unknown_message_raises(self, network):
        phantom = Message(sender=0, receiver=1, payload="x", sequence=999)
        with pytest.raises(InvalidStepError):
            network.deliver(phantom)

    def test_pending_count(self, network):
        network.submit(broadcast(0, 4, "a"))
        assert network.pending_count() == 4
        network.deliver(network.pending_for(0)[0])
        assert network.pending_count() == 3

    def test_all_pending_in_send_order(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        sequences = [m.sequence for m in network.all_pending()]
        assert sequences == sorted(sequences)


class TestWindowDeliveries:
    def test_take_window_deliveries_only_allowed_senders(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        network.submit(broadcast(2, 4, "c"))
        deliveries = network.take_window_deliveries(3, senders={0, 2})
        assert {m.sender for m in deliveries} == {0, 2}
        # Messages from sender 1 stay in the buffer.
        remaining = network.pending_for(3)
        assert {m.sender for m in remaining} == {1}

    def test_take_window_deliveries_newest_per_sender(self, network):
        network.submit(broadcast(0, 4, "old"))
        network.submit(broadcast(0, 4, "new"))
        deliveries = network.take_window_deliveries(1, senders={0})
        assert len(deliveries) == 1
        assert deliveries[0].payload == "new"
        # The stale message is still pending (it was superseded, not lost).
        assert len(network.pending_for(1)) == 1
        assert network.pending_for(1)[0].payload == "old"

    def test_take_window_deliveries_empty_when_no_match(self, network):
        deliveries = network.take_window_deliveries(0, senders={1, 2})
        assert deliveries == []


class TestDropAndPrune:
    def test_drop_channel_by_sender(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        dropped = network.drop_channel(sender=0)
        assert dropped == 4
        assert all(m.sender == 1 for m in network.all_pending())

    def test_drop_channel_by_receiver(self, network):
        network.submit(broadcast(0, 4, "a"))
        dropped = network.drop_channel(receiver=2)
        assert dropped == 1
        assert all(m.receiver != 2 for m in network.all_pending())

    def test_clear_stale_rounds(self, network):
        network.submit([Message(0, 1, ("VOTE", 1, 0)),
                        Message(2, 1, ("VOTE", 5, 1))])
        dropped = network.clear_stale_rounds(
            1, is_stale=lambda payload: payload[1] < 3)
        assert dropped == 1
        assert network.pending_for(1)[0].payload == ("VOTE", 5, 1)


class ReferenceNetwork:
    """The seed implementation's list-scan semantics, kept as an oracle.

    Mirrors the original per-receiver list buffer: linear-scan delivery,
    newest-per-sender window deliveries via a full queue re-scan, and
    filtered keep-loops for drops.  The optimized :class:`Network` must be
    observationally equivalent to this.
    """

    def __init__(self, n):
        self.n = n
        self._sequence = 0
        self._pending = {}
        self.delivered_count = 0
        self.sent_count = 0

    def submit(self, messages, chain_depth=1):
        stored = []
        for message in messages:
            stamped = Message(message.sender, message.receiver,
                              message.payload, self._sequence, chain_depth)
            self._sequence += 1
            self.sent_count += 1
            self._pending.setdefault(message.receiver, []).append(stamped)
            stored.append(stamped)
        return stored

    def pending_for(self, receiver, senders=None):
        messages = self._pending.get(receiver, [])
        if senders is None:
            return list(messages)
        return [m for m in messages if m.sender in senders]

    def pending_count(self):
        return sum(len(msgs) for msgs in self._pending.values())

    def all_pending(self):
        messages = [m for msgs in self._pending.values() for m in msgs]
        return sorted(messages, key=lambda m: m.sequence)

    def deliver(self, message):
        queue = self._pending.get(message.receiver, [])
        for index, candidate in enumerate(queue):
            if candidate.sequence == message.sequence:
                del queue[index]
                self.delivered_count += 1
                return candidate
        raise InvalidStepError("not pending")

    def take_window_deliveries(self, receiver, senders):
        queue = self._pending.get(receiver, [])
        newest = {}
        for message in queue:
            if message.sender in senders:
                current = newest.get(message.sender)
                if current is None or message.sequence > current.sequence:
                    newest[message.sender] = message
        deliveries = sorted(newest.values(), key=lambda m: m.sender)
        for message in deliveries:
            self.deliver(message)
        return deliveries

    def drop_channel(self, sender=None, receiver=None):
        dropped = 0
        for dest, queue in self._pending.items():
            if receiver is not None and dest != receiver:
                continue
            keep = []
            for message in queue:
                if sender is None or message.sender == sender:
                    dropped += 1
                else:
                    keep.append(message)
            self._pending[dest] = keep
        return dropped

    def clear_stale_rounds(self, receiver, is_stale):
        queue = self._pending.get(receiver, [])
        keep = [m for m in queue if not is_stale(m.payload)]
        dropped = len(queue) - len(keep)
        self._pending[receiver] = keep
        return dropped


class TestDifferentialAgainstReference:
    """Randomized op sequences must match the seed list-scan semantics."""

    N = 6

    def _assert_same_view(self, network, reference):
        assert network.pending_count() == reference.pending_count()
        assert network.all_pending() == reference.all_pending()
        for receiver in range(self.N):
            assert network.pending_for(receiver) == \
                reference.pending_for(receiver)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_operation_sequences(self, seed):
        rng = random.Random(seed)
        network = Network(self.N)
        reference = ReferenceNetwork(self.N)
        for _ in range(120):
            op = rng.choice(["submit", "submit", "submit", "deliver",
                             "window", "window", "drop", "stale",
                             "pending"])
            if op == "submit":
                sender = rng.randrange(self.N)
                depth = rng.randint(1, 5)
                batch = broadcast(sender, self.N,
                                  ("VOTE", rng.randint(1, 4),
                                   rng.getrandbits(1)))
                got = network.submit(batch, chain_depth=depth)
                # The reference needs its own copies: the optimized network
                # stamps in place.
                expected = reference.submit(
                    [Message(m.sender, m.receiver, m.payload)
                     for m in got], chain_depth=depth)
                assert got == expected
            elif op == "deliver":
                pending = reference.all_pending()
                if pending:
                    target = rng.choice(pending)
                    assert network.deliver(target) == \
                        reference.deliver(target)
            elif op == "window":
                receiver = rng.randrange(self.N)
                senders = {pid for pid in range(self.N)
                           if rng.getrandbits(1)}
                assert network.take_window_deliveries(receiver, senders) \
                    == reference.take_window_deliveries(receiver, senders)
            elif op == "drop":
                sender = rng.choice([None, rng.randrange(self.N)])
                receiver = rng.choice([None, rng.randrange(self.N)])
                assert network.drop_channel(sender, receiver) == \
                    reference.drop_channel(sender, receiver)
            elif op == "stale":
                receiver = rng.randrange(self.N)
                cutoff = rng.randint(1, 4)
                predicate = lambda payload, c=cutoff: payload[1] < c
                assert network.clear_stale_rounds(receiver, predicate) == \
                    reference.clear_stale_rounds(receiver, predicate)
            else:
                receiver = rng.randrange(self.N)
                senders = {pid for pid in range(self.N)
                           if rng.getrandbits(1)}
                assert network.pending_for(receiver, senders) == \
                    reference.pending_for(receiver, senders)
            self._assert_same_view(network, reference)
        assert network.delivered_count == reference.delivered_count
        assert network.sent_count == reference.sent_count
