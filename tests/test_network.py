"""Unit tests for the message buffer."""

import pytest

from repro.simulation.errors import InvalidStepError
from repro.simulation.message import Message, broadcast
from repro.simulation.network import Network


@pytest.fixture
def network():
    return Network(4)


class TestSubmit:
    def test_submit_stamps_sequence_numbers(self, network):
        stored = network.submit(broadcast(0, 4, "a"))
        assert [m.sequence for m in stored] == [0, 1, 2, 3]
        stored = network.submit(broadcast(1, 4, "b"))
        assert [m.sequence for m in stored] == [4, 5, 6, 7]

    def test_submit_stamps_chain_depth(self, network):
        stored = network.submit(broadcast(0, 4, "a"), chain_depth=3)
        assert all(m.chain_depth == 3 for m in stored)

    def test_submit_rejects_unknown_receiver(self, network):
        with pytest.raises(InvalidStepError):
            network.submit([Message(sender=0, receiver=9, payload="x")])

    def test_submit_rejects_unknown_sender(self, network):
        with pytest.raises(InvalidStepError):
            network.submit([Message(sender=9, receiver=0, payload="x")])

    def test_sent_count(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        assert network.sent_count == 8


class TestPendingAndDelivery:
    def test_pending_for_receiver(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        pending = network.pending_for(2)
        assert len(pending) == 2
        assert {m.sender for m in pending} == {0, 1}

    def test_pending_for_with_sender_filter(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        pending = network.pending_for(2, senders={1})
        assert len(pending) == 1
        assert pending[0].sender == 1

    def test_deliver_removes_message(self, network):
        network.submit(broadcast(0, 4, "a"))
        message = network.pending_for(3)[0]
        delivered = network.deliver(message)
        assert delivered.payload == "a"
        assert network.pending_for(3) == []
        assert network.delivered_count == 1

    def test_deliver_unknown_message_raises(self, network):
        phantom = Message(sender=0, receiver=1, payload="x", sequence=999)
        with pytest.raises(InvalidStepError):
            network.deliver(phantom)

    def test_pending_count(self, network):
        network.submit(broadcast(0, 4, "a"))
        assert network.pending_count() == 4
        network.deliver(network.pending_for(0)[0])
        assert network.pending_count() == 3

    def test_all_pending_in_send_order(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        sequences = [m.sequence for m in network.all_pending()]
        assert sequences == sorted(sequences)


class TestWindowDeliveries:
    def test_take_window_deliveries_only_allowed_senders(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        network.submit(broadcast(2, 4, "c"))
        deliveries = network.take_window_deliveries(3, senders={0, 2})
        assert {m.sender for m in deliveries} == {0, 2}
        # Messages from sender 1 stay in the buffer.
        remaining = network.pending_for(3)
        assert {m.sender for m in remaining} == {1}

    def test_take_window_deliveries_newest_per_sender(self, network):
        network.submit(broadcast(0, 4, "old"))
        network.submit(broadcast(0, 4, "new"))
        deliveries = network.take_window_deliveries(1, senders={0})
        assert len(deliveries) == 1
        assert deliveries[0].payload == "new"
        # The stale message is still pending (it was superseded, not lost).
        assert len(network.pending_for(1)) == 1
        assert network.pending_for(1)[0].payload == "old"

    def test_take_window_deliveries_empty_when_no_match(self, network):
        deliveries = network.take_window_deliveries(0, senders={1, 2})
        assert deliveries == []


class TestDropAndPrune:
    def test_drop_channel_by_sender(self, network):
        network.submit(broadcast(0, 4, "a"))
        network.submit(broadcast(1, 4, "b"))
        dropped = network.drop_channel(sender=0)
        assert dropped == 4
        assert all(m.sender == 1 for m in network.all_pending())

    def test_drop_channel_by_receiver(self, network):
        network.submit(broadcast(0, 4, "a"))
        dropped = network.drop_channel(receiver=2)
        assert dropped == 1
        assert all(m.receiver != 2 for m in network.all_pending())

    def test_clear_stale_rounds(self, network):
        network.submit([Message(0, 1, ("VOTE", 1, 0)),
                        Message(2, 1, ("VOTE", 5, 1))])
        dropped = network.clear_stale_rounds(
            1, is_stale=lambda payload: payload[1] < 3)
        assert dropped == 1
        assert network.pending_for(1)[0].payload == ("VOTE", 5, 1)
