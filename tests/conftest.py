"""Shared pytest fixtures and path setup.

The path manipulation keeps the test suite runnable even when the package
has not been installed (e.g. a fresh checkout without network access for an
editable install); when ``repro`` is already importable it is a no-op.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # pragma: no cover - environment-dependent
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng_seed() -> int:
    """A fixed master seed so stochastic tests are reproducible."""
    return 20130612


@pytest.fixture
def small_system() -> dict:
    """A small (n, t) pair satisfying the Theorem 4 constraints."""
    return {"n": 13, "t": 2}


@pytest.fixture
def buggy_protocol():
    """Registers a deliberately broken protocol under ``"eager-bug"``.

    The bug: each processor decides *its own input* as soon as it has
    heard from ``n - t`` processors, so split inputs yield conflicting
    decisions within a window or two.  Used by the verification tests to
    prove the invariant checker and the fuzz campaign catch real
    violations; unregistered again on teardown so no other test sees it.
    """
    from repro.protocols import registry as protocol_registry
    from repro.protocols.base import Protocol
    from repro.protocols.registry import ProtocolInfo
    from repro.simulation.message import broadcast

    class EagerBugAgreement(Protocol):
        def __init__(self, pid, n, t, input_bit, rng=None):
            super().__init__(pid=pid, n=n, t=t, input_bit=input_bit,
                             rng=rng)
            self._heard = set()

        def _compose_messages(self):
            return broadcast(self.pid, self.n, ("VOTE", self.input_bit))

        def _handle_message(self, message):
            self._heard.add(message.sender)
            if len(self._heard) >= self.n - self.t and not self.decided:
                self.decide(self.input_bit)

        def _on_reset(self):
            self._heard = set()

        def volatile_state(self):
            return (tuple(sorted(self._heard)),)

    name = "eager-bug"
    protocol_registry._REGISTRY[name] = ProtocolInfo(
        name=name, protocol_cls=EagerBugAgreement,
        max_faults=lambda n: max(0, (n - 1) // 6),
        fault_model="test-only injected bug")
    try:
        yield name
    finally:
        protocol_registry._REGISTRY.pop(name, None)
