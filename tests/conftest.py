"""Shared pytest fixtures and path setup.

The path manipulation keeps the test suite runnable even when the package
has not been installed (e.g. a fresh checkout without network access for an
editable install); when ``repro`` is already importable it is a no-op.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    "src")
if _SRC not in sys.path:  # pragma: no cover - environment-dependent
    sys.path.insert(0, _SRC)


@pytest.fixture
def rng_seed() -> int:
    """A fixed master seed so stochastic tests are reproducible."""
    return 20130612


@pytest.fixture
def small_system() -> dict:
    """A small (n, t) pair satisfying the Theorem 4 constraints."""
    return {"n": 13, "t": 2}
