"""Unit tests for product measures and numerical Talagrand verification."""

import random

import pytest

from repro.analysis.product_measure import (CoordinateDistribution,
                                            ProductDistribution,
                                            distance_to_set, hamming,
                                            set_to_set_distance,
                                            verify_talagrand,
                                            verify_two_set_bound)


class TestHammingHelpers:
    def test_hamming(self):
        assert hamming((0, 0, 1), (0, 1, 1)) == 1
        assert hamming((0,), (0,)) == 0

    def test_hamming_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming((0, 1), (0,))

    def test_distance_to_set(self):
        points = [(0, 0, 0), (1, 1, 1)]
        assert distance_to_set((0, 0, 1), points) == 1
        assert distance_to_set((0, 0, 0), points) == 0
        assert distance_to_set((0, 0, 0), []) is None

    def test_set_to_set_distance(self):
        a = [(0, 0, 0, 0)]
        b = [(1, 1, 0, 0), (1, 1, 1, 1)]
        assert set_to_set_distance(a, b) == 2


class TestCoordinateDistribution:
    def test_normalisation(self):
        dist = CoordinateDistribution({0: 2.0, 1: 2.0})
        assert dist.probability(0) == pytest.approx(0.5)
        assert dist.probability(2) == 0.0

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            CoordinateDistribution({})
        with pytest.raises(ValueError):
            CoordinateDistribution({0: -1.0, 1: 2.0})
        with pytest.raises(ValueError):
            CoordinateDistribution({0: 0.0})

    def test_bernoulli_and_point_mass(self):
        coin = CoordinateDistribution.bernoulli(0.25)
        assert coin.probability(1) == pytest.approx(0.25)
        point = CoordinateDistribution.point_mass("x")
        assert point.probability("x") == 1.0
        with pytest.raises(ValueError):
            CoordinateDistribution.bernoulli(1.5)

    def test_sampling_respects_support(self):
        rng = random.Random(0)
        dist = CoordinateDistribution.uniform(["a", "b", "c"])
        draws = {dist.sample(rng) for _ in range(50)}
        assert draws.issubset({"a", "b", "c"})
        assert len(draws) > 1


class TestProductDistribution:
    def test_uniform_bits_support(self):
        product = ProductDistribution.uniform_bits(3)
        assert product.n == 3
        assert product.support_size() == 8
        total = sum(probability
                    for _, probability in product.enumerate_support())
        assert total == pytest.approx(1.0)

    def test_weight_of_event(self):
        product = ProductDistribution.uniform_bits(4)
        weight = product.weight(lambda x: sum(x) == 2)
        assert weight == pytest.approx(6 / 16)

    def test_weight_of_points_and_ball(self):
        product = ProductDistribution.uniform_bits(3)
        points = [(0, 0, 0)]
        assert product.weight_of_points(points) == pytest.approx(1 / 8)
        assert product.ball_weight(points, 1) == pytest.approx(4 / 8)
        assert product.ball_weight(points, 3) == pytest.approx(1.0)

    def test_replace_coordinate(self):
        product = ProductDistribution.uniform_bits(3)
        replaced = product.replace_coordinate(
            0, CoordinateDistribution.point_mass(1))
        assert replaced.weight(lambda x: x[0] == 1) == pytest.approx(1.0)
        # The original is unchanged.
        assert product.weight(lambda x: x[0] == 1) == pytest.approx(0.5)

    def test_estimate_weight_close_to_exact(self):
        product = ProductDistribution.uniform_bits(6)
        exact = product.weight(lambda x: sum(x) >= 4)
        estimate = product.estimate_weight(lambda x: sum(x) >= 4,
                                           samples=4000, seed=3)
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_bernoulli_product(self):
        product = ProductDistribution.bernoulli([1.0, 0.0, 1.0])
        assert product.weight(lambda x: x == (1, 0, 1)) == pytest.approx(1.0)

    def test_empty_construction_rejected(self):
        with pytest.raises(ValueError):
            ProductDistribution([])


class TestTalagrandVerification:
    def test_lemma_9_holds_exactly_on_small_cube(self):
        product = ProductDistribution.uniform_bits(8)
        points = [point for point, _ in product.enumerate_support()
                  if sum(point) <= 1]
        for radius in (1, 2, 3, 4):
            check = verify_talagrand(product, points, radius=radius,
                                     exact=True)
            assert check.satisfied
            assert check.product <= check.bound + 1e-9

    def test_lemma_9_holds_under_sampling(self):
        product = ProductDistribution.uniform_bits(10)
        points = [tuple([0] * 10)]
        check = verify_talagrand(product, points, radius=3, exact=False,
                                 samples=2000, seed=1)
        assert check.satisfied

    def test_two_set_bound_consistent(self):
        product = ProductDistribution.uniform_bits(8)
        low = [point for point, _ in product.enumerate_support()
               if sum(point) == 0]
        high = [point for point, _ in product.enumerate_support()
                if sum(point) == 8]
        p_low, p_high, tau, consistent = verify_two_set_bound(product, low,
                                                              high)
        assert consistent
        assert p_low == pytest.approx(1 / 256)
        assert p_high == pytest.approx(1 / 256)

    def test_two_set_bound_rejects_empty_sets(self):
        product = ProductDistribution.uniform_bits(4)
        with pytest.raises(ValueError):
            verify_two_set_bound(product, [], [(0, 0, 0, 0)])
