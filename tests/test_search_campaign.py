"""Search-campaign tests: determinism, resume, objectives, acceptance."""

import math
import os

import pytest

from repro.results import RunStore
from repro.runner import (TrialSpec, derive_seed, execute_trial,
                          iter_trials, undecided_windows)
from repro.search import (SEARCH_EXPERIMENT, build_objective,
                          campaign_setup, load_schedule_artifact,
                          resolve_search_params, run_search_campaign)
from repro.search.campaign import ROW_SCHEMA
from repro.verification import InvariantChecker, replay_schedule


def _quick_params(**overrides):
    defaults = dict(generations=4, population=4, windows=40, seed=3)
    defaults.update(overrides)
    return resolve_search_params(**defaults)


class TestCampaignDeterminism:
    def test_rows_bit_identical_across_worker_counts(self):
        params = _quick_params()
        reference = run_search_campaign(params, workers=0)
        assert len(reference.rows) == 16
        for workers in (1, 4):
            report = run_search_campaign(params, workers=workers)
            assert report.rows == reference.rows
            assert report.best_score == reference.best_score
            assert report.best_schedule == reference.best_schedule

    def test_rows_match_the_declared_schema(self):
        report = run_search_campaign(_quick_params(), workers=0)
        for row in report.rows:
            assert tuple(row) == ROW_SCHEMA

    def test_different_seeds_explore_differently(self):
        first = run_search_campaign(_quick_params(seed=1), workers=0)
        second = run_search_campaign(_quick_params(seed=2), workers=0)
        assert first.rows != second.rows


class TestCampaignStore:
    def test_campaign_resumes_bit_identically_after_kill(self, tmp_path):
        params = _quick_params()
        first = RunStore.open(str(tmp_path), SEARCH_EXPERIMENT, params)
        reference = run_search_campaign(params, workers=0, store=first)
        assert first.row_count == 16

        # Simulate a mid-generation kill: drop the last 6 stored rows.
        rows_path = os.path.join(first.path, "rows.jsonl")
        lines = open(rows_path).read().splitlines()
        with open(rows_path, "w") as handle:
            handle.write("\n".join(lines[:10]) + "\n")

        resumed_store = RunStore.open(str(tmp_path), SEARCH_EXPERIMENT,
                                      params)
        assert resumed_store.row_count == 10
        resumed = run_search_campaign(params, workers=0,
                                      store=resumed_store)
        assert resumed.rows == reference.rows
        assert resumed.best_score == reference.best_score
        assert resumed.best_schedule == reference.best_schedule
        assert resumed.computed_evaluations == 6

    def test_best_artifact_replays_to_the_reported_score(self, tmp_path):
        params = _quick_params()
        store = RunStore.open(str(tmp_path), SEARCH_EXPERIMENT, params)
        report = run_search_campaign(params, workers=0, store=store)
        assert report.best_artifact is not None
        setup, schedule, artifact = \
            load_schedule_artifact(report.best_artifact)
        assert artifact["objective"] == "undecided-rounds"
        assert artifact["score"] == report.best_score
        assert len(schedule) == params["windows"]
        result = replay_schedule(setup, schedule)
        assert undecided_windows(result) == report.best_score
        assert InvariantChecker().check_result(result).ok

    def test_violating_candidates_are_shrunk_into_artifacts(
            self, tmp_path, buggy_protocol):
        params = resolve_search_params(
            protocol=buggy_protocol, objective="invariant-violation",
            generations=2, population=4, windows=12, seed=0, n=9)
        store = RunStore.open(str(tmp_path), SEARCH_EXPERIMENT, params)
        report = run_search_campaign(params, workers=0, store=store)
        assert report.findings
        assert report.best_score == math.inf
        finding = report.findings[0]
        artifact = os.path.join(store.path, finding["counterexample"])
        assert os.path.isfile(artifact)
        setup, schedule, _ = load_schedule_artifact(artifact)
        assert not InvariantChecker().check_result(
            replay_schedule(setup, schedule)).ok
        # Infinite scores must not leak into the persisted files as the
        # non-RFC `Infinity` literal: everything stays strict JSON.
        import json

        def no_constants(value):
            raise AssertionError(f"non-strict JSON constant {value!r}")

        with open(os.path.join(store.path, "rows.jsonl")) as handle:
            for line in handle:
                if line.strip():
                    json.loads(line, parse_constant=no_constants)
        with open(os.path.join(store.path, "best-schedule.json")) as handle:
            best = json.load(handle, parse_constant=no_constants)
        assert best["score"] is None  # inf encoded as null


class TestObjectives:
    def _sample_result(self, stop_when="first", record_trace=True,
                       record_configurations=False):
        return execute_trial(TrialSpec(
            protocol="reset-tolerant", adversary="split-vote",
            n=12, t=1, inputs=tuple([1] * 6 + [0] * 6), seed=5,
            adversary_kwargs={"seed": 5}, max_windows=30,
            stop_when=stop_when, record_trace=record_trace,
            record_configurations=record_configurations))

    def test_undecided_fraction_scores_from_the_trace(self):
        objective = build_objective("undecided-fraction",
                                    protocol="reset-tolerant")
        result = self._sample_result(stop_when="all")
        score = objective.score(result)
        decided = sum(1 for output in result.outputs
                      if output is not None)
        assert score == pytest.approx(1.0 - decided / result.n)

    def test_vote_margin_rewards_balanced_estimates(self):
        objective = build_objective("vote-margin",
                                    protocol="reset-tolerant")
        result = self._sample_result(record_configurations=True)
        score = objective.score(result)
        assert -1.0 <= score <= 0.0
        # The split-vote adversary holds the margin near zero.
        assert score > -0.5

    def test_vote_margin_rejects_protocols_without_the_hook(self):
        with pytest.raises(ValueError, match="estimate_from_fingerprint"):
            build_objective("vote-margin", protocol="bracha")

    def test_invariant_violation_requires_verification(self):
        with pytest.raises(ValueError, match="verify"):
            resolve_search_params(objective="invariant-violation",
                                  verify=False)

    def test_unknown_names_are_rejected(self):
        with pytest.raises(KeyError, match="unknown objective"):
            build_objective("nope", protocol="reset-tolerant")
        with pytest.raises(ValueError, match="unknown objective"):
            resolve_search_params(objective="nope")
        with pytest.raises(ValueError, match="unknown search strategy"):
            resolve_search_params(strategy="nope")
        with pytest.raises(ValueError, match="tolerates no faults"):
            resolve_search_params(n=4)
        with pytest.raises(ValueError, match="unknown workload"):
            resolve_search_params(workload="nope")


class TestStrategies:
    @pytest.mark.parametrize("strategy", ("hill-climb", "anneal", "evolve"))
    def test_every_strategy_runs_and_is_deterministic(self, strategy):
        params = _quick_params(strategy=strategy, generations=3)
        first = run_search_campaign(params, workers=0)
        second = run_search_campaign(params, workers=0)
        assert first.rows == second.rows
        assert first.best_score >= 0

    def test_vote_margin_campaign_runs(self):
        params = _quick_params(objective="vote-margin", generations=2)
        report = run_search_campaign(params, workers=0)
        assert all(-1.0 <= row["score"] <= 0.0 for row in report.rows)


class TestAcceptance:
    def test_search_strictly_beats_200_fuzzer_samples_at_equal_budget(self):
        """The PR acceptance bar, on the E1 quick Ben-Or-style cell.

        n=12 at the largest admissible t (the E1 quick cell of the
        reset-tolerant protocol), fixed seed: the best of 200
        schedule-fuzzer samples — drawn from the same window
        distribution the search mutates with, on the same fixed engine
        seed — must be strictly exceeded by a `repro search` campaign
        allotted the same 200-evaluation budget (the campaign stops
        spending as soon as it is strictly ahead).
        """
        budget = 200
        params = resolve_search_params(
            protocol="reset-tolerant", strategy="hill-climb",
            objective="undecided-rounds", generations=25, population=8,
            windows=600, seed=0, verify=False)
        assert params["generations"] * params["population"] == budget
        assert params["n"] == 12 and params["t"] == 1  # the E1 quick cell
        setup = campaign_setup(params)
        sampler_kwargs = {"reset_probability": 0.35,
                          "deliver_last_probability": 0.3}
        specs = [TrialSpec(
            protocol=params["protocol"], adversary="schedule-fuzzer",
            n=params["n"], t=params["t"], inputs=setup.inputs,
            adversary_kwargs=dict(
                seed=derive_seed(params["seed"], 9000 + i) & 0xFFFFFFFF,
                **sampler_kwargs),
            seed=setup.seed, max_windows=params["windows"],
            stop_when="first") for i in range(budget)]
        fuzz_best = max(undecided_windows(result)
                        for result in iter_trials(specs, workers=0))
        assert fuzz_best < params["windows"], \
            "horizon too low: the fuzz baseline saturated it"

        params = resolve_search_params(
            protocol="reset-tolerant", strategy="hill-climb",
            objective="undecided-rounds", generations=25, population=8,
            windows=600, seed=0, verify=False,
            target_score=fuzz_best + 1)
        report = run_search_campaign(params, workers=0)
        assert report.computed_evaluations <= budget
        assert report.best_score > fuzz_best
