"""Unit tests for the protocol registry."""

import pytest

from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.protocols.ben_or import BenOrAgreement
from repro.protocols.bracha import BrachaAgreement
from repro.protocols.registry import available_protocols, get_protocol


class TestRegistry:
    def test_known_protocols_present(self):
        protocols = available_protocols()
        assert set(protocols) == {"reset-tolerant", "ben-or", "bracha"}

    def test_get_protocol_returns_classes(self):
        assert get_protocol("reset-tolerant").protocol_cls \
            is ResetTolerantAgreement
        assert get_protocol("ben-or").protocol_cls is BenOrAgreement
        assert get_protocol("bracha").protocol_cls is BrachaAgreement

    def test_unknown_protocol_raises_with_suggestions(self):
        with pytest.raises(KeyError) as excinfo:
            get_protocol("paxos")
        assert "ben-or" in str(excinfo.value)

    def test_max_faults_respect_resilience_bounds(self):
        for n in (7, 13, 25, 61):
            assert get_protocol("reset-tolerant").max_faults(n) < n / 6
            assert get_protocol("ben-or").max_faults(n) < n / 2
            assert get_protocol("bracha").max_faults(n) < n / 3

    def test_fault_models_are_descriptive(self):
        for info in available_protocols().values():
            assert info.fault_model
            assert info.name
