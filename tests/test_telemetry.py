"""Telemetry tests: the recorder, and the observer-effect guarantee.

The keystone contract mirrors the supervisor's: telemetry may consume
wall-clock time, but the result rows of any campaign are bit-identical
with telemetry on, off, profiled, or killed and resumed mid-run — across
worker counts and both execution backends.  Everything else here
(hierarchy, merge semantics, torn-tail tolerance, the progress renderer,
the timing reductions) supports that contract.
"""

import io
import json
import os

import pytest

from repro.experiments import get_experiment
from repro.results import RunStore, run_directory
from repro.results.store import read_manifest
from repro.runner import RunHealth
from repro.telemetry import (TELEMETRY_NAME, ProfileSession,
                             ProgressRenderer, Telemetry,
                             merge_telemetry_block, read_events)
from repro.telemetry.timing import (cell_timing_rows, render_span_chain,
                                    slowest_trial_chain, top_snapshot)

E2_PARAMS = {"ns": (12, 16), "trials": 1, "max_windows": 200000,
             "use_resets": True, "seed": 9}
"""Cheap, distinct window-engine cells (the supervisor tests' battery)."""


class TestRecorder:
    def test_span_hierarchy_and_emission_order(self, tmp_path):
        sink = str(tmp_path / TELEMETRY_NAME)
        telemetry = Telemetry(sink=sink)
        with telemetry.span("campaign", label="run E2"):
            with telemetry.span("cell", cell=["E2", 12]):
                telemetry.record_span("trial", 100.0, 0.25, tag="a")
        telemetry.close()
        events = read_events(sink)
        spans = {event["name"]: event for event in events
                 if event["kind"] == "span"}
        assert set(spans) == {"campaign", "cell", "trial"}
        assert spans["campaign"]["parent"] is None
        assert spans["cell"]["parent"] == spans["campaign"]["id"]
        assert spans["trial"]["parent"] == spans["cell"]["id"]
        # Spans are emitted on close: innermost first, campaign last.
        assert [event["name"] for event in events] == \
            ["trial", "cell", "campaign"]
        assert spans["trial"]["t0"] == 100.0
        assert spans["trial"]["dur"] == 0.25
        assert spans["campaign"]["label"] == "run E2"

    def test_span_survives_exception_with_ok_false(self, tmp_path):
        sink = str(tmp_path / TELEMETRY_NAME)
        telemetry = Telemetry(sink=sink)
        with pytest.raises(KeyboardInterrupt):
            with telemetry.span("campaign"):
                raise KeyboardInterrupt
        telemetry.close()
        (span,) = read_events(sink)
        assert span["name"] == "campaign" and span["ok"] is False
        assert telemetry.current_span is None  # the stack unwound

    def test_counters_accumulate_and_gauges_sample(self):
        telemetry = Telemetry()
        telemetry.count("retries")
        telemetry.count("retries", 2)
        telemetry.count("noise", 0)  # zero deltas emit nothing
        telemetry.gauge("workers", 2)
        telemetry.gauge("workers", 4)
        summary = telemetry.summary()
        assert summary["counters"] == {"retries": 3}
        assert summary["gauges"] == {"workers": 4}
        assert summary["events"] == 4 and summary["spans"] == 0

    def test_merge_accumulates_counters_and_keeps_newest_gauges(self):
        first = {"segments": 1, "events": 10, "spans": 3,
                 "counters": {"retries": 2, "rows_written": 5},
                 "gauges": {"workers": 4}}
        second = {"segments": 1, "events": 7, "spans": 2,
                  "counters": {"rows_written": 3},
                  "gauges": {"workers": 2, "trials_total": 8}}
        merged = merge_telemetry_block(first, second)
        assert merged == {
            "segments": 2, "events": 17, "spans": 5,
            "counters": {"retries": 2, "rows_written": 8},
            "gauges": {"trials_total": 8, "workers": 2}}
        assert merge_telemetry_block(None, second) == second

    def test_read_events_skips_torn_and_foreign_lines(self, tmp_path):
        path = str(tmp_path / TELEMETRY_NAME)
        good = {"kind": "counter", "name": "retries", "delta": 1, "t": 1.0}
        with open(path, "w") as handle:
            handle.write(json.dumps(good) + "\n")
            handle.write("[1, 2]\n")  # parseable but not an event
            handle.write(json.dumps(good)[:10] + "\n")  # torn tail
        assert read_events(path) == [good]
        assert read_events(str(tmp_path / "absent.jsonl")) == []

    def test_listener_sees_every_event(self):
        telemetry = Telemetry()
        seen = []
        telemetry.add_listener(seen.append)
        telemetry.count("trials_completed", 5)
        telemetry.gauge("trials_total", 10)
        assert [event["kind"] for event in seen] == ["counter", "gauge"]


class TestProgressRenderer:
    @staticmethod
    def _events(completed=3, total=10):
        return [{"kind": "gauge", "name": "trials_total", "value": total,
                 "t": 0.0},
                {"kind": "counter", "name": "trials_completed",
                 "delta": completed, "t": 0.0}]

    def test_plain_mode_stays_silent_on_quick_runs(self):
        stream = io.StringIO()
        renderer = ProgressRenderer("run E2", stream=stream,
                                    interactive=False)
        for event in self._events():
            renderer(event)
        renderer.close()
        assert stream.getvalue() == ""

    def test_interactive_mode_redraws_in_place_and_clears(self):
        stream = io.StringIO()
        renderer = ProgressRenderer("run E2", stream=stream,
                                    interactive=True)
        for event in self._events():
            renderer._last_render = 0.0  # defeat the TTY rate limit
            renderer(event)
        assert "\r\x1b[K" in stream.getvalue()
        assert "3/10 trials" in stream.getvalue()
        renderer.close()
        assert stream.getvalue().endswith("\r\x1b[K")

    def test_status_line_reports_rate_and_gauges(self):
        renderer = ProgressRenderer("fuzz", stream=io.StringIO(),
                                    interactive=False)
        for event in self._events():
            renderer(event)
        renderer({"kind": "gauge", "name": "workers", "value": 4,
                  "t": 0.0})
        line = renderer.status_line()
        assert line.startswith("fuzz")
        assert "3/10 trials" in line and "workers=4" in line


class TestTimingReductions:
    @staticmethod
    def _span(span_id, parent, name, t0, dur, **attrs):
        event = {"kind": "span", "id": span_id, "parent": parent,
                 "name": name, "t0": t0, "dur": dur}
        event.update(attrs)
        return event

    def _events(self):
        return [
            self._span(1, 0, "trial", 0.0, 0.010, tag=["E2", 12]),
            self._span(2, 0, "trial", 0.0, 0.030, tag=["E2", 12]),
            self._span(3, 0, "trial", 0.0, 0.100, tag=["E2", 16]),
            self._span(0, None, "cell", 0.0, 0.2, cell=["E2"]),
        ]

    def test_cell_timing_rows_heaviest_first(self):
        rows = cell_timing_rows(self._events(), percentiles=(50.0,))
        assert [row["trials"] for row in rows] == [1, 2]
        assert rows[0]["total_ms"] == pytest.approx(100.0)
        assert rows[1]["p50_ms"] == pytest.approx(20.0)

    def test_slowest_trial_chain_walks_to_the_root(self):
        chain = slowest_trial_chain(self._events())
        assert [span["name"] for span in chain] == ["cell", "trial"]
        assert chain[-1]["dur"] == pytest.approx(0.100)
        lines = render_span_chain(chain)
        assert lines[0].startswith("cell")
        assert lines[1].startswith("  trial")

    def test_top_snapshot_reduces_counters_and_completion(self):
        events = self._events() + [
            {"kind": "counter", "name": "trials_completed", "delta": 3,
             "t": 10.0},
            {"kind": "gauge", "name": "trials_total", "value": 3,
             "t": 0.0},
        ]
        snapshot = top_snapshot(events, manifest={"completed": True})
        assert snapshot["completed"] is True
        assert snapshot["trials_completed"] == 3
        assert snapshot["trials_total"] == 3


class TestObserverEffect:
    """Telemetry on, off, or profiled never changes a result row."""

    @pytest.mark.parametrize("workers", [0, 1, 4])
    @pytest.mark.parametrize("backend", ["trial", "batched"])
    def test_rows_bit_identical_across_observation_modes(
            self, workers, backend):
        experiment = get_experiment("E2")
        params = experiment.resolve_params(E2_PARAMS)
        reference = experiment.run(params=params, workers=0)

        observed = Telemetry()
        assert experiment.run(params=params, workers=workers,
                              backend=backend,
                              telemetry=observed) == reference

        profiled = Telemetry()
        profiled.profile = ProfileSession()
        with profiled.profile:
            assert experiment.run(params=params, workers=workers,
                                  backend=backend,
                                  telemetry=profiled) == reference
        # Non-vacuity: every trial was observed, whatever the path.
        expected = sum(len(cell.specs)
                       for cell in experiment.cells(params=params))
        for telemetry in (observed, profiled):
            assert telemetry.counters["trials_completed"] == expected

    def test_store_rows_on_disk_identical_with_and_without(self, tmp_path):
        experiment = get_experiment("E2")
        params = experiment.resolve_params(E2_PARAMS)

        bare = RunStore.open(str(tmp_path / "bare"), "E2", params)
        experiment.run(params=params, workers=0, store=bare)
        bare.finish(wall_time=0.0, compact=False)

        telemetry = Telemetry()
        traced = RunStore.open(str(tmp_path / "traced"), "E2", params)
        traced.attach_telemetry(telemetry)
        experiment.run(params=params, workers=0, store=traced,
                       telemetry=telemetry)
        telemetry.close()
        traced.finish(wall_time=0.0, compact=False)

        def rows_bytes(store):
            with open(os.path.join(store.path, "rows.jsonl"), "rb") as fh:
                return fh.read()

        assert rows_bytes(bare) == rows_bytes(traced)
        assert telemetry.sink == os.path.join(traced.path, TELEMETRY_NAME)
        assert read_events(telemetry.sink)
        block = traced.manifest["telemetry"]
        assert block["segments"] == 1
        assert block["counters"]["rows_written"] == traced.row_count
        assert "telemetry" not in bare.manifest


class _KillAfter(RunStore):
    """A store that dies (like SIGKILL mid-run) after N row writes."""

    def __init__(self, *args, kill_after: int, **kwargs):
        super().__init__(*args, **kwargs)
        self._writes_left = kill_after

    def write_row(self, index, key, row):
        if self._writes_left == 0:
            raise KeyboardInterrupt("killed mid-run")
        self._writes_left -= 1
        super().write_row(index, key, row)


class TestKillResume:
    def test_partial_manifest_carries_health_and_telemetry(
            self, tmp_path, monkeypatch):
        """Regression: mid-run manifests must carry the live run_health
        (and telemetry) blocks, not only finished ones."""
        import repro.results.store as store_module

        monkeypatch.setattr(store_module, "MANIFEST_EVERY_ROWS", 1)
        health = RunHealth()
        telemetry = Telemetry()
        store = RunStore.open(str(tmp_path), "E2", {"seed": 1},
                              health=health)
        store.attach_telemetry(telemetry)
        health.retries += 1
        store.write_row(0, ["a"], {"x": 1})  # debounced manifest rewrite
        manifest = read_manifest(store.path)
        assert not manifest["completed"]
        assert manifest["run_health"]["retries"] == 1
        assert manifest["telemetry"]["counters"]["rows_written"] == 1

    def test_kill_resume_is_bit_identical_and_log_survives(
            self, tmp_path, monkeypatch):
        import repro.results.store as store_module

        monkeypatch.setattr(store_module, "MANIFEST_EVERY_ROWS", 1)
        experiment = get_experiment("E2")
        params = experiment.resolve_params(E2_PARAMS)
        reference = experiment.run(params=params, workers=0)

        path = run_directory(str(tmp_path), "E2", params)
        first = Telemetry()
        killed = _KillAfter(path, "E2", params, kill_after=1)
        killed.attach_telemetry(first)
        with pytest.raises(KeyboardInterrupt):
            experiment.run(params=params, workers=0, store=killed,
                           telemetry=first)
        first.close()  # what the CLI's timing context does on the way out
        assert not read_manifest(path)["completed"]
        interrupted_log = read_events(os.path.join(path, TELEMETRY_NAME))
        assert interrupted_log  # the interrupted segment persisted

        second = Telemetry()
        resumed = RunStore.open(str(tmp_path), "E2", params)
        resumed.attach_telemetry(second)
        rows = experiment.run(params=params, workers=0, store=resumed,
                              telemetry=second)
        second.close()
        resumed.finish(wall_time=0.1, compact=False)

        assert rows == reference
        block = resumed.manifest["telemetry"]
        assert block["segments"] == 2
        assert block["counters"]["rows_written"] == resumed.row_count
        # Both segments share one append-only event log.
        full_log = read_events(os.path.join(path, TELEMETRY_NAME))
        assert len(full_log) > len(interrupted_log)
        assert full_log[:len(interrupted_log)] == interrupted_log
