"""Unit tests for Bracha's reliable-broadcast substrate."""


from repro.broadcast.bracha_broadcast import (RBC_ECHO, RBC_INIT, RBC_READY,
                                              BroadcastInstance,
                                              ReliableBroadcastLayer)


class TestBroadcastInstance:
    def test_quorum_sizes(self):
        instance = BroadcastInstance(n=7, t=2, originator=3, tag="x")
        assert instance.echo_quorum == 5   # > (n + t) / 2 = 4.5
        assert instance.ready_amplify == 3  # t + 1
        assert instance.accept_quorum == 5  # 2t + 1

    def test_init_from_originator_triggers_echo_once(self):
        instance = BroadcastInstance(n=7, t=2, originator=3, tag="x")
        actions = instance.on_init(3, "v")
        assert actions == [(RBC_ECHO, "v")]
        assert instance.on_init(3, "v") == []

    def test_init_from_non_originator_ignored(self):
        instance = BroadcastInstance(n=7, t=2, originator=3, tag="x")
        assert instance.on_init(5, "v") == []
        assert not instance.echo_sent

    def test_echo_quorum_triggers_ready(self):
        instance = BroadcastInstance(n=7, t=2, originator=3, tag="x")
        actions = []
        for sender in range(5):
            actions += instance.on_echo(sender, "v")
        assert (RBC_READY, "v") in actions
        assert instance.ready_sent

    def test_ready_amplification(self):
        instance = BroadcastInstance(n=7, t=2, originator=3, tag="x")
        actions = []
        for sender in range(3):
            actions += instance.on_ready(sender, "v")
        assert (RBC_READY, "v") in actions

    def test_accept_after_2t_plus_1_readies(self):
        instance = BroadcastInstance(n=7, t=2, originator=3, tag="x")
        for sender in range(5):
            instance.on_ready(sender, "v")
        assert instance.accepted_value == "v"

    def test_conflicting_echoes_do_not_reach_quorum(self):
        instance = BroadcastInstance(n=7, t=2, originator=3, tag="x")
        for sender in range(3):
            instance.on_echo(sender, "a")
        for sender in range(3, 6):
            instance.on_echo(sender, "b")
        assert not instance.ready_sent


class TestReliableBroadcastLayer:
    def _full_network(self, n=7, t=2):
        return [ReliableBroadcastLayer(pid=pid, n=n, t=t)
                for pid in range(n)]

    def _exchange(self, layers, outgoing_by_pid):
        """Deliver every queued payload from every processor to everyone."""
        deliveries = []
        for sender, payloads in outgoing_by_pid.items():
            for payload in payloads:
                for layer in layers:
                    layer.handle(sender, payload)
        return deliveries

    def test_broadcast_reaches_acceptance_everywhere(self):
        layers = self._full_network()
        layers[0].broadcast("tag", 1)
        # Round 1: the INIT reaches everyone.
        self._exchange(layers, {0: layers[0].take_outgoing()})
        # Round 2: echoes.
        self._exchange(layers, {pid: layers[pid].take_outgoing()
                                for pid in range(7)})
        # Round 3: readies.
        self._exchange(layers, {pid: layers[pid].take_outgoing()
                                for pid in range(7)})
        for layer in layers:
            acceptances = layer.take_acceptances()
            assert len(acceptances) == 1
            assert acceptances[0].value == 1
            assert acceptances[0].originator == 0

    def test_acceptance_is_reported_only_once(self):
        layers = self._full_network()
        layers[0].broadcast("tag", 1)
        for _ in range(4):
            self._exchange(layers, {pid: layers[pid].take_outgoing()
                                    for pid in range(7)})
        total = sum(len(layer.take_acceptances()) for layer in layers)
        assert total == 7

    def test_malformed_payloads_are_ignored(self):
        layer = ReliableBroadcastLayer(pid=0, n=7, t=2)
        assert layer.handle(1, "junk") == []
        assert layer.handle(1, (RBC_INIT, 99, "tag", 1)) == []
        assert layer.take_outgoing() == []

    def test_equivocating_originator_cannot_get_two_acceptances(self):
        """Two different INIT values cannot both gather echo quorums."""
        layers = self._full_network()
        # The (Byzantine) originator 0 sends value 0 to processors 1-3 and
        # value 1 to processors 4-6.
        for pid in range(1, 4):
            layers[pid].handle(0, (RBC_INIT, 0, "tag", 0))
        for pid in range(4, 7):
            layers[pid].handle(0, (RBC_INIT, 0, "tag", 1))
        # Exchange echoes and readies for several rounds.
        for _ in range(4):
            outgoing = {pid: layers[pid].take_outgoing() for pid in range(7)}
            self._exchange(layers, outgoing)
        accepted_values = set()
        for layer in layers:
            for acceptance in layer.take_acceptances():
                accepted_values.add(acceptance.value)
        assert len(accepted_values) <= 1
