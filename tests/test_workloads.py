"""Unit tests for input workloads."""

import pytest

from repro.workloads.inputs import (alternating, ones_prefix, random_inputs,
                                    split, standard_workloads, unanimous)


class TestWorkloads:
    def test_unanimous(self):
        assert unanimous(5, 1) == [1] * 5
        assert unanimous(3, 0) == [0] * 3
        with pytest.raises(ValueError):
            unanimous(4, 2)

    def test_split_is_balanced(self):
        inputs = split(10)
        assert sum(inputs) == 5
        inputs = split(11)
        assert sum(inputs) == 5
        assert len(inputs) == 11

    def test_alternating(self):
        assert alternating(4) == [0, 1, 0, 1]

    def test_random_inputs_are_bits_and_reproducible(self):
        a = random_inputs(20, seed=4)
        b = random_inputs(20, seed=4)
        assert a == b
        assert set(a).issubset({0, 1})
        with pytest.raises(ValueError):
            random_inputs(5, probability_one=2.0)

    def test_random_inputs_bias(self):
        assert random_inputs(50, seed=1, probability_one=1.0) == [1] * 50
        assert random_inputs(50, seed=1, probability_one=0.0) == [0] * 50

    def test_ones_prefix(self):
        assert ones_prefix(5, 2) == [1, 1, 0, 0, 0]
        assert ones_prefix(3, 0) == [0, 0, 0]
        assert ones_prefix(3, 3) == [1, 1, 1]
        with pytest.raises(ValueError):
            ones_prefix(3, 4)

    def test_standard_workloads_cover_the_e1_grid(self):
        workloads = standard_workloads(12, seed=9)
        assert set(workloads) == {"unanimous-0", "unanimous-1", "split",
                                  "alternating", "random"}
        assert all(len(inputs) == 12 for inputs in workloads.values())
        assert all(set(inputs).issubset({0, 1})
                   for inputs in workloads.values())
