"""Smoke tests for the experiment runners (tiny parameters).

Each experiment function is exercised with minimal sizes so the full
EXPERIMENTS.md pipeline stays runnable; the benchmarks run the same code at
the reported scales.
"""


from repro.analysis.experiments import (run_baseline_experiment,
                                        run_committee_experiment,
                                        run_constants_experiment,
                                        run_crash_forgetful_experiment,
                                        run_exponential_rounds_experiment,
                                        run_feasibility_experiment,
                                        run_lower_bound_experiment,
                                        run_threshold_ablation)
from repro.analysis.statistics import format_table


class TestFeasibilityE1:
    def test_rows_report_correctness_for_every_cell(self):
        rows = run_feasibility_experiment(ns=(12,), trials=1,
                                          max_windows=2000, seed=5)
        assert rows
        assert all(row["agreement_ok"] for row in rows)
        assert all(row["validity_ok"] for row in rows)
        assert all(row["terminated"] for row in rows)
        workloads = {row["workload"] for row in rows}
        adversaries = {row["adversary"] for row in rows}
        assert "split" in workloads and "unanimous-0" in workloads
        assert "adaptive-resetting" in adversaries

    def test_rows_render_as_a_table(self):
        rows = run_feasibility_experiment(ns=(12,), trials=1,
                                          max_windows=2000, seed=5)
        text = format_table(rows)
        assert "adversary" in text


class TestExponentialRoundsE2:
    def test_split_inputs_much_slower_than_unanimous(self):
        rows = run_exponential_rounds_experiment(ns=(12, 18), trials=2,
                                                 seed=5)
        data_rows = [row for row in rows if row["experiment"] == "E2"]
        assert len(data_rows) == 2
        for row in data_rows:
            assert row["mean_windows"] > row["unanimous_mean_windows"]
        # Growth between the two sizes.
        assert data_rows[1]["mean_windows"] > data_rows[0]["mean_windows"]

    def test_fit_row_present_with_positive_growth(self):
        rows = run_exponential_rounds_experiment(ns=(12, 18), trials=2,
                                                 seed=5)
        fit_rows = [row for row in rows if row["experiment"] == "E2-fit"]
        assert len(fit_rows) == 1
        assert fit_rows[0]["fit_growth_rate_per_processor"] > 0


class TestLowerBoundE3:
    def test_machinery_checks_pass(self):
        rows = run_lower_bound_experiment(ns=(8,), samples=3,
                                          separation_trials=4, seed=5)
        assert len(rows) == 1
        row = rows[0]
        assert row["separation_holds"]
        assert 0 < row["tau"] < 1
        assert 0 <= row["hybrid_best_worst_probability"] <= 1


class TestCrashForgetfulE4:
    def test_chain_lengths_grow_with_n(self):
        rows = run_crash_forgetful_experiment(ns=(9, 13), trials=2, seed=5)
        data_rows = [row for row in rows if row["experiment"] == "E4"]
        assert len(data_rows) == 2
        assert all(row["forgetful"] and row["fully_communicative"]
                   for row in data_rows)
        assert data_rows[1]["mean_message_chain"] >= \
            data_rows[0]["mean_message_chain"]


class TestCommitteeE5:
    def test_adaptive_adversary_defeats_committee_election(self):
        rows = run_committee_experiment(ns=(32,), trials=15, seed=5)
        assert len(rows) == 1
        row = rows[0]
        assert row["adaptive_failure_rate"] >= 0.9
        assert row["nonadaptive_failure_rate"] < row["adaptive_failure_rate"]
        assert row["committee_rounds"] < row["adaptive_safe_expected_windows"]


class TestBaselinesE6:
    def test_all_baseline_cells_are_correct(self):
        rows = run_baseline_experiment(ben_or_ns=(9,), bracha_ns=(7,),
                                       trials=1, seed=5)
        assert rows
        assert all(row["agreement_ok"] for row in rows)
        assert all(row["validity_ok"] for row in rows)
        assert all(row["terminated"] for row in rows)
        assert {row["protocol"] for row in rows} == {"ben-or", "bracha"}


class TestThresholdAblationE7:
    def test_valid_configs_safe_and_some_invalid_config_misbehaves(self):
        rows = run_threshold_ablation(n=18, trials=2, max_windows=1200,
                                      seed=5)
        valid_rows = [row for row in rows if row["constraints_ok"]]
        invalid_rows = [row for row in rows if not row["constraints_ok"]]
        assert valid_rows and invalid_rows
        # Theorem 4: valid thresholds never violate agreement or validity.
        assert all(row["agreement_ok"] and row["validity_ok"]
                   for row in valid_rows)
        # At least one constraint violation shows up as an agreement break
        # or as non-termination within the window budget.
        assert any((not row["agreement_ok"]) or row["decided_runs"] == 0
                   for row in invalid_rows)


class TestConstantsE8:
    def test_constants_and_talagrand_rows(self):
        rows = run_constants_experiment(cs=(0.1,), ns=(50, 100), seed=5)
        curve_rows = [row for row in rows if row["experiment"] == "E8"]
        talagrand_rows = [row for row in rows
                          if row["experiment"] == "E8-talagrand"]
        assert len(curve_rows) == 2
        assert all(row["success_probability"] >= 0.5 for row in curve_rows)
        assert curve_rows[1]["predicted_windows"] > \
            curve_rows[0]["predicted_windows"]
        assert talagrand_rows
        assert all(row["inequality_holds"] for row in talagrand_rows)
