"""Backend plumbing: CLI flag, manifest field, bench-gate throughput.

The batched backend must be a pure go-faster switch — selectable from
every front end (``run``/``fuzz``/``search``), recorded in the run
manifest so resumed runs never silently mix backends, surfaced by
``repro show``, and guarded by the bench trajectory's throughput gate.
"""

import importlib.util
import json
import os

import pytest

from repro.cli import main
from repro.results import RunStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

PARAMS = {"ns": (12,), "trials": 1, "seed": 0, "max_windows": 3000}


def _manifest(out, name="E1"):
    from repro.results.store import latest_run
    run_dir = latest_run(str(out), name)
    with open(os.path.join(run_dir, "manifest.json")) as handle:
        return json.load(handle)


# -- CLI ----------------------------------------------------------------

def test_run_accepts_backend_flag(tmp_path, capsys):
    assert main(["run", "E1", "--quick", "--workers", "0", "--no-store",
                 "--backend", "batched"]) == 0
    batched_out = capsys.readouterr().out
    assert main(["run", "E1", "--quick", "--workers", "0", "--no-store",
                 "--backend", "trial"]) == 0
    trial_out = capsys.readouterr().out
    # Identical tables: the backend is unobservable through results.
    strip = [line for line in batched_out.splitlines()
             if not line.startswith("==")]
    assert strip == [line for line in trial_out.splitlines()
                     if not line.startswith("==")]


def test_run_rejects_unknown_backend(capsys):
    with pytest.raises(SystemExit):
        main(["run", "E1", "--no-store", "--backend", "gpu"])
    assert "--backend" in capsys.readouterr().err


def test_manifest_records_backend(tmp_path, capsys):
    assert main(["run", "E1", "--quick", "--workers", "0",
                 "--out", str(tmp_path), "--backend", "batched"]) == 0
    capsys.readouterr()
    assert _manifest(tmp_path)["backend"] == "batched"


def test_resume_under_other_backend_marks_mixed(tmp_path, capsys):
    assert main(["run", "E1", "--quick", "--workers", "0",
                 "--out", str(tmp_path), "--backend", "batched"]) == 0
    assert main(["run", "E1", "--quick", "--workers", "0",
                 "--out", str(tmp_path), "--backend", "trial"]) == 0
    capsys.readouterr()
    assert _manifest(tmp_path)["backend"] == "mixed"
    assert main(["show", "E1", "--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "backend: mixed" in out


def test_show_surfaces_backend(tmp_path, capsys):
    assert main(["run", "E1", "--quick", "--workers", "0",
                 "--out", str(tmp_path), "--backend", "batched"]) == 0
    capsys.readouterr()
    assert main(["show", "E1", "--out", str(tmp_path)]) == 0
    assert "backend: batched" in capsys.readouterr().out


# -- the store contract directly ----------------------------------------

def test_store_keeps_backend_on_readonly_open(tmp_path):
    first = RunStore.open(str(tmp_path), "E1", PARAMS, backend="batched")
    first.finish(0.1)
    # A backend-less constructor (load_run's path) keeps the record.
    reread = RunStore(first.path, "E1", PARAMS)
    assert reread.backend == "batched"


def test_store_same_backend_resume_stays_unmixed(tmp_path):
    RunStore.open(str(tmp_path), "E1", PARAMS, backend="batched")
    again = RunStore.open(str(tmp_path), "E1", PARAMS, backend="batched")
    assert again.manifest["backend"] == "batched"


def test_store_mixed_is_sticky(tmp_path):
    RunStore.open(str(tmp_path), "E1", PARAMS, backend="batched")
    RunStore.open(str(tmp_path), "E1", PARAMS, backend="trial")
    final = RunStore.open(str(tmp_path), "E1", PARAMS, backend="trial")
    assert final.manifest["backend"] == "mixed"


# -- fuzz / search accept the backend ----------------------------------

def test_fuzz_accepts_backend(capsys):
    assert main(["fuzz", "--trials", "4", "--no-store", "--workers", "0",
                 "--backend", "batched"]) in (0, 1)


def test_search_accepts_backend(capsys):
    assert main(["search", "--generations", "1", "--population", "2",
                 "--windows", "20", "--no-store", "--workers", "0",
                 "--no-verify", "--backend", "batched"]) in (0, 1)


# -- the bench gate -----------------------------------------------------

def _bench_record():
    path = os.path.join(REPO_ROOT, "scripts", "bench_record.py")
    spec = importlib.util.spec_from_file_location("bench_record", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_compare_gates_on_mean_seconds():
    bench = _bench_record()
    previous = {"b": {"mean_seconds": 1.0}}
    assert bench.compare(previous, {"b": {"mean_seconds": 1.1}}, 20.0) \
        == []
    slow = bench.compare(previous, {"b": {"mean_seconds": 1.5}}, 20.0)
    assert len(slow) == 1 and "b" in slow[0]


def test_compare_gates_on_throughput_extra_info():
    bench = _bench_record()
    previous = {"b": {"mean_seconds": 1.0,
                      "extra_info": {"trials_per_sec": 1000.0,
                                     "trials": 512}}}
    # Throughput held: no regression even though mean is absent.
    ok = {"b": {"mean_seconds": 1.0,
                "extra_info": {"trials_per_sec": 990.0, "trials": 512}}}
    assert bench.compare(previous, ok, 20.0) == []
    # Throughput collapsed: gate fires on the rate, not the mean.
    bad = {"b": {"mean_seconds": 1.0,
                 "extra_info": {"trials_per_sec": 500.0, "trials": 512}}}
    found = bench.compare(previous, bad, 20.0)
    assert len(found) == 1
    assert "trials_per_sec" in found[0]
    # Non-rate and unshared keys never fire.
    odd = {"b": {"mean_seconds": 1.0,
                 "extra_info": {"trials": 1, "other_per_sec": 1.0}}}
    assert bench.compare(previous, odd, 20.0) == []


def test_compare_ignores_non_numeric_rates():
    bench = _bench_record()
    previous = {"b": {"extra_info": {"x_per_sec": "fast"}}}
    current = {"b": {"extra_info": {"x_per_sec": 1.0}}}
    assert bench.compare(previous, current, 20.0) == []
