"""Tests for the parallel trial runner.

The load-bearing property is determinism: a trial is fully described by its
spec, so the same batch of specs must produce identical results whether it
runs serially in-process (``workers=0``), through a single worker process,
or fanned out across several workers.
"""

import pytest

from repro.adversaries.registry import (available_adversaries,
                                        build_adversary, build_strategy)
from repro.runner import (ParallelRunner, TrialSpec, derive_seed,
                          execute_trial, group_by_tag, run_trials,
                          windows_to_first_decision)
from repro.simulation.windows import run_execution
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.reset_tolerant import ResetTolerantAgreement


def make_specs(trials=6, master_seed=11):
    """A small battery mixing window- and step-engine trials."""
    specs = []
    for index in range(trials):
        specs.append(TrialSpec(
            protocol="reset-tolerant", adversary="split-vote",
            n=12, t=1, inputs=(0, 1) * 6,
            seed=derive_seed(master_seed, 2 * index),
            adversary_kwargs={"seed": derive_seed(master_seed,
                                                  2 * index + 1)},
            max_windows=3000, stop_when="first", tag=("cell", index % 2)))
    specs.append(TrialSpec(
        protocol="bracha", adversary="byzantine",
        n=7, t=2, inputs=(0, 1, 0, 1, 0, 1, 0),
        seed=derive_seed(master_seed, 100),
        adversary_kwargs={"corrupted": (0, 1), "strategy": "flip",
                          "seed": derive_seed(master_seed, 101)},
        engine="step", max_steps=200000, stop_when="all", tag=("step",)))
    return specs


class TestTrialSpec:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            TrialSpec(protocol="ben-or", adversary="benign", n=3, t=1,
                      inputs=(0, 1, 0), engine="quantum")

    def test_rejects_bad_stop_condition(self):
        with pytest.raises(ValueError):
            TrialSpec(protocol="ben-or", adversary="benign", n=3, t=1,
                      inputs=(0, 1, 0), stop_when="eventually")

    def test_execute_matches_direct_run(self):
        """A spec execution equals the equivalent hand-built execution."""
        spec = TrialSpec(
            protocol="reset-tolerant", adversary="split-vote",
            n=12, t=1, inputs=(0, 1) * 6, seed=21,
            adversary_kwargs={"seed": 33}, max_windows=3000,
            stop_when="first")
        direct = run_execution(
            ResetTolerantAgreement, n=12, t=1, inputs=[0, 1] * 6,
            adversary=SplitVoteAdversary(seed=33), max_windows=3000,
            seed=21, stop_when="first")
        assert execute_trial(spec) == direct


class TestDeterminism:
    def test_identical_results_across_worker_counts(self):
        specs = make_specs()
        serial = run_trials(specs, workers=0)
        one_worker = run_trials(specs, workers=1)
        four_workers = run_trials(specs, workers=4)
        assert serial == one_worker
        assert serial == four_workers

    def test_chunk_size_does_not_affect_results_or_order(self):
        specs = make_specs()
        serial = run_trials(specs, workers=0)
        chunked = ParallelRunner(workers=2, chunk_size=2).run(specs)
        assert serial == chunked

    def test_derive_seed_is_stable_and_spread(self):
        assert derive_seed(0, 0) == derive_seed(0, 0)
        seeds = {derive_seed(5, index) for index in range(64)}
        assert len(seeds) == 64


class TestAggregation:
    def test_group_by_tag_preserves_order(self):
        specs = make_specs()
        results = run_trials(specs, workers=0)
        grouped = group_by_tag(specs, results)
        assert list(grouped) == [("cell", 0), ("cell", 1), ("step",)]
        assert sum(len(batch) for batch in grouped.values()) == len(specs)
        # Within a tag, results keep submission order.
        cell0_specs = [s for s in specs if s.tag == ("cell", 0)]
        expected = [execute_trial(s) for s in cell0_specs]
        assert grouped[("cell", 0)] == expected

    def test_group_by_tag_rejects_misaligned_results(self):
        specs = make_specs()
        with pytest.raises(ValueError):
            group_by_tag(specs, [])

    def test_windows_metric_falls_back_to_cap(self):
        spec = TrialSpec(
            protocol="reset-tolerant", adversary="adaptive-resetting",
            n=12, t=1, inputs=(0, 1) * 6, seed=3,
            adversary_kwargs={"seed": 4}, max_windows=2,
            stop_when="first")
        result = execute_trial(spec)
        assert windows_to_first_decision(result) >= 1.0


class TestRegistry:
    def test_unknown_adversary_raises_with_known_names(self):
        with pytest.raises(KeyError, match="split-vote"):
            build_adversary("does-not-exist")

    def test_unknown_strategy_raises(self):
        with pytest.raises(KeyError, match="equivocate"):
            build_strategy("does-not-exist")

    def test_every_registered_adversary_is_instantiable_by_name(self):
        # Every registry entry must build with at worst a seed kwarg.
        for name in available_adversaries():
            adversary = build_adversary(name)
            assert adversary is not None

    def test_byzantine_strategy_resolved_from_string(self):
        adversary = build_adversary("byzantine", corrupted=(0,),
                                    strategy="silent", seed=1)
        assert type(adversary.strategy).__name__ == "SilentStrategy"


class TestRunnerValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=-1)

    def test_nonpositive_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(workers=1, chunk_size=0)

    def test_empty_batch(self):
        assert run_trials([], workers=2) == []
