"""Unit tests for the adversary strategies."""

import pytest

from repro.adversaries.base import FaultBudget, random_subset, senders_excluding
from repro.adversaries.benign import (BenignAdversary,
                                      RandomSchedulerAdversary,
                                      SilencingAdversary)
from repro.adversaries.crash import (CrashAtDecisionAdversary,
                                     CrashSplitVoteAdversary,
                                     StaticCrashAdversary)
from repro.adversaries.polarizing import PolarizingAdversary
from repro.adversaries.split_vote import (AdaptiveResettingAdversary,
                                          SplitVoteAdversary)
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.protocols.base import ProtocolFactory
from repro.simulation.windows import WindowEngine
import random


def make_engine(n=13, t=2, inputs=None, seed=3):
    factory = ProtocolFactory(ResetTolerantAgreement, n=n, t=t)
    if inputs is None:
        inputs = [pid % 2 for pid in range(n)]
    return WindowEngine(factory, inputs, seed=seed)


class TestHelpers:
    def test_senders_excluding(self):
        senders = senders_excluding(5, {1, 3})
        assert senders == frozenset({0, 2, 4})

    def test_random_subset_size_and_membership(self):
        rng = random.Random(1)
        subset = random_subset(range(10), 4, rng)
        assert len(subset) == 4
        assert subset.issubset(set(range(10)))

    def test_random_subset_too_large_raises(self):
        with pytest.raises(ValueError):
            random_subset(range(3), 5, random.Random(1))

    def test_fault_budget(self):
        budget = FaultBudget(2)
        assert budget.fault(1)
        assert budget.fault(1)  # same victim does not consume extra budget
        assert budget.fault(2)
        assert not budget.fault(3)
        assert budget.victims == {1, 2}
        assert budget.remaining == 0


class TestBenignFamily:
    def test_benign_adversary_full_delivery(self):
        engine = make_engine()
        spec = BenignAdversary().next_window(engine)
        spec.validate(engine.n, engine.t)
        assert all(senders == frozenset(range(engine.n))
                   for senders in spec.senders_for)
        assert spec.resets == frozenset()

    def test_random_scheduler_produces_legal_windows(self):
        engine = make_engine()
        adversary = RandomSchedulerAdversary(seed=1, reset_probability=1.0)
        for _ in range(10):
            spec = adversary.next_window(engine)
            spec.validate(engine.n, engine.t)

    def test_random_scheduler_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RandomSchedulerAdversary(reset_probability=1.5)

    def test_silencing_adversary_excludes_first_t_by_default(self):
        engine = make_engine()
        spec = SilencingAdversary().next_window(engine)
        assert spec.senders_for[0] == frozenset(range(2, engine.n))

    def test_silencing_adversary_rejects_oversized_set(self):
        engine = make_engine()
        adversary = SilencingAdversary(silenced=frozenset(range(5)))
        with pytest.raises(ValueError):
            adversary.next_window(engine)


class TestSplitVote:
    def test_windows_are_legal_and_blocking(self):
        engine = make_engine()
        adversary = SplitVoteAdversary(seed=2)
        spec = adversary.next_window(engine)
        spec.validate(engine.n, engine.t)
        assert adversary.blocked_windows == 1

    def test_blocking_prevents_first_window_decision_on_split_inputs(self):
        engine = make_engine()
        adversary = SplitVoteAdversary(seed=2)
        engine.run_window(adversary.next_window(engine))
        assert not engine.any_decided()

    def test_loses_control_on_lopsided_estimates(self):
        # 12 ones and a single zero: hiding t=2 voters cannot mask the skew.
        engine = make_engine(inputs=[1] * 12 + [0])
        adversary = SplitVoteAdversary(seed=2)
        spec = adversary.next_window(engine)
        assert adversary.lost_control_windows == 1
        assert spec.senders_for[0] == frozenset(range(engine.n))

    def test_explicit_block_threshold_used(self):
        engine = make_engine()
        adversary = SplitVoteAdversary(block_threshold=100, seed=2)
        adversary.next_window(engine)
        assert adversary.blocked_windows == 1  # trivially below 100

    def test_adaptive_resetting_adds_resets_within_budget(self):
        engine = make_engine()
        adversary = AdaptiveResettingAdversary(seed=2)
        spec = adversary.next_window(engine)
        spec.validate(engine.n, engine.t)
        assert 0 < len(spec.resets) <= engine.t

    def test_adaptive_resetting_reset_fraction_zero(self):
        engine = make_engine()
        adversary = AdaptiveResettingAdversary(seed=2, reset_fraction=0.0)
        spec = adversary.next_window(engine)
        assert spec.resets == frozenset()

    def test_adaptive_resetting_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            AdaptiveResettingAdversary(reset_fraction=2.0)


class TestCrashFamily:
    def test_static_crash_schedule_applied_once(self):
        engine = make_engine()
        adversary = StaticCrashAdversary(crash_schedule={0: (0, 1)})
        adversary.bind(engine)
        spec = adversary.next_window(engine)
        assert spec.crashes == frozenset({0, 1})
        engine.run_window(spec)
        follow_up = adversary.next_window(engine)
        assert follow_up.crashes == frozenset()

    def test_static_crash_respects_budget(self):
        engine = make_engine()  # t = 2
        adversary = StaticCrashAdversary(crash_schedule={0: (0, 1, 2, 3)})
        adversary.bind(engine)
        spec = adversary.next_window(engine)
        assert len(spec.crashes) <= engine.t

    def test_crash_at_decision_crashes_deciders(self):
        engine = make_engine(inputs=[1] * 13)
        adversary = CrashAtDecisionAdversary()
        adversary.bind(engine)
        engine.run_window(adversary.next_window(engine))
        assert engine.any_decided()
        spec = adversary.next_window(engine)
        assert len(spec.crashes) == engine.t

    def test_crash_split_vote_never_resets(self):
        engine = make_engine()
        adversary = CrashSplitVoteAdversary(seed=1)
        for _ in range(5):
            spec = adversary.next_window(engine)
            assert spec.resets == frozenset()
            engine.run_window(spec)


class TestPolarizing:
    def test_windows_are_legal(self):
        engine = make_engine()
        spec = PolarizingAdversary(seed=1).next_window(engine)
        spec.validate(engine.n, engine.t)

    def test_two_camps_see_different_sender_sets_on_split_inputs(self):
        engine = make_engine()
        spec = PolarizingAdversary(seed=1).next_window(engine)
        assert spec.senders_for[0] != spec.senders_for[engine.n - 1]
