"""Tests for the executable Theorem 5 lower-bound machinery."""

import pytest

from repro.adversaries.interpolation import interpolate_windows
from repro.core.lower_bound import (best_hybrid, decision_set_separation,
                                    estimate_decision_probability,
                                    find_balanced_inputs,
                                    hybrid_window_sweep, lower_bound_report,
                                    sample_decision_configurations)
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.protocols.base import ProtocolFactory
from repro.simulation.windows import WindowEngine, WindowSpec


N, T = 13, 2


def make_engine(inputs, seed=1):
    factory = ProtocolFactory(ResetTolerantAgreement, n=N, t=T)
    return WindowEngine(factory, inputs, seed=seed)


class TestDecisionSetSampling:
    def test_samples_contain_both_decision_values(self):
        zeros, ones = sample_decision_configurations(
            ResetTolerantAgreement, n=N, t=T, trials=8, seed=3)
        assert zeros and ones
        assert all(config.has_decision(0) for config in zeros)
        assert all(config.has_decision(1) for config in ones)

    def test_separation_exceeds_t(self):
        report = decision_set_separation(ResetTolerantAgreement, n=N, t=T,
                                         trials=8, seed=3)
        assert report.zero_samples > 0 and report.one_samples > 0
        assert report.min_distance is not None
        assert report.min_distance > T
        assert report.satisfied
        assert report.required == T + 1


class TestWindowOutcomeEstimation:
    def test_unanimous_inputs_decide_with_probability_one(self):
        engine = make_engine([1] * N)
        probability = estimate_decision_probability(
            engine, WindowSpec.full_delivery(N), value=1, samples=4, seed=2)
        assert probability == 1.0

    def test_unanimous_inputs_never_decide_the_other_value(self):
        engine = make_engine([1] * N)
        probability = estimate_decision_probability(
            engine, WindowSpec.full_delivery(N), value=0, samples=4,
            horizon=2, seed=2)
        assert probability == 0.0

    def test_any_value_decision_probability(self):
        engine = make_engine([0] * N)
        probability = estimate_decision_probability(
            engine, WindowSpec.full_delivery(N), value=None, samples=3,
            seed=2)
        assert probability == 1.0


class TestInterpolation:
    def test_interpolate_windows_mixes_coordinates(self):
        everyone = frozenset(range(N))
        spec_a = WindowSpec.uniform(N, everyone - frozenset({0, 1}),
                                    resets=frozenset({0, 1}))
        spec_b = WindowSpec.uniform(N, everyone - frozenset({11, 12}),
                                    resets=frozenset({11, 12}))
        hybrid = interpolate_windows(spec_a, spec_b, j=6, max_resets=T)
        assert hybrid.senders_for[0] == spec_a.senders_for[0]
        assert hybrid.senders_for[12] == spec_b.senders_for[12]
        assert len(hybrid.resets) <= T
        hybrid.validate(N, T)

    def test_interpolate_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            interpolate_windows(WindowSpec.full_delivery(4),
                                WindowSpec.full_delivery(5), 2)

    def test_hybrid_sweep_and_best_point(self):
        engine = make_engine([pid % 2 for pid in range(N)])
        everyone = frozenset(range(N))
        spec_a = WindowSpec.uniform(N, everyone - frozenset({0, 1}),
                                    resets=frozenset({0, 1}))
        spec_b = WindowSpec.uniform(N, everyone - frozenset({11, 12}),
                                    resets=frozenset({11, 12}))
        sweep = hybrid_window_sweep(engine, spec_a, spec_b, samples=3,
                                    horizon=1, seed=4, points=[0, 6, N])
        assert len(sweep) == 3
        best = best_hybrid(sweep)
        assert best.worst == min(point.worst for point in sweep)
        assert all(0.0 <= point.worst <= 1.0 for point in sweep)

    def test_best_hybrid_rejects_empty_sweep(self):
        with pytest.raises(ValueError):
            best_hybrid([])


class TestInputInterpolation:
    def test_balanced_inputs_are_not_unanimous(self):
        result = find_balanced_inputs(ResetTolerantAgreement, n=N, t=T,
                                      samples=3, horizon=2, seed=5)
        ones = sum(result.inputs)
        assert 0 < ones < N
        assert len(result.sweep) == N + 1
        assert result.zero_probability <= 1.0
        assert result.one_probability <= 1.0


class TestFullReport:
    def test_lower_bound_report_is_internally_consistent(self):
        report = lower_bound_report(ResetTolerantAgreement, n=N, t=T,
                                    separation_trials=6, samples=3, seed=7)
        assert report.n == N and report.t == T
        assert report.separation.satisfied
        assert 0.0 < report.tau < 1.0
        assert 0.0 <= report.hybrid_best.worst <= 1.0
        assert 0 < sum(report.balanced_inputs.inputs) < N
