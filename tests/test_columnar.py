"""Columnar compaction tests: losslessness, staleness, resume boundary."""

import json
import os

import pytest

from repro.experiments import get_experiment
from repro.results import RunStore, run_directory
from repro.results.columnar import (CODEC_JSON, CODEC_PARQUET,
                                    JSON_COLUMNS_NAME, CompactionError,
                                    NonFiniteRowError, canonical_record_dump,
                                    columnar_info, compact_run,
                                    default_codec, pyarrow_ok,
                                    read_jsonl_records, read_records,
                                    records_to_rows, source_digest)

E2_PARAMS = {"ns": (12, 16), "trials": 1, "max_windows": 200000,
             "use_resets": True, "seed": 9}


def _write_records(run_dir, records):
    os.makedirs(run_dir, exist_ok=True)
    with open(os.path.join(run_dir, "rows.jsonl"), "w") as handle:
        for record in records:
            handle.write(json.dumps(record, allow_nan=False) + "\n")


def _synthetic_records():
    # Mixed shapes, mixed types, null-vs-missing, and divergent key
    # order: everything the bit-identity contract must survive.
    return [
        {"index": 0, "key": ["a", 1], "row": {"n": 5, "p": 0.5, "ok": True}},
        {"index": 1, "key": ["a", 2], "row": {"p": 0.25, "n": 6, "ok": False}},
        {"index": 2, "key": ["b", 1], "row": {"n": 7, "extra": None}},
        {"index": 3, "key": ["b", 2],
         "row": {"n": 8, "nested": {"z": 1, "a": [1, 2]}, "label": "x"}},
        {"index": 4, "key": ["c"], "row": {"n": 9, "p": 1}},  # int, not float
    ]


class TestJsonColumnsCodec:
    def test_roundtrip_is_bit_identical(self, tmp_path):
        records = _synthetic_records()
        run_dir = str(tmp_path / "run")
        _write_records(run_dir, records)
        info = compact_run(run_dir, codec=CODEC_JSON)
        assert info.codec == CODEC_JSON
        assert info.rows == len(records)
        decoded, source = read_records(run_dir)
        assert source == CODEC_JSON
        assert decoded == records
        assert [canonical_record_dump(record) for record in decoded] == \
            [canonical_record_dump(record) for record in records]
        # Key order inside each row survives, not just dict equality.
        assert [list(record["row"]) for record in decoded] == \
            [list(record["row"]) for record in records]

    def test_int_float_columns_do_not_promote(self, tmp_path):
        # "p" holds 0.5 in one row and the int 1 in another; a column
        # store that promotes to double would return 1.0.
        run_dir = str(tmp_path / "run")
        _write_records(run_dir, _synthetic_records())
        compact_run(run_dir, codec=CODEC_JSON)
        decoded, _ = read_records(run_dir)
        value = decoded[4]["row"]["p"]
        assert value == 1 and isinstance(value, int)

    def test_header_line_carries_metadata(self, tmp_path):
        run_dir = str(tmp_path / "run")
        _write_records(run_dir, _synthetic_records())
        compact_run(run_dir, codec=CODEC_JSON)
        with open(os.path.join(run_dir, JSON_COLUMNS_NAME)) as handle:
            header = json.loads(handle.readline())
        assert header["codec"] == CODEC_JSON
        assert header["rows"] == 5
        assert header["source_digest"] == source_digest(
            os.path.join(run_dir, "rows.jsonl"))

    def test_empty_run_dir_compacts_to_none(self, tmp_path):
        assert compact_run(str(tmp_path)) is None
        assert columnar_info(str(tmp_path)) is None

    def test_unknown_codec_rejected(self, tmp_path):
        run_dir = str(tmp_path / "run")
        _write_records(run_dir, _synthetic_records())
        with pytest.raises(ValueError, match="unknown columnar codec"):
            compact_run(run_dir, codec="feather")


class TestStaleness:
    def test_appended_rows_invalidate_the_copy(self, tmp_path):
        records = _synthetic_records()
        run_dir = str(tmp_path / "run")
        _write_records(run_dir, records)
        compact_run(run_dir, codec=CODEC_JSON)
        extra = {"index": 5, "key": ["d"], "row": {"n": 10}}
        with open(os.path.join(run_dir, "rows.jsonl"), "a") as handle:
            handle.write(json.dumps(extra, allow_nan=False) + "\n")
        decoded, source = read_records(run_dir)
        assert source == "jsonl"  # stale copy refused
        assert decoded == records + [extra]
        # Recompaction freshens it again.
        info = compact_run(run_dir, codec=CODEC_JSON)
        assert info.rows == 6
        decoded, source = read_records(run_dir)
        assert source == CODEC_JSON
        assert decoded == records + [extra]

    def test_corrupt_copy_falls_back_to_jsonl(self, tmp_path):
        records = _synthetic_records()
        run_dir = str(tmp_path / "run")
        _write_records(run_dir, records)
        compact_run(run_dir, codec=CODEC_JSON)
        path = os.path.join(run_dir, JSON_COLUMNS_NAME)
        with open(path) as handle:
            header = handle.readline()
        with open(path, "w") as handle:
            handle.write(header)
            handle.write("{broken payload\n")
        with pytest.warns(RuntimeWarning, match="columnar read failed"):
            decoded, source = read_records(run_dir)
        assert source == "jsonl"
        assert decoded == records


class TestNonFiniteRows:
    def test_nan_line_raises_instead_of_dropping(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        rows_path = os.path.join(run_dir, "rows.jsonl")
        with open(rows_path, "w") as handle:
            handle.write('{"index": 0, "key": ["a"], "row": {"x": NaN}}\n')
        with pytest.raises(NonFiniteRowError, match="NaN"):
            read_jsonl_records(rows_path)

    def test_torn_lines_still_skipped(self, tmp_path):
        run_dir = str(tmp_path / "run")
        records = _synthetic_records()[:2]
        _write_records(run_dir, records)
        rows_path = os.path.join(run_dir, "rows.jsonl")
        with open(rows_path, "a") as handle:
            handle.write('{"index": 9, "key": ["torn"')
        assert read_jsonl_records(rows_path) == records

    def test_compaction_refuses_non_finite_sources(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        with open(os.path.join(run_dir, "rows.jsonl"), "w") as handle:
            handle.write('{"index": 0, "key": ["a"], '
                         '"row": {"x": Infinity}}\n')
        with pytest.raises(NonFiniteRowError):
            compact_run(run_dir, codec=CODEC_JSON)


class TestCompactionThroughTheStore:
    def test_finish_compacts_and_records_manifest_block(self, tmp_path):
        experiment = get_experiment("E8")
        params = experiment.resolve_params(
            {"cs": (0.1,), "ns": (50,), "seed": 3})
        store = RunStore.open(str(tmp_path), "E8", params, workers=0)
        experiment.run(params=params, store=store)
        store.finish(wall_time=0.1)
        block = store.manifest["columnar"]
        assert block["codec"] == default_codec()
        assert block["rows"] == store.row_count
        info = columnar_info(store.path)
        assert info is not None
        assert info.source_digest == block["source_digest"]
        decoded, source = read_records(store.path)
        assert source == block["codec"]
        assert records_to_rows(decoded) == store.rows()

    def test_kill_resume_across_compaction_boundary(self, tmp_path):
        """compact -> resume -> recompact == uninterrupted serial run."""
        experiment = get_experiment("E2")
        params = experiment.resolve_params(E2_PARAMS)
        reference = experiment.run(params=params, workers=0)

        path = run_directory(str(tmp_path), "E2", params)
        killed = _KillAfter(path, "E2", params, kill_after=1)
        with pytest.raises(KeyboardInterrupt):
            experiment.run(params=params, workers=0, store=killed)
        # The partial run gets compacted (a reader pass, say a query,
        # triggered it) before anyone resumes.
        info = compact_run(path)
        assert info.rows == 1

        resumed = RunStore.open(str(tmp_path), "E2", params, workers=0)
        rows = experiment.run(params=params, workers=0, store=resumed)
        # Mid-resume the columnar copy is stale; reads must serve jsonl.
        decoded, source = read_records(path)
        assert source == "jsonl"
        assert records_to_rows(decoded) == resumed.rows()
        resumed.finish(wall_time=0.2)

        assert rows == reference
        decoded, source = read_records(path)
        assert source != "jsonl"  # recompacted and fresh again
        assert records_to_rows(decoded) == \
            records_to_rows(read_jsonl_records(
                os.path.join(path, "rows.jsonl")))
        # No duplicate cells leaked through the boundary.
        keys = [json.dumps(record["key"]) for record in decoded]
        assert len(keys) == len(set(keys))

    def test_compaction_failure_never_fails_the_run(self, tmp_path,
                                                    monkeypatch):
        import repro.results.store as store_module

        def exploding_compact(run_dir, codec=None):
            raise CompactionError("simulated codec failure")

        monkeypatch.setattr(store_module, "compact_run", exploding_compact)
        experiment = get_experiment("E8")
        params = experiment.resolve_params(
            {"cs": (0.1,), "ns": (50,), "seed": 3})
        store = RunStore.open(str(tmp_path), "E8", params, workers=0)
        experiment.run(params=params, store=store)
        with pytest.warns(RuntimeWarning, match="compaction failed"):
            store.finish(wall_time=0.1)
        assert store.manifest["completed"] is True
        assert store.manifest["columnar"] is None
        decoded, source = read_records(store.path)
        assert source == "jsonl"
        assert records_to_rows(decoded) == store.rows()


@pytest.mark.skipif(not pyarrow_ok(), reason="pyarrow not installed")
class TestParquetCodec:
    def test_roundtrip_is_bit_identical(self, tmp_path):
        records = _synthetic_records()
        run_dir = str(tmp_path / "run")
        _write_records(run_dir, records)
        info = compact_run(run_dir, codec=CODEC_PARQUET)
        assert info.codec == CODEC_PARQUET
        decoded, source = read_records(run_dir)
        assert source == CODEC_PARQUET
        assert decoded == records
        assert [canonical_record_dump(record) for record in decoded] == \
            [canonical_record_dump(record) for record in records]

    def test_default_codec_prefers_parquet(self):
        assert default_codec() == CODEC_PARQUET


class _KillAfter(RunStore):
    """A store that dies (like SIGKILL mid-run) after N row writes."""

    def __init__(self, *args, kill_after, **kwargs):
        super().__init__(*args, **kwargs)
        self._writes_left = kill_after

    def write_row(self, index, key, row):
        if self._writes_left == 0:
            raise KeyboardInterrupt("killed mid-run")
        self._writes_left -= 1
        super().write_row(index, key, row)
