"""Property-based tests (hypothesis) for core data structures and invariants."""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversaries.fuzzing import StepFuzzer
from repro.analysis.product_measure import (ProductDistribution, hamming,
                                            verify_talagrand)
from repro.analysis.statistics import fit_exponential, summarize_trials
from repro.core.talagrand import (lower_bound_constants, talagrand_bound,
                                  two_set_bound)
from repro.core.thresholds import ThresholdConfig, default_thresholds
from repro.protocols.base import ProtocolFactory
from repro.protocols.ben_or import PROPOSE, REPORT, BenOrAgreement
from repro.protocols.registry import get_protocol
from repro.simulation.configuration import Configuration
from repro.simulation.engine import StepEngine
from repro.simulation.errors import InvalidWindowError
from repro.simulation.message import Message, broadcast
from repro.simulation.network import Network
from repro.simulation.windows import WindowSpec
from repro.verification.shrink import (schedule_from_jsonable,
                                       schedule_to_jsonable)


# ----------------------------------------------------------------------
# Hamming distance is a metric on configurations.
# ----------------------------------------------------------------------
state_strategy = st.tuples(st.integers(0, 1),
                           st.sampled_from([None, 0, 1]),
                           st.integers(0, 3),
                           st.integers(0, 5))


def configurations(n):
    return st.lists(state_strategy, min_size=n, max_size=n).map(
        lambda states: Configuration(states=tuple(states)))


@given(st.integers(2, 8).flatmap(
    lambda n: st.tuples(configurations(n), configurations(n),
                        configurations(n))))
def test_hamming_distance_is_a_metric(triple):
    a, b, c = triple
    assert a.hamming_distance(b) == b.hamming_distance(a)
    assert a.hamming_distance(a) == 0
    assert 0 <= a.hamming_distance(b) <= a.n
    # Triangle inequality.
    assert a.hamming_distance(c) <= \
        a.hamming_distance(b) + b.hamming_distance(c)
    # Identity of indiscernibles.
    if a.hamming_distance(b) == 0:
        assert a.states == b.states


# ----------------------------------------------------------------------
# Threshold constraints: Theorem 4's default settings are always valid for
# any admissible (n, t), and the constraint checker is consistent.
# ----------------------------------------------------------------------
@given(st.integers(7, 200))
def test_default_thresholds_valid_whenever_t_positive(n):
    t = (n - 1) // 6
    if t <= 0:
        return
    config = default_thresholds(n, t)
    assert config.valid
    assert config.t1 >= config.t2 >= config.t3 + t
    assert 2 * config.t3 > n


@given(st.integers(6, 60), st.integers(1, 9), st.integers(1, 60),
       st.integers(1, 60), st.integers(1, 60))
def test_violations_and_valid_agree(n, t, t1, t2, t3):
    if t >= n:
        return
    config = ThresholdConfig(n=n, t=t, t1=t1, t2=t2, t3=t3)
    assert config.valid == (config.violations() == [])


# ----------------------------------------------------------------------
# Window specifications: the full-delivery window is always acceptable, and
# validation accepts exactly the windows within the fault budget.
# ----------------------------------------------------------------------
@given(st.integers(2, 20), st.data())
def test_uniform_windows_validate_iff_within_budget(n, data):
    t = data.draw(st.integers(0, n - 1))
    excluded_size = data.draw(st.integers(0, n - 1))
    excluded = frozenset(range(excluded_size))
    senders = frozenset(range(n)) - excluded
    spec = WindowSpec.uniform(n, senders)
    if excluded_size <= t:
        spec.validate(n, t)
    else:
        try:
            spec.validate(n, t)
            assert False, "expected an InvalidWindowError"
        except Exception:
            pass
    WindowSpec.full_delivery(n).validate(n, t)


# ----------------------------------------------------------------------
# Arbitrary admissible window specifications: anything built within the
# Definition 1 budgets validates, any budget violation is rejected, and
# the counterexample JSON encoding round-trips exactly.
# ----------------------------------------------------------------------
@st.composite
def admissible_window_specs(draw):
    """(n, t, spec) with per-processor sender sets inside the budgets."""
    n = draw(st.integers(3, 12))
    t = draw(st.integers(0, n - 1))
    everyone = frozenset(range(n))
    senders_for = []
    for _ in range(n):
        excluded = draw(st.sets(st.integers(0, n - 1), max_size=t))
        senders_for.append(everyone - frozenset(excluded))
    resets = frozenset(draw(st.sets(st.integers(0, n - 1), max_size=t)))
    deliver_last = frozenset(draw(st.sets(st.integers(0, n - 1),
                                          max_size=n)))
    crashes = frozenset(draw(st.sets(st.integers(0, n - 1), max_size=n)))
    return n, t, WindowSpec(senders_for=tuple(senders_for), resets=resets,
                            crashes=crashes, deliver_last=deliver_last)


@given(admissible_window_specs())
def test_admissible_window_specs_validate(drawn):
    n, t, spec = drawn
    spec.validate(n, t)
    for senders in spec.senders_for:
        assert len(senders) >= n - t
    assert len(spec.resets) <= t


@given(admissible_window_specs(), st.data())
def test_budget_violations_are_rejected(drawn, data):
    n, t, spec = drawn
    mutation = data.draw(st.sampled_from(["starve", "over-reset",
                                          "alien-sender"]))
    if mutation == "starve":
        # Shrink one sender set below n - t.
        if n - t - 1 < 0:
            return
        victim = data.draw(st.integers(0, n - 1))
        starved = frozenset(range(n - t - 1))
        senders_for = list(spec.senders_for)
        senders_for[victim] = starved
        bad = WindowSpec(senders_for=tuple(senders_for))
    elif mutation == "over-reset":
        if t + 1 > n:
            return
        bad = WindowSpec(senders_for=spec.senders_for,
                         resets=frozenset(range(t + 1)))
    else:
        senders_for = list(spec.senders_for)
        senders_for[0] = senders_for[0] | {n + 3}
        bad = WindowSpec(senders_for=tuple(senders_for))
    with pytest.raises(InvalidWindowError):
        bad.validate(n, t)


@given(st.lists(admissible_window_specs(), min_size=0, max_size=5))
def test_schedule_json_encoding_round_trips(drawn):
    schedule = [spec for _, _, spec in drawn]
    assert schedule_from_jsonable(schedule_to_jsonable(schedule)) \
        == schedule


# ----------------------------------------------------------------------
# Protocol state machines: round counters never go backwards and the
# write-once output bit is never retracted — under arbitrary (even
# malformed) message streams for Ben-Or, and under arbitrary admissible
# step schedules for Bracha.
# ----------------------------------------------------------------------
_ben_or_payloads = st.one_of(
    st.tuples(st.sampled_from([REPORT, PROPOSE]), st.integers(1, 4),
              st.sampled_from([0, 1, None])),
    st.tuples(st.sampled_from([REPORT, PROPOSE]), st.text(max_size=2),
              st.integers(0, 1)),
    st.text(max_size=3),
    st.integers(-2, 2),
)


@given(st.integers(0, 1),
       st.lists(st.tuples(st.integers(0, 8), _ben_or_payloads),
                min_size=0, max_size=60))
def test_ben_or_rounds_monotone_and_decision_stable(input_bit, stream):
    protocol = BenOrAgreement(pid=0, n=9, t=4, input_bit=input_bit,
                              rng=random.Random(0))
    previous_round, previous_phase = protocol.round, protocol.phase
    output = protocol.output
    for sender, payload in stream:
        protocol.send_step()
        protocol.receive_step(Message(sender=sender, receiver=0,
                                      payload=payload))
        # Round counter is monotone, and within a round the phase only
        # moves forward (REPORT before PROPOSE).
        assert protocol.round >= previous_round
        if protocol.round == previous_round:
            assert not (previous_phase == PROPOSE
                        and protocol.phase == REPORT)
        # The write-once output bit is never retracted or overwritten.
        if output is not None:
            assert protocol.decided and protocol.output == output
        output = protocol.output
        previous_round, previous_phase = protocol.round, protocol.phase


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 2 ** 32 - 1))
def test_bracha_rounds_monotone_under_fuzzed_schedules(seed):
    info = get_protocol("bracha")
    n, t = 7, 2
    factory = ProtocolFactory(info.protocol_cls, n=n, t=t)
    engine = StepEngine(factory, [pid % 2 for pid in range(n)],
                        seed=seed)
    adversary = StepFuzzer(seed=seed)
    adversary.bind(engine)
    rounds = [proc.protocol.current_round()
              for proc in engine.processors]
    outputs = list(engine.outputs())
    for _ in range(1500):
        if engine.all_live_decided():
            break
        step = adversary.next_step(engine)
        if step is None:
            break
        engine.apply_step(step)
        for pid, proc in enumerate(engine.processors):
            assert proc.protocol.current_round() >= rounds[pid]
            if outputs[pid] is not None:
                assert proc.output == outputs[pid]
            rounds[pid] = proc.protocol.current_round()
            outputs[pid] = proc.output


# ----------------------------------------------------------------------
# Network conservation: messages are never created or destroyed by the
# buffer — sent = delivered + pending (in the absence of explicit drops).
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                min_size=0, max_size=40),
       st.integers(0, 1000))
def test_network_conserves_messages(channel_pairs, seed):
    n = 6
    network = Network(n)
    rng = random.Random(seed)
    for sender, receiver in channel_pairs:
        network.submit(broadcast(sender, n, payload=("m", sender, receiver)))
    # Deliver a random subset of pending messages.
    pending = network.all_pending()
    rng.shuffle(pending)
    for message in pending[:len(pending) // 2]:
        network.deliver(message)
    assert network.sent_count == \
        network.delivered_count + network.pending_count()


# ----------------------------------------------------------------------
# Talagrand's inequality holds for every sub-level set of the uniform cube.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 9), st.data())
def test_talagrand_inequality_on_sublevel_sets(n, data):
    k = data.draw(st.integers(0, n))
    d = data.draw(st.integers(0, n))
    distribution = ProductDistribution.uniform_bits(n)
    points = [point for point, _ in distribution.enumerate_support()
              if sum(point) <= k]
    check = verify_talagrand(distribution, points, radius=d, exact=True)
    assert check.satisfied


@given(st.integers(1, 400), st.integers(0, 400))
def test_talagrand_bound_bounds_and_monotonicity(n, d):
    bound = talagrand_bound(d, n)
    # The bound is a probability (it may underflow to 0.0 for huge d/n).
    assert 0.0 <= bound <= 1.0
    assert two_set_bound(d, n) >= bound
    if d >= 1:
        assert talagrand_bound(d - 1, n) >= bound


# ----------------------------------------------------------------------
# Theorem 5 constants: for every fault fraction the adversary's success
# probability stays at least one half on every system size.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.floats(0.01, 0.45), st.integers(1, 2000))
def test_lower_bound_success_probability_at_least_half(c, n):
    constants = lower_bound_constants(c)
    assert constants.success_probability(n) >= 0.5 - 1e-9
    assert constants.alpha == (c * c) / 9.0


# ----------------------------------------------------------------------
# Statistics helpers.
# ----------------------------------------------------------------------
@given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
def test_summary_bounds_contain_mean_and_median(values):
    summary = summarize_trials(values)
    tolerance = 1e-9 * max(abs(summary.minimum), abs(summary.maximum), 1.0)
    assert summary.minimum <= summary.median <= summary.maximum
    assert summary.minimum - tolerance <= summary.mean \
        <= summary.maximum + tolerance
    assert summary.count == len(values)


@given(st.floats(0.05, 5.0), st.floats(-0.3, 0.5),
       st.lists(st.integers(1, 60), min_size=3, max_size=10, unique=True))
def test_exponential_fit_recovers_exact_data(a, b, xs):
    xs = sorted(xs)
    ys = [a * math.exp(b * x) for x in xs]
    if any(y <= 0 or not math.isfinite(y) for y in ys):
        return
    fit = fit_exponential(xs, ys)
    assert math.isclose(fit.a, a, rel_tol=1e-4, abs_tol=1e-6)
    assert math.isclose(fit.b, b, rel_tol=1e-4, abs_tol=1e-6)
