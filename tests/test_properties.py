"""Property-based tests (hypothesis) for core data structures and invariants."""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.product_measure import (ProductDistribution, hamming,
                                            verify_talagrand)
from repro.analysis.statistics import fit_exponential, summarize_trials
from repro.core.talagrand import (lower_bound_constants, talagrand_bound,
                                  two_set_bound)
from repro.core.thresholds import ThresholdConfig, default_thresholds
from repro.simulation.configuration import Configuration
from repro.simulation.message import broadcast
from repro.simulation.network import Network
from repro.simulation.windows import WindowSpec


# ----------------------------------------------------------------------
# Hamming distance is a metric on configurations.
# ----------------------------------------------------------------------
state_strategy = st.tuples(st.integers(0, 1),
                           st.sampled_from([None, 0, 1]),
                           st.integers(0, 3),
                           st.integers(0, 5))


def configurations(n):
    return st.lists(state_strategy, min_size=n, max_size=n).map(
        lambda states: Configuration(states=tuple(states)))


@given(st.integers(2, 8).flatmap(
    lambda n: st.tuples(configurations(n), configurations(n),
                        configurations(n))))
def test_hamming_distance_is_a_metric(triple):
    a, b, c = triple
    assert a.hamming_distance(b) == b.hamming_distance(a)
    assert a.hamming_distance(a) == 0
    assert 0 <= a.hamming_distance(b) <= a.n
    # Triangle inequality.
    assert a.hamming_distance(c) <= \
        a.hamming_distance(b) + b.hamming_distance(c)
    # Identity of indiscernibles.
    if a.hamming_distance(b) == 0:
        assert a.states == b.states


# ----------------------------------------------------------------------
# Threshold constraints: Theorem 4's default settings are always valid for
# any admissible (n, t), and the constraint checker is consistent.
# ----------------------------------------------------------------------
@given(st.integers(7, 200))
def test_default_thresholds_valid_whenever_t_positive(n):
    t = (n - 1) // 6
    if t <= 0:
        return
    config = default_thresholds(n, t)
    assert config.valid
    assert config.t1 >= config.t2 >= config.t3 + t
    assert 2 * config.t3 > n


@given(st.integers(6, 60), st.integers(1, 9), st.integers(1, 60),
       st.integers(1, 60), st.integers(1, 60))
def test_violations_and_valid_agree(n, t, t1, t2, t3):
    if t >= n:
        return
    config = ThresholdConfig(n=n, t=t, t1=t1, t2=t2, t3=t3)
    assert config.valid == (config.violations() == [])


# ----------------------------------------------------------------------
# Window specifications: the full-delivery window is always acceptable, and
# validation accepts exactly the windows within the fault budget.
# ----------------------------------------------------------------------
@given(st.integers(2, 20), st.data())
def test_uniform_windows_validate_iff_within_budget(n, data):
    t = data.draw(st.integers(0, n - 1))
    excluded_size = data.draw(st.integers(0, n - 1))
    excluded = frozenset(range(excluded_size))
    senders = frozenset(range(n)) - excluded
    spec = WindowSpec.uniform(n, senders)
    if excluded_size <= t:
        spec.validate(n, t)
    else:
        try:
            spec.validate(n, t)
            assert False, "expected an InvalidWindowError"
        except Exception:
            pass
    WindowSpec.full_delivery(n).validate(n, t)


# ----------------------------------------------------------------------
# Network conservation: messages are never created or destroyed by the
# buffer — sent = delivered + pending (in the absence of explicit drops).
# ----------------------------------------------------------------------
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                min_size=0, max_size=40),
       st.integers(0, 1000))
def test_network_conserves_messages(channel_pairs, seed):
    n = 6
    network = Network(n)
    rng = random.Random(seed)
    for sender, receiver in channel_pairs:
        network.submit(broadcast(sender, n, payload=("m", sender, receiver)))
    # Deliver a random subset of pending messages.
    pending = network.all_pending()
    rng.shuffle(pending)
    for message in pending[:len(pending) // 2]:
        network.deliver(message)
    assert network.sent_count == \
        network.delivered_count + network.pending_count()


# ----------------------------------------------------------------------
# Talagrand's inequality holds for every sub-level set of the uniform cube.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 9), st.data())
def test_talagrand_inequality_on_sublevel_sets(n, data):
    k = data.draw(st.integers(0, n))
    d = data.draw(st.integers(0, n))
    distribution = ProductDistribution.uniform_bits(n)
    points = [point for point, _ in distribution.enumerate_support()
              if sum(point) <= k]
    check = verify_talagrand(distribution, points, radius=d, exact=True)
    assert check.satisfied


@given(st.integers(1, 400), st.integers(0, 400))
def test_talagrand_bound_bounds_and_monotonicity(n, d):
    bound = talagrand_bound(d, n)
    # The bound is a probability (it may underflow to 0.0 for huge d/n).
    assert 0.0 <= bound <= 1.0
    assert two_set_bound(d, n) >= bound
    if d >= 1:
        assert talagrand_bound(d - 1, n) >= bound


# ----------------------------------------------------------------------
# Theorem 5 constants: for every fault fraction the adversary's success
# probability stays at least one half on every system size.
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.floats(0.01, 0.45), st.integers(1, 2000))
def test_lower_bound_success_probability_at_least_half(c, n):
    constants = lower_bound_constants(c)
    assert constants.success_probability(n) >= 0.5 - 1e-9
    assert constants.alpha == (c * c) / 9.0


# ----------------------------------------------------------------------
# Statistics helpers.
# ----------------------------------------------------------------------
@given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50))
def test_summary_bounds_contain_mean_and_median(values):
    summary = summarize_trials(values)
    tolerance = 1e-9 * max(abs(summary.minimum), abs(summary.maximum), 1.0)
    assert summary.minimum <= summary.median <= summary.maximum
    assert summary.minimum - tolerance <= summary.mean \
        <= summary.maximum + tolerance
    assert summary.count == len(values)


@given(st.floats(0.05, 5.0), st.floats(-0.3, 0.5),
       st.lists(st.integers(1, 60), min_size=3, max_size=10, unique=True))
def test_exponential_fit_recovers_exact_data(a, b, xs):
    xs = sorted(xs)
    ys = [a * math.exp(b * x) for x in xs]
    if any(y <= 0 or not math.isfinite(y) for y in ys):
        return
    fit = fit_exponential(xs, ys)
    assert math.isclose(fit.a, a, rel_tol=1e-4, abs_tol=1e-6)
    assert math.isclose(fit.b, b, rel_tol=1e-4, abs_tol=1e-6)
