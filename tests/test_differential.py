"""Differential cross-engine replay tests (window engine vs step engine)."""

import dataclasses

import pytest

from repro.experiments import get_experiment
from repro.runner import TrialSpec
from repro.verification import differential_replay


def _e1_quick_specs():
    """Every trial spec behind the E1 quick table, labelled by cell."""
    cells = get_experiment("E1").cells(quick=True)
    return [(cell.key, spec) for cell in cells for spec in cell.specs]


class TestDifferentialReplay:
    @pytest.mark.parametrize(
        "key,spec", _e1_quick_specs(),
        ids=[("-".join(str(part) for part in key))
             for key, _ in _e1_quick_specs()])
    def test_all_e1_quick_cells_agree_across_engines(self, key, spec):
        report = differential_replay(spec)
        assert report.agree, (
            f"engines diverged on {key}: {report.mismatches}")
        assert report.window_outputs == report.step_outputs

    def test_crash_model_cells_agree_across_engines(self):
        # An E6-style Ben-Or cell with real crash placements, exercising
        # the crash-compilation path of the replayer.
        spec = TrialSpec(
            protocol="ben-or", adversary="static-crash", n=9, t=4,
            inputs=tuple(pid % 2 for pid in range(9)), seed=13,
            adversary_kwargs={"crash_schedule": {0: (0, 1), 2: (2,)}},
            max_windows=200, stop_when="all")
        report = differential_replay(spec)
        assert report.agree, report.mismatches
        assert report.window_outputs == report.step_outputs

    def test_fuzzed_schedules_agree_across_engines(self):
        for seed in range(5):
            spec = TrialSpec(
                protocol="reset-tolerant", adversary="schedule-fuzzer",
                n=13, t=2, inputs=tuple(pid % 2 for pid in range(13)),
                seed=seed, adversary_kwargs={"seed": seed + 100},
                max_windows=60, stop_when="all")
            report = differential_replay(spec)
            assert report.agree, (seed, report.mismatches)

    def test_step_specs_are_rejected(self):
        spec = TrialSpec(protocol="bracha", adversary="byzantine",
                         n=7, t=2, inputs=(0, 1) * 3 + (0,),
                         engine="step")
        with pytest.raises(ValueError, match="window-engine spec"):
            differential_replay(spec)

    def test_divergence_is_reported_not_hidden(self):
        # Corrupt a recorded trace so the replay cannot follow it: the
        # report must flag the divergence instead of agreeing.
        spec = TrialSpec(protocol="reset-tolerant", adversary="benign",
                         n=13, t=2, inputs=(1,) * 13, seed=0,
                         max_windows=20, stop_when="all")
        report = differential_replay(spec)
        assert report.agree

        from repro.verification.differential import \
            replay_trace_on_step_engine
        from repro.runner import execute_trial

        traced = execute_trial(
            dataclasses.replace(spec, record_trace=True))
        trace = traced.trace
        bad_event = dataclasses.replace(trace.events_of("deliver")[0],
                                        sequence=999999)
        trace.events[trace.events.index(
            trace.events_of("deliver")[0])] = bad_event
        with pytest.raises(LookupError, match="no pending counterpart"):
            replay_trace_on_step_engine(spec, trace)
