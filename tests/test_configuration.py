"""Unit tests for configurations and Hamming-distance helpers."""

import pytest

from repro.simulation.configuration import (Configuration, decided_one,
                                            decided_zero, hamming_ball,
                                            hamming_distance,
                                            point_to_set_distance,
                                            set_distance)
from repro.simulation.errors import ConfigurationMismatchError


def make_config(inputs, outputs, extra=None):
    """Build a configuration from input/output bit lists."""
    extra = extra or [()] * len(inputs)
    return Configuration(states=tuple(
        (i, o, 0, e) for i, o, e in zip(inputs, outputs, extra)))


class TestDecisionStructure:
    def test_outputs_and_inputs(self):
        config = make_config([0, 1, 1], [None, 1, None])
        assert config.inputs() == (0, 1, 1)
        assert config.outputs() == (None, 1, None)

    def test_decided_values(self):
        config = make_config([0, 1], [0, 1])
        assert config.decided_values() == {0, 1}

    def test_has_decision(self):
        config = make_config([0, 1], [None, 1])
        assert config.has_decision()
        assert config.has_decision(1)
        assert not config.has_decision(0)

    def test_is_agreeing(self):
        assert make_config([0, 1], [1, 1]).is_agreeing()
        assert make_config([0, 1], [None, 1]).is_agreeing()
        assert not make_config([0, 1], [0, 1]).is_agreeing()

    def test_is_valid(self):
        assert make_config([0, 0], [0, None]).is_valid()
        assert not make_config([0, 0], [1, None]).is_valid()
        assert make_config([0, 1], [1, 1]).is_valid()
        # No decision at all is vacuously valid.
        assert make_config([0, 0], [None, None]).is_valid()

    def test_all_decided(self):
        assert make_config([0, 0], [0, 0]).all_decided()
        assert not make_config([0, 0], [0, None]).all_decided()

    def test_base_set_predicates(self):
        zero = make_config([0, 1], [0, None])
        one = make_config([0, 1], [None, 1])
        assert decided_zero(zero) and not decided_one(zero)
        assert decided_one(one) and not decided_zero(one)


class TestHammingGeometry:
    def test_distance_counts_differing_coordinates(self):
        a = make_config([0, 0, 0], [None, None, None])
        b = make_config([0, 1, 1], [None, None, None])
        assert a.hamming_distance(b) == 2
        assert hamming_distance(a, b) == 2

    def test_distance_is_symmetric_and_zero_on_equal(self):
        a = make_config([0, 1], [None, 1])
        b = make_config([1, 1], [None, 1])
        assert a.hamming_distance(b) == b.hamming_distance(a)
        assert a.hamming_distance(a) == 0

    def test_differing_coordinates(self):
        a = make_config([0, 0, 0], [None, None, None])
        b = make_config([1, 0, 1], [None, None, None])
        assert a.differing_coordinates(b) == [0, 2]

    def test_mismatched_sizes_raise(self):
        a = make_config([0], [None])
        b = make_config([0, 1], [None, None])
        with pytest.raises(ConfigurationMismatchError):
            a.hamming_distance(b)

    def test_set_distance(self):
        a1 = make_config([0, 0, 0], [None, None, None])
        a2 = make_config([1, 1, 1], [None, None, None])
        b1 = make_config([0, 0, 1], [None, None, None])
        assert set_distance([a1, a2], [b1]) == 1

    def test_set_distance_empty_is_none(self):
        a = make_config([0], [None])
        assert set_distance([], [a]) is None
        assert set_distance([a], []) is None

    def test_point_to_set_distance(self):
        point = make_config([0, 0], [None, None])
        others = [make_config([1, 1], [None, None]),
                  make_config([0, 1], [None, None])]
        assert point_to_set_distance(point, others) == 1
        assert point_to_set_distance(point, []) is None

    def test_hamming_ball(self):
        point = make_config([0, 0, 0], [None, None, None])
        others = [make_config([0, 0, 1], [None, None, None]),
                  make_config([1, 1, 1], [None, None, None])]
        ball = hamming_ball(point, others, radius=1)
        assert len(ball) == 1

    def test_len(self):
        assert len(make_config([0, 1, 0], [None, None, None])) == 3
