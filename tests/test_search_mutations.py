"""Hypothesis property tests: mutation operators preserve admissibility.

The contract of :mod:`repro.search.mutations`: every operator maps
schedules that satisfy Definition 1 (sender sets of size at least
``n - t``, at most ``t`` resets per window) and the cumulative
``t``-victim crash budget to schedules that still satisfy all of it.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.search.mutations import (POINT_MUTATIONS, WindowSampler,
                                    crashed_victims, flip_deliver_last,
                                    is_admissible, mutate, perturb_delivery,
                                    regrow_tail, relocate_crashes,
                                    relocate_resets, splice)

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@st.composite
def systems(draw):
    """(sampler, schedule, rng): an admissible schedule plus its context."""
    n = draw(st.integers(4, 13))
    t = draw(st.integers(1, max(1, (n - 1) // 2)))
    crash_model = draw(st.booleans())
    sampler = WindowSampler(
        n=n, t=t,
        reset_probability=0.0 if crash_model else 0.4,
        crash_probability=0.35 if crash_model else 0.0)
    rng = random.Random(draw(st.integers(0, 2**32 - 1)))
    length = draw(st.integers(1, 12))
    schedule = sampler.schedule(length, rng)
    return sampler, schedule, rng


@_SETTINGS
@given(systems())
def test_sampled_schedules_are_admissible(system):
    sampler, schedule, _ = system
    assert is_admissible(schedule, sampler.n, sampler.t)


@pytest.mark.parametrize("operator", POINT_MUTATIONS,
                         ids=lambda op: op.__name__)
def test_point_mutations_preserve_admissibility(operator):
    @_SETTINGS
    @given(systems(), st.integers(0, 10**6))
    def check(system, raw_index):
        sampler, schedule, rng = system
        index = raw_index % len(schedule)
        child = operator(schedule, index, sampler, rng)
        assert len(child) == len(schedule)
        assert is_admissible(child, sampler.n, sampler.t)

    check()


@_SETTINGS
@given(systems(), st.integers(0, 10**6))
def test_regrow_tail_preserves_admissibility_and_prefix(system, raw_index):
    sampler, schedule, rng = system
    index = raw_index % (len(schedule) + 1)
    child = regrow_tail(schedule, index, sampler, rng)
    assert len(child) == len(schedule)
    assert child[:index] == schedule[:index]
    assert is_admissible(child, sampler.n, sampler.t)


@_SETTINGS
@given(systems(), st.integers(0, 2**32 - 1), st.integers(0, 10**6))
def test_splice_preserves_admissibility(system, other_seed, raw_index):
    sampler, first, _ = system
    other_rng = random.Random(other_seed)
    second = sampler.schedule(len(first), other_rng)
    index = raw_index % (len(first) + 1)
    child = splice(first, second, index, sampler.t)
    assert len(child) == len(first)
    assert is_admissible(child, sampler.n, sampler.t)
    # The prefix comes from the first parent untouched.
    assert child[:index] == list(first[:index])


@_SETTINGS
@given(systems(), st.integers(0, 10**6))
def test_guided_mutate_preserves_admissibility(system, frontier):
    sampler, schedule, rng = system
    child = mutate(schedule, frontier % (len(schedule) + 3), sampler, rng)
    assert len(child) == len(schedule)
    assert is_admissible(child, sampler.n, sampler.t)


def test_crash_budget_survives_adversarial_splices():
    """Splicing two budget-saturated parents still fits the budget."""
    rng = random.Random(0)
    sampler = WindowSampler(n=9, t=2, reset_probability=0.0,
                            crash_probability=0.9)
    for trial in range(50):
        first = sampler.schedule(8, rng)
        second = sampler.schedule(8, rng)
        child = splice(first, second, rng.randint(0, 8), sampler.t)
        assert len(crashed_victims(child)) <= sampler.t
        assert is_admissible(child, sampler.n, sampler.t)


def test_mutations_respect_the_sampler_fault_model():
    """Reset-model mutants never gain crashes, crash-model never resets.

    The searched adversary must not exceed the powers of the fault model
    under test (a crash is strictly stronger than a reset), or hardness
    comparisons like E9 would overstate the search's wins.
    """
    rng = random.Random(0)
    reset_model = WindowSampler(n=9, t=2, reset_probability=0.4,
                                crash_probability=0.0)
    crash_model = WindowSampler(n=9, t=2, reset_probability=0.0,
                                crash_probability=0.3)
    for sampler, forbidden in ((reset_model, "crashes"),
                               (crash_model, "resets")):
        schedule = sampler.schedule(8, rng)
        assert not any(getattr(spec, forbidden) for spec in schedule)
        for _ in range(300):
            child = mutate(schedule, rng.randint(0, 8), sampler, rng)
            assert not any(getattr(spec, forbidden) for spec in child), \
                f"mutation injected {forbidden} under the other model"


def test_operators_are_deterministic_given_the_rng_seed():
    sampler = WindowSampler(n=9, t=2)
    schedule = sampler.schedule(6, random.Random(1))
    for operator in POINT_MUTATIONS + (regrow_tail,):
        first = operator(schedule, 3, sampler, random.Random(7))
        second = operator(schedule, 3, sampler, random.Random(7))
        assert first == second, operator.__name__


def test_is_admissible_rejects_bad_schedules():
    from repro.simulation.windows import WindowSpec

    n, t = 6, 1
    tiny = frozenset(range(n - t - 1))  # too small a sender set
    bad = [WindowSpec(senders_for=tuple(tiny for _ in range(n)))]
    assert not is_admissible(bad, n, t)
    everyone = frozenset(range(n))
    over_reset = [WindowSpec(senders_for=tuple(everyone for _ in range(n)),
                             resets=frozenset({0, 1}))]
    assert not is_admissible(over_reset, n, t)
    crash_a = WindowSpec(senders_for=tuple(everyone for _ in range(n)),
                         crashes=frozenset({0}))
    crash_b = WindowSpec(senders_for=tuple(everyone for _ in range(n)),
                         crashes=frozenset({1}))
    assert not is_admissible([crash_a, crash_b], n, t)  # 2 victims > t
    assert is_admissible([crash_a, crash_a], n, t)  # same victim twice
