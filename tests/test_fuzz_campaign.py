"""Fuzz-campaign tests: determinism, resume, minimization, and the CLI."""

import json
import os

import pytest

from repro.cli import main
from repro.results import RunStore
from repro.verification import (load_counterexample, replay_schedule,
                                resolve_fuzz_params, run_fuzz_campaign)
from repro.verification.fuzzer import (FUZZ_EXPERIMENT, ROW_SCHEMA,
                                       fuzz_trial_spec)
from repro.verification.invariants import InvariantChecker


class TestCampaignDeterminism:
    def test_rows_bit_identical_across_worker_counts(self):
        """The acceptance bar: 200 trials at seed 0, workers 0/1/4."""
        params = resolve_fuzz_params(trials=200, seed=0, max_windows=40)
        reference = run_fuzz_campaign(params, workers=0).rows
        assert len(reference) == 200
        for workers in (1, 4):
            assert run_fuzz_campaign(params, workers=workers).rows \
                == reference

    def test_trial_specs_depend_only_on_seed_and_index(self):
        params = resolve_fuzz_params(trials=5, seed=9)
        assert fuzz_trial_spec(params, 3) == fuzz_trial_spec(params, 3)
        assert fuzz_trial_spec(params, 3) != fuzz_trial_spec(params, 4)
        other = resolve_fuzz_params(trials=5, seed=10)
        assert fuzz_trial_spec(params, 3) != fuzz_trial_spec(other, 3)

    def test_rows_match_the_declared_schema(self):
        params = resolve_fuzz_params(trials=3, seed=1, max_windows=30)
        for row in run_fuzz_campaign(params, workers=0).rows:
            assert tuple(row) == ROW_SCHEMA


class TestCampaignParams:
    def test_engine_follows_the_fault_model(self):
        assert resolve_fuzz_params(trials=1)["engine"] == "window"
        assert resolve_fuzz_params(protocol="bracha",
                                   trials=1)["engine"] == "step"

    def test_rejects_bad_arguments(self):
        with pytest.raises(KeyError, match="unknown protocol"):
            resolve_fuzz_params(protocol="nope", trials=1)
        with pytest.raises(ValueError, match="trials must be positive"):
            resolve_fuzz_params(trials=0)
        with pytest.raises(ValueError, match="tolerates no faults"):
            resolve_fuzz_params(n=4, trials=1)
        with pytest.raises(ValueError, match="engine"):
            resolve_fuzz_params(trials=1, engine="quantum")

    def test_step_fuzz_campaign_is_clean_for_bracha(self):
        params = resolve_fuzz_params(protocol="bracha", trials=5, seed=0,
                                     max_steps=4000)
        report = run_fuzz_campaign(params, workers=0)
        assert report.clean


class TestCampaignStore:
    def test_campaign_resumes_from_the_store(self, tmp_path):
        params = resolve_fuzz_params(trials=6, seed=0, max_windows=30)
        first = RunStore.open(str(tmp_path), FUZZ_EXPERIMENT, params)
        reference = run_fuzz_campaign(params, workers=0, store=first).rows
        assert first.row_count == 6

        # Simulate an interrupted campaign: drop the last stored rows.
        rows_path = os.path.join(first.path, "rows.jsonl")
        lines = open(rows_path).read().splitlines()
        with open(rows_path, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")

        resumed_store = RunStore.open(str(tmp_path), FUZZ_EXPERIMENT,
                                      params)
        assert resumed_store.row_count == 3
        resumed = run_fuzz_campaign(params, workers=0,
                                    store=resumed_store).rows
        assert resumed == reference

    def test_minimize_writes_replayable_artifacts(self, tmp_path,
                                                  buggy_protocol):
        params = resolve_fuzz_params(protocol=buggy_protocol, trials=8,
                                     seed=0, n=9, max_windows=30)
        store = RunStore.open(str(tmp_path), FUZZ_EXPERIMENT, params)
        report = run_fuzz_campaign(params, workers=0, store=store,
                                   minimize=True)
        assert report.findings
        finding = report.findings[0]
        assert 1 <= finding["minimized_windows"] <= 10
        artifact = os.path.join(store.path, finding["counterexample"])
        assert os.path.isfile(artifact)
        setup, schedule, violations = load_counterexample(artifact)
        assert len(schedule) == finding["minimized_windows"]
        assert violations
        assert not InvariantChecker().check(
            replay_schedule(setup, schedule).trace).ok

    def test_resumed_campaign_minimizes_cached_findings(self, tmp_path,
                                                        buggy_protocol):
        params = resolve_fuzz_params(protocol=buggy_protocol, trials=4,
                                     seed=0, n=9, max_windows=30)
        plain = RunStore.open(str(tmp_path), FUZZ_EXPERIMENT, params)
        assert run_fuzz_campaign(params, workers=0, store=plain).findings
        # Everything is cached now; --minimize still shrinks the findings.
        resumed = RunStore.open(str(tmp_path), FUZZ_EXPERIMENT, params)
        report = run_fuzz_campaign(params, workers=0, store=resumed,
                                   minimize=True)
        for finding in report.findings:
            assert finding["minimized_windows"] is not None
            assert os.path.isfile(
                os.path.join(resumed.path, finding["counterexample"]))


class TestFuzzCli:
    def test_clean_campaign_exits_zero_and_resumes(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        argv = ["fuzz", "--trials", "10", "--workers", "0", "--out", out]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "0 cached + 10 computed" in first
        assert "no invariant violations in 10 trials" in first
        assert main(argv) == 0
        assert "10 cached + 0 computed" in capsys.readouterr().out

    def test_violating_campaign_exits_one_and_reports(self, tmp_path,
                                                      capsys,
                                                      buggy_protocol):
        out = str(tmp_path / "results")
        assert main(["fuzz", "--trials", "5", "--workers", "0",
                     "--protocol", buggy_protocol, "--n", "9",
                     "--minimize", "--out", out]) == 1
        printed = capsys.readouterr().out
        assert "violating trial(s)" in printed
        assert "agreement" in printed
        assert "counterexamples/trial-" in printed

    def test_no_store_mode_persists_nothing(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["fuzz", "--trials", "4", "--workers", "0",
                     "--no-store"]) == 0
        assert not os.path.exists(tmp_path / "results")

    def test_bad_fuzz_arguments_exit_two(self, capsys):
        assert main(["fuzz", "--protocol", "nope", "--no-store"]) == 2
        assert "unknown protocol" in capsys.readouterr().err
        assert main(["fuzz", "--trials", "-3", "--no-store"]) == 2
        assert "positive" in capsys.readouterr().err
        # Over-large fault bounds are a usage error, not a worker
        # traceback.
        assert main(["fuzz", "--n", "5", "--t", "7", "--no-store"]) == 2
        assert "t < n" in capsys.readouterr().err

    def test_resumed_minimize_keeps_manifest_complete(self, tmp_path,
                                                      capsys,
                                                      buggy_protocol):
        out = str(tmp_path / "results")
        base = ["fuzz", "--trials", "4", "--workers", "0",
                "--protocol", buggy_protocol, "--n", "9", "--out", out]
        assert main(base) == 1
        capsys.readouterr()
        # Resume the completed campaign with --minimize: rows are all
        # cached, but minimization rewrites them — the manifest must end
        # up completed again, not stuck partial.
        assert main(base + ["--minimize"]) == 1
        capsys.readouterr()
        manifests = [os.path.join(root, name)
                     for root, _, files in os.walk(out)
                     for name in files if name == "manifest.json"]
        assert len(manifests) == 1
        manifest = json.load(open(manifests[0]))
        assert manifest["completed"] is True
        assert manifest["wall_time_seconds"] is not None

    def test_show_renders_a_fuzz_run(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["fuzz", "--trials", "3", "--workers", "0",
                     "--out", out]) == 0
        capsys.readouterr()
        assert main(["show", "fuzz", "--out", out]) == 0
        rendered = capsys.readouterr().out
        assert "fuzz run" in rendered
        assert "violations" in rendered

    def test_manifest_records_the_campaign(self, tmp_path, capsys):
        out = str(tmp_path / "results")
        assert main(["fuzz", "--trials", "3", "--workers", "0",
                     "--seed", "5", "--out", out]) == 0
        capsys.readouterr()
        manifests = [os.path.join(root, name)
                     for root, _, files in os.walk(out)
                     for name in files if name == "manifest.json"]
        assert len(manifests) == 1
        manifest = json.load(open(manifests[0]))
        assert manifest["experiment"] == FUZZ_EXPERIMENT
        assert manifest["seed"] == 5
        assert manifest["completed"] is True
