"""Unit tests for the processor wrapper (crash/chain bookkeeping)."""

import pytest

from repro.protocols.base import Protocol
from repro.simulation.errors import InvalidStepError
from repro.simulation.message import Message, broadcast
from repro.simulation.processor import Processor


class CountingProtocol(Protocol):
    """Decides once it has received ``quota`` messages."""

    def __init__(self, pid, n, t, input_bit, rng=None, quota=2):
        super().__init__(pid, n, t, input_bit, rng)
        self.quota = quota
        self.received = 0

    def _compose_messages(self):
        return broadcast(self.pid, self.n, ("PING", self.input_bit))

    def _handle_message(self, message):
        self.received += 1
        if self.received >= self.quota and not self.decided:
            self.decide(self.input_bit)

    def volatile_state(self):
        return (self.received,)


@pytest.fixture
def processor():
    return Processor(CountingProtocol(pid=0, n=3, t=1, input_bit=1))


class TestBasics:
    def test_passthrough_properties(self, processor):
        assert processor.pid == 0
        assert processor.input_bit == 1
        assert processor.output is None
        assert not processor.decided

    def test_send_step_counts_messages(self, processor):
        messages = processor.send_step()
        assert len(messages) == 3
        assert processor.messages_sent == 3

    def test_receive_wrong_recipient_raises(self, processor):
        with pytest.raises(InvalidStepError):
            processor.receive_step(Message(sender=1, receiver=2, payload="x"))

    def test_receive_counts_and_decides(self, processor):
        processor.receive_step(Message(sender=1, receiver=0, payload="a"))
        processor.receive_step(Message(sender=2, receiver=0, payload="b"))
        assert processor.messages_received == 2
        assert processor.decided
        assert processor.output == 1


class TestCrash:
    def test_crashed_processor_sends_nothing(self, processor):
        processor.crash()
        assert processor.send_step() == []

    def test_delivery_to_crashed_processor_raises(self, processor):
        processor.crash()
        with pytest.raises(InvalidStepError):
            processor.receive_step(Message(sender=1, receiver=0, payload="x"))

    def test_reset_of_crashed_processor_raises(self, processor):
        processor.crash()
        with pytest.raises(InvalidStepError):
            processor.reset()

    def test_crashed_fingerprint_is_tagged(self, processor):
        live = processor.state_fingerprint()
        processor.crash()
        crashed = processor.state_fingerprint()
        assert crashed[0] == "crashed"
        assert crashed != live


class TestMessageChains:
    def test_outgoing_chain_depth_tracks_deepest_received(self, processor):
        assert processor.outgoing_chain_depth == 1
        processor.receive_step(Message(sender=1, receiver=0, payload="a",
                                       chain_depth=4))
        assert processor.outgoing_chain_depth == 5

    def test_deciding_chain_depth_recorded_at_decision(self, processor):
        processor.receive_step(Message(sender=1, receiver=0, payload="a",
                                       chain_depth=2))
        assert processor.deciding_chain_depth is None
        processor.receive_step(Message(sender=2, receiver=0, payload="b",
                                       chain_depth=7))
        assert processor.decided
        assert processor.deciding_chain_depth == 7

    def test_deciding_chain_depth_not_updated_after_decision(self, processor):
        processor.receive_step(Message(sender=1, receiver=0, payload="a",
                                       chain_depth=2))
        processor.receive_step(Message(sender=2, receiver=0, payload="b",
                                       chain_depth=3))
        depth_at_decision = processor.deciding_chain_depth
        processor.receive_step(Message(sender=1, receiver=0, payload="c",
                                       chain_depth=50))
        assert processor.deciding_chain_depth == depth_at_decision
