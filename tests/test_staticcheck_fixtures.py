"""The staticcheck self-test corpus: each fixture trips exactly its code.

Every directory under ``tests/staticcheck_fixtures/`` is a minimal bad
example named ``<code>_<slug>``; linting it must yield the named check
code and nothing else, and linting the real tree must yield nothing at
all.  Together these pin both directions of the linter's contract: each
check still fires (no silent rot), and the shipped tree is clean.
"""

import os

import pytest

from repro.staticcheck import (CHECK_CODES, default_fixture_root,
                               iter_fixtures, run_lint)

FIXTURE_ROOT = os.path.join(os.path.dirname(__file__),
                            "staticcheck_fixtures")

FIXTURES = list(iter_fixtures(FIXTURE_ROOT))


def test_default_fixture_root_points_here():
    assert default_fixture_root() == FIXTURE_ROOT


def test_corpus_covers_every_check_code():
    """Each check code has at least one bad-example fixture."""
    covered = {expected for _, expected, _, _ in FIXTURES}
    assert covered == set(CHECK_CODES)


@pytest.mark.parametrize(
    "name,expected,package_root,tests_root",
    FIXTURES, ids=[fixture[0] for fixture in FIXTURES])
def test_fixture_yields_exactly_its_code(name, expected, package_root,
                                         tests_root):
    result = run_lint(package_root=package_root, tests_root=tests_root)
    assert result.codes() == {expected}, result.render_text()


def test_the_shipped_tree_is_clean():
    """`repro lint` exits 0 on the real tree (the PR's ship gate)."""
    result = run_lint()
    assert result.ok, result.render_text()
