"""Unit tests for the protocol base class and factory."""

import random

import pytest

from repro.protocols.base import Protocol, ProtocolFactory
from repro.simulation.errors import ProtocolViolationError
from repro.simulation.message import Message, broadcast


class EchoProtocol(Protocol):
    """Minimal protocol used to exercise the base-class machinery."""

    forgetful = True
    fully_communicative = False

    def __init__(self, pid, n, t, input_bit, rng=None):
        super().__init__(pid, n, t, input_bit, rng)
        self.seen = []

    def _compose_messages(self):
        return broadcast(self.pid, self.n, ("ECHO", self.input_bit))

    def _handle_message(self, message):
        self.seen.append(message.payload)

    def _on_reset(self):
        self.seen = []

    def volatile_state(self):
        return tuple(self.seen)


class TestConstruction:
    def test_rejects_bad_pid(self):
        with pytest.raises(ValueError):
            EchoProtocol(pid=5, n=3, t=1, input_bit=0)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            EchoProtocol(pid=0, n=3, t=1, input_bit=2)

    def test_rejects_bad_t(self):
        with pytest.raises(ValueError):
            EchoProtocol(pid=0, n=3, t=3, input_bit=0)


class TestOutputBit:
    def test_initially_undecided(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=0)
        assert protocol.output is None
        assert not protocol.decided

    def test_decide_writes_once(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=0)
        protocol.decide(1)
        assert protocol.output == 1
        protocol.decide(1)  # idempotent
        assert protocol.output == 1

    def test_conflicting_decide_raises(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=0)
        protocol.decide(1)
        with pytest.raises(ProtocolViolationError):
            protocol.decide(0)

    def test_decide_non_bit_raises(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=0)
        with pytest.raises(ProtocolViolationError):
            protocol.decide(2)


class TestSendingSemantics:
    def test_send_step_is_complete_response(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=1)
        first = protocol.send_step()
        assert len(first) == 3
        # A second sending step with no intervening receive/reset is a no-op.
        assert protocol.send_step() == []

    def test_receive_reenables_sending(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=1)
        protocol.send_step()
        protocol.receive_step(Message(sender=1, receiver=0, payload="x"))
        assert len(protocol.send_step()) == 3

    def test_reset_reenables_sending(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=1)
        protocol.send_step()
        protocol.reset()
        assert len(protocol.send_step()) == 3


class TestResetSemantics:
    def test_reset_increments_counter_and_clears_volatile_state(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=1)
        protocol.receive_step(Message(sender=1, receiver=0, payload="x"))
        assert protocol.volatile_state() == ("x",)
        protocol.reset()
        assert protocol.reset_count == 1
        assert protocol.volatile_state() == ()

    def test_reset_preserves_output_and_input(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=1)
        protocol.decide(1)
        protocol.reset()
        assert protocol.output == 1
        assert protocol.input_bit == 1


class TestRandomness:
    def test_coin_flip_counted_and_binary(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=1,
                                rng=random.Random(1))
        flips = [protocol.coin_flip() for _ in range(20)]
        assert protocol.coin_flips == 20
        assert set(flips).issubset({0, 1})

    def test_state_fingerprint_contains_persistent_fields(self):
        protocol = EchoProtocol(pid=0, n=3, t=1, input_bit=1)
        protocol.decide(0)
        fingerprint = protocol.state_fingerprint()
        assert fingerprint[0] == 1  # input
        assert fingerprint[1] == 0  # output
        assert fingerprint[2] == 0  # reset count


class TestFactory:
    def test_build_creates_one_instance_per_processor(self):
        factory = ProtocolFactory(EchoProtocol, n=4, t=1)
        protocols = factory.build([0, 1, 0, 1], seed=3)
        assert len(protocols) == 4
        assert [p.pid for p in protocols] == [0, 1, 2, 3]
        assert [p.input_bit for p in protocols] == [0, 1, 0, 1]

    def test_build_rejects_wrong_input_length(self):
        factory = ProtocolFactory(EchoProtocol, n=4, t=1)
        with pytest.raises(ValueError):
            factory.build([0, 1])

    def test_build_is_deterministic_given_seed(self):
        factory = ProtocolFactory(EchoProtocol, n=3, t=1)
        a = factory.build([0, 0, 0], seed=9)
        b = factory.build([0, 0, 0], seed=9)
        assert [p.rng.random() for p in a] == [p.rng.random() for p in b]

    def test_independent_streams_across_processors(self):
        factory = ProtocolFactory(EchoProtocol, n=3, t=1)
        protocols = factory.build([0, 0, 0], seed=9)
        draws = [p.rng.random() for p in protocols]
        assert len(set(draws)) == 3

    def test_properties_reports_structural_flags(self):
        factory = ProtocolFactory(EchoProtocol, n=3, t=1)
        assert factory.properties() == {"forgetful": True,
                                        "fully_communicative": False}
