"""D6 fixture: numpy's entropy on the execution path.

Trips all three D6 shapes — a global-stream draw, an unseeded
``default_rng``, and a generator built from a parameter defaulting to
``None``.
"""

import numpy as np
from numpy.random import default_rng


def shuffle_batch(order):
    np.random.shuffle(order)
    return order


def fresh_generator():
    return default_rng()


def generator_for(seed=None):
    return np.random.default_rng(seed)
