"""D1 fixture: drawing from the module-level random API."""

import random


def pick_window():
    return random.random()
