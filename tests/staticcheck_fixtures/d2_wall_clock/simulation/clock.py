"""D2 fixture: reading the wall clock inside the execution stack."""

import time


def stamp_window():
    return time.time()
