"""D4 fixture: float equality deciding a branch."""


def should_reset(probability):
    return probability == 0.5
