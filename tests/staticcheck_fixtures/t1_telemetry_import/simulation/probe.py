"""T1 fixture: simulation-layer code importing the telemetry package."""

from repro.telemetry import Telemetry


def deliver_window(state, messages):
    with Telemetry().span("deliver"):
        state.apply(messages)
    return state
