"""R1 fixture: a concrete adversary the registry cannot reach."""


class WindowAdversary:
    def next_window(self, engine):
        raise NotImplementedError


class GhostAdversary(WindowAdversary):
    def next_window(self, engine):
        return None
