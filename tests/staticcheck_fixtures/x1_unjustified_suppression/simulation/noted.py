"""X1 fixture: a suppression comment with no justification."""

RESET_BUDGET = 3  # repro: allow[D4]
