"""R3 fixture: a registered name no scenario ever exercises."""

ADVERSARIES = {"ghost": object}
