"""D5 fixture: Random built from a parameter defaulting to None."""

import random


def build_rng(seed=None):
    return random.Random(seed)
