"""S2 fixture: a lambda smuggled into a trial spec."""


def build_spec(protocol):
    return TrialSpec(protocol=protocol, objective=lambda result: result)
