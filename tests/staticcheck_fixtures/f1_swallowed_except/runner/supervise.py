"""F1 fixture: a broad except that swallows an execution failure."""


def run_chunk(specs):
    results = []
    for spec in specs:
        try:
            results.append(execute_trial(spec))
        except Exception:
            pass
    return results
