"""T2 fixture: telemetry code drawing from a seeded random stream."""

import random


def jittered_flush_interval(seed, base=1.0):
    rng = random.Random(seed)
    return base + rng.uniform(0.0, 0.25)
