def apply_step(step):
    if step.step_type is StepType.SEND:
        return "sent"
    return None
