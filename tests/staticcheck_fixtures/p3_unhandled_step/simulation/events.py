"""P3 fixture: a StepType member the step engine never dispatches on."""


class StepType:
    SEND = "send"
    PRUNE = "prune"
