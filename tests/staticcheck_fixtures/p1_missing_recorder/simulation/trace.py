"""P1 fixture: the event vocabulary both engines must emit."""


class TraceEvent:
    def __init__(self, kind, pid):
        self.kind = kind
        self.pid = pid


class ExecutionTrace:
    def __init__(self):
        self.events = []

    def record_send(self, pid):
        self.events.append(TraceEvent(kind="send", pid=pid))

    def record_deliver(self, pid):
        self.events.append(TraceEvent(kind="deliver", pid=pid))
