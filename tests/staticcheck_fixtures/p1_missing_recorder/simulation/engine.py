def run_step(trace, pid):
    # The step engine forgot to record deliveries.
    trace.record_send(pid)
