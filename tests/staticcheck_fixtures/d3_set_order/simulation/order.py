"""D3 fixture: truncating a list built straight from a set."""


def first_two_victims():
    victims = {3, 1, 2}
    return list(victims)[:2]
