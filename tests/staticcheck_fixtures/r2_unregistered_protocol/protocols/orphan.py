"""R2 fixture: a concrete protocol the registry cannot reach."""


class Protocol:
    def _compose_messages(self):
        raise NotImplementedError


class OrphanAgreement(Protocol):
    def _compose_messages(self):
        return []
