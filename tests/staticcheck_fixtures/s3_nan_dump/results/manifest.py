"""S3 fixture: a results-layer json.dumps without allow_nan=False."""

import json


def write_manifest(path, manifest):
    with open(path, "w") as handle:
        handle.write(json.dumps(manifest, indent=2, sort_keys=True))
