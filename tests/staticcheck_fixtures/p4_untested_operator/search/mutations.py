"""P4 fixture: a public mutation operator with no contract test."""

Schedule = list


def drop_first_window(schedule) -> Schedule:
    return schedule[1:]
