def test_placeholder():
    assert True
