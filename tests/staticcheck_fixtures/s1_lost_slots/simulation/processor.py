"""S1 fixture: a slots-manifest class without __slots__."""


class Processor:
    def __init__(self, pid):
        self.pid = pid
