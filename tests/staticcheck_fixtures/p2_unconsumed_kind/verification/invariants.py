def sends_of(trace):
    # "reset" events are never looked at.
    return [event for event in trace.events if event.kind == "send"]
