def run_window(trace, pid):
    trace.record_send(pid)
    trace.record_reset(pid)
