"""P2 fixture: an event kind the invariant checker never examines."""


class TraceEvent:
    def __init__(self, kind, pid):
        self.kind = kind
        self.pid = pid


class ExecutionTrace:
    def __init__(self):
        self.events = []

    def record_send(self, pid):
        self.events.append(TraceEvent(kind="send", pid=pid))

    def record_reset(self, pid):
        self.events.append(TraceEvent(kind="reset", pid=pid))
