def run_step(trace, pid):
    trace.record_send(pid)
    trace.record_reset(pid)
