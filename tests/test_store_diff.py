"""Differential-harness tests: columnar read-back vs the jsonl truth."""

import json
import os

from repro.experiments import get_experiment
from repro.results import RunStore
from repro.results.columnar import JSON_COLUMNS_NAME, compact_run
from repro.verification.store_diff import (diff_root, diff_run, main,
                                           run_and_diff_experiments)


def _finished_run(tmp_path, seed=1):
    experiment = get_experiment("E8")
    params = experiment.resolve_params(
        {"cs": (0.1,), "ns": (50,), "seed": seed})
    store = RunStore.open(str(tmp_path), "E8", params, workers=0)
    experiment.run(params=params, store=store)
    store.finish(wall_time=0.1)
    return store


def _tamper_columnar_value(run_dir):
    """Flip one stored value inside the columnar payload, leaving the
    header (and its freshness digest) intact."""
    path = os.path.join(run_dir, JSON_COLUMNS_NAME)
    with open(path) as handle:
        header = handle.readline()
        payload = json.loads(handle.readline())
    column = next(iter(payload["values"]))
    payload["values"][column][0] = "tampered"
    with open(path, "w") as handle:
        handle.write(header)
        handle.write(json.dumps(payload, allow_nan=False) + "\n")


class TestDiffRun:
    def test_fresh_compacted_run_is_ok(self, tmp_path):
        store = _finished_run(tmp_path)
        diff = diff_run(store.path)
        assert diff.ok
        assert diff.rows == store.row_count
        assert diff.codec is not None

    def test_stale_copy_is_reported_not_compared(self, tmp_path):
        store = _finished_run(tmp_path)
        with open(os.path.join(store.path, "rows.jsonl"), "a") as handle:
            handle.write(json.dumps(
                {"index": 99, "key": ["late"], "row": {"n": 1}},
                allow_nan=False) + "\n")
        diff = diff_run(store.path)
        assert diff.status == "stale"
        # ... and recompact=True turns it back into a real comparison.
        diff = diff_run(store.path, recompact=True)
        assert diff.ok
        assert diff.rows == store.row_count + 1

    def test_uncompacted_run_is_skipped_unless_recompacting(
            self, tmp_path):
        experiment = get_experiment("E8")
        params = experiment.resolve_params(
            {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", params, workers=0)
        experiment.run(params=params, store=store)
        store.finish(wall_time=0.1, compact=False)
        assert diff_run(store.path).status == "uncompacted"
        assert diff_run(store.path, recompact=True).ok

    def test_tampered_copy_is_a_mismatch(self, tmp_path):
        store = _finished_run(tmp_path)
        compact_run(store.path, codec="json-columns")
        _tamper_columnar_value(store.path)
        diff = diff_run(store.path)
        assert diff.status == "mismatch"
        assert diff.mismatches


class TestDiffRoot:
    def test_aggregates_and_summarizes(self, tmp_path):
        for seed in (1, 2):
            _finished_run(tmp_path, seed=seed)
        report = diff_root(str(tmp_path))
        assert report.ok
        assert len(report.runs) == 2
        assert report.compared_rows == 8
        assert "OK" in report.summary()

    def test_one_tampered_run_fails_the_root(self, tmp_path):
        good = _finished_run(tmp_path, seed=1)
        bad = _finished_run(tmp_path, seed=2)
        compact_run(bad.path, codec="json-columns")
        _tamper_columnar_value(bad.path)
        report = diff_root(str(tmp_path))
        assert not report.ok
        assert "MISMATCH" in report.summary()
        by_dir = {run.run_dir: run for run in report.runs}
        assert by_dir[good.path].ok
        assert by_dir[bad.path].status == "mismatch"


class TestCLI:
    def test_run_and_diff_experiments(self, tmp_path):
        report, run_dirs = run_and_diff_experiments(
            ["E8"], str(tmp_path), quick=True)
        assert report.ok
        assert len(run_dirs) == 1
        assert report.compared_rows > 0

    def test_main_on_existing_root(self, tmp_path, capsys):
        _finished_run(tmp_path)
        assert main(["--root", str(tmp_path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_main_exits_nonzero_on_mismatch(self, tmp_path, capsys):
        store = _finished_run(tmp_path)
        compact_run(store.path, codec="json-columns")
        _tamper_columnar_value(store.path)
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "MISMATCH" in out
