"""Tests for the deterministic fault injector behind chaos runs.

The injector's load-bearing property mirrors the runner's: whether (and
how) a trial is faulted is a pure function of ``(chaos seed, spec)``.
Same config, same decisions — on any worker count, in any process, after
any pickle round-trip — which is what lets the supervisor tests pin the
keystone bit-identical-survivors property with fixed seeds.
"""

import pickle

import pytest

from repro.faults import (CRASH, FAULT_KINDS, HANG, POISON, RAISE,
                          SERIAL_SCOPE, WORKER_SCOPE, ChaosConfig,
                          FaultInjector, InjectedFault, build_injector,
                          parse_chaos_spec, spec_fingerprint)
from repro.runner import TrialSpec, execute_trial


def make_spec(seed=0):
    """One cheap window-engine spec; distinct seeds, distinct specs."""
    return TrialSpec(
        protocol="reset-tolerant", adversary="adaptive-resetting",
        n=12, t=1, inputs=(0, 1) * 6, seed=seed,
        adversary_kwargs={"seed": seed + 1}, max_windows=4,
        stop_when="first", tag=("cell", seed))


def make_battery(count=32):
    return [make_spec(seed) for seed in range(count)]


class TestParseChaosSpec:
    def test_empty_means_chaos_off(self):
        assert parse_chaos_spec(None) is None
        assert parse_chaos_spec("") is None
        assert parse_chaos_spec("   ") is None

    def test_parses_kinds_and_seed(self):
        chaos = parse_chaos_spec("crash=0.2,hang=0.1,raise=0.1,seed=7")
        assert chaos == ChaosConfig(seed=7, crash=0.2, hang=0.1, raise_=0.1)

    def test_parses_hang_seconds_and_torn(self):
        chaos = parse_chaos_spec("hang=0.5,hang-seconds=2.5,torn=1.0")
        assert chaos.hang_seconds == 2.5
        assert chaos.torn == 1.0

    def test_round_trips_through_to_spec(self):
        chaos = ChaosConfig(seed=5, crash=0.25, poison=0.1, torn=0.5,
                            hang=0.05, hang_seconds=60.0)
        assert parse_chaos_spec(chaos.to_spec()) == chaos

    @pytest.mark.parametrize("raw", [
        "explode=0.5",          # unknown key
        "crash",                # no value
        "crash=lots",           # not a number
        "seed=1.5",             # seed must be an int
        "crash=1.5",            # probability out of range
        "crash=0.6,poison=0.6"  # kinds sum past 1
    ])
    def test_rejects_bad_specs(self, raw):
        with pytest.raises(ValueError):
            parse_chaos_spec(raw)


class TestChaosConfig:
    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError):
            ChaosConfig(raise_=-0.1)

    def test_rejects_nonpositive_hang_seconds(self):
        with pytest.raises(ValueError):
            ChaosConfig(hang_seconds=0.0)

    def test_active_only_when_something_can_fire(self):
        assert not ChaosConfig(seed=9).active
        assert ChaosConfig(torn=0.01).active
        assert ChaosConfig(crash=0.01).active

    def test_probability_maps_raise_keyword(self):
        chaos = ChaosConfig(raise_=0.3, crash=0.1)
        assert chaos.probability(RAISE) == 0.3
        assert chaos.probability(CRASH) == 0.1

    def test_build_injector_skips_inert_configs(self):
        assert build_injector(None) is None
        assert build_injector(ChaosConfig(seed=3)) is None
        assert build_injector(ChaosConfig(crash=0.5)) is not None


class TestSpecFingerprint:
    def test_stable_and_content_based(self):
        assert spec_fingerprint(make_spec(4)) == spec_fingerprint(
            make_spec(4))
        assert spec_fingerprint(make_spec(4)) != spec_fingerprint(
            make_spec(5))

    def test_short_hex(self):
        fingerprint = spec_fingerprint(make_spec())
        assert len(fingerprint) == 16
        int(fingerprint, 16)


class TestDecide:
    def test_deterministic_across_injector_instances(self):
        chaos = ChaosConfig(seed=5, crash=0.25, raise_=0.25)
        first, second = FaultInjector(chaos), FaultInjector(chaos)
        battery = make_battery()
        assert [first.decide(spec) for spec in battery] == \
            [second.decide(spec) for spec in battery]

    def test_independent_of_decision_order(self):
        injector = FaultInjector(ChaosConfig(seed=5, crash=0.5))
        battery = make_battery()
        forward = {spec.seed: injector.decide(spec) for spec in battery}
        backward = {spec.seed: injector.decide(spec)
                    for spec in reversed(battery)}
        assert forward == backward

    def test_chaos_seed_changes_the_pattern(self):
        battery = make_battery()
        patterns = {
            seed: tuple(FaultInjector(ChaosConfig(seed=seed, crash=0.5))
                        .decide(spec) for spec in battery)
            for seed in (0, 1)}
        assert patterns[0] != patterns[1]

    def test_certain_probability_always_fires(self):
        for kind in FAULT_KINDS:
            key = "raise_" if kind == RAISE else kind
            injector = FaultInjector(ChaosConfig(**{key: 1.0}))
            assert all(injector.decide(spec) == kind
                       for spec in make_battery(8))

    def test_fires_semantics(self):
        for kind in (CRASH, HANG, RAISE):
            assert FaultInjector.fires(kind, 0)
            assert not FaultInjector.fires(kind, 1)
        assert FaultInjector.fires(POISON, 0)
        assert FaultInjector.fires(POISON, 7)
        assert not FaultInjector.fires(None, 0)


class TestTornDecisions:
    def test_fires_at_most_once_per_key(self):
        injector = FaultInjector(ChaosConfig(torn=1.0))
        assert injector.decide_torn('["E2", 12]')
        assert not injector.decide_torn('["E2", 12]')
        assert injector.decide_torn('["E2", 16]')

    def test_zero_probability_never_fires(self):
        injector = FaultInjector(ChaosConfig(seed=1, crash=0.5))
        assert not injector.decide_torn('["E2", 12]')

    def test_pickle_keeps_config_drops_torn_ledger(self):
        injector = FaultInjector(ChaosConfig(seed=5, torn=1.0, crash=0.25))
        assert injector.decide_torn("key")
        copy = pickle.loads(pickle.dumps(injector))
        assert copy.chaos == injector.chaos
        # Trial decisions are pure, so the copy agrees with the original;
        # the torn ledger is supervisor-side state and starts fresh.
        spec = make_spec(3)
        assert copy.decide(spec) == injector.decide(spec)
        assert copy.decide_torn("key")


class TestApply:
    def test_clean_trial_executes_normally(self):
        injector = FaultInjector(ChaosConfig(raise_=1.0))
        spec = make_spec(2)
        assert injector.apply(spec, 1, WORKER_SCOPE) == execute_trial(spec)

    def test_raise_fault_is_transient(self):
        injector = FaultInjector(ChaosConfig(raise_=1.0))
        spec = make_spec(2)
        with pytest.raises(InjectedFault):
            injector.apply(spec, 0, WORKER_SCOPE)
        assert injector.apply(spec, 1, WORKER_SCOPE) == execute_trial(spec)

    def test_poison_fault_fires_on_every_attempt(self):
        injector = FaultInjector(ChaosConfig(poison=1.0))
        for attempt in (0, 1, 5):
            with pytest.raises(InjectedFault):
                injector.apply(make_spec(), attempt, WORKER_SCOPE)

    def test_crash_degrades_to_raise_outside_worker_scope(self):
        # A literal os._exit in serial scope would kill the supervising
        # process (and this test run); the degradation contract is what
        # makes workers=0 chaos runs safe.
        injector = FaultInjector(ChaosConfig(crash=1.0))
        spec = make_spec(1)
        with pytest.raises(InjectedFault):
            injector.apply(spec, 0, SERIAL_SCOPE)
        assert injector.apply(spec, 1, SERIAL_SCOPE) == execute_trial(spec)

    def test_hang_degrades_to_raise_outside_worker_scope(self):
        injector = FaultInjector(ChaosConfig(hang=1.0, hang_seconds=3600.0))
        with pytest.raises(InjectedFault):
            injector.apply(make_spec(1), 0, SERIAL_SCOPE)
