"""Supervised-executor tests: retries, watchdog, quarantine, chaos parity.

The keystone property of the resilient execution layer: under *any*
injected fault pattern, every surviving result is bit-identical to what a
fault-free serial run produces, and a run killed mid-chaos resumes to the
identical table.  The supervisor is allowed to change wall-clock time and
the health counters — never values.

The chaos seeds used here are pinned: because fault decisions are pure
functions of ``(chaos seed, spec)``, each scenario deterministically
injects the same faults on every test run, and each test also asserts
non-vacuity (the configured fault really fired) so a refactor cannot turn
a recovery test into a no-op.
"""

import json
import os

import pytest

from repro.experiments import get_experiment
from repro.faults import CRASH, HANG, POISON, ChaosConfig, FaultInjector
from repro.results import RunStore, run_directory
from repro.runner import (RunHealth, SupervisedRunner, TrialFailure,
                          TrialSpec, empty_health_block, execute_trial,
                          merge_health_block, run_trials)
from repro.runner.supervisor import ExecutionPolicy, RetryPolicy

FAST_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.0,
                         backoff_cap_seconds=0.0)
"""The default retry budget without the (test-slowing) backoff sleeps."""

E2_PARAMS = {"ns": (12, 16), "trials": 1, "max_windows": 200000,
             "use_resets": True, "seed": 9}


def make_specs(count=12):
    """The chaos battery: cheap, distinct window-engine specs."""
    specs = []
    for seed in range(count):
        specs.append(TrialSpec(
            protocol="reset-tolerant", adversary="adaptive-resetting",
            n=12, t=1, inputs=(0, 1) * 6, seed=seed,
            adversary_kwargs={"seed": seed + 1}, max_windows=4,
            stop_when="first", tag=("cell", seed)))
    return specs


@pytest.fixture(scope="module")
def reference():
    """The fault-free serial baseline every chaos run must reproduce."""
    return run_trials(make_specs(), workers=0)


def run_supervised(workers, chaos=None, trial_timeout=None):
    policy = ExecutionPolicy(retry=FAST_RETRY, trial_timeout=trial_timeout,
                             chaos=chaos)
    runner = SupervisedRunner(workers=workers, policy=policy)
    return list(runner.iter_results(make_specs())), runner


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(backoff_seconds=0.05, backoff_cap_seconds=1.0)
        assert [policy.delay(attempt) for attempt in (1, 2, 3)] == \
            [0.05, 0.1, 0.2]
        assert RetryPolicy(backoff_seconds=0.6).delay(5) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.1)


class TestExecutionPolicy:
    def test_defaults_are_retries_only(self):
        policy = ExecutionPolicy()
        assert policy.retry.max_retries == 2
        assert policy.trial_timeout is None
        assert policy.chaos is None

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(trial_timeout=0.0)

    def test_hang_chaos_requires_a_watchdog(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(chaos=ChaosConfig(hang=0.1))
        ExecutionPolicy(chaos=ChaosConfig(hang=0.1), trial_timeout=1.0)


class TestSerialSupervision:
    def test_clean_run_matches_bare_runner(self, reference):
        results, runner = run_supervised(workers=0)
        assert results == reference
        assert runner.health.clean

    def test_raise_chaos_retries_to_parity(self, reference):
        chaos = ChaosConfig(seed=3, raise_=0.5)
        assert any(FaultInjector(chaos).decide(spec) is not None
                   for spec in make_specs())
        results, runner = run_supervised(workers=0, chaos=chaos)
        assert results == reference
        assert runner.health.retries > 0
        assert runner.health.failures == []

    def test_crash_chaos_degrades_gracefully_at_workers_zero(
            self, reference):
        # In-process there is no worker to kill: the injected crash
        # degrades to a raised fault and the retry loop absorbs it.
        chaos = ChaosConfig(seed=5, crash=0.25)
        results, runner = run_supervised(workers=0, chaos=chaos)
        assert results == reference
        assert runner.health.retries > 0
        assert runner.health.failures == []


class TestParallelSupervision:
    def test_clean_run_matches_bare_runner(self, reference):
        results, runner = run_supervised(workers=2)
        assert results == reference
        assert runner.health.clean

    def test_broken_pool_recovery(self, reference):
        # Worker suicides break the ProcessPoolExecutor; the supervisor
        # must rebuild it and re-dispatch only the unfinished chunks.
        chaos = ChaosConfig(seed=5, crash=0.25)
        assert any(FaultInjector(chaos).decide(spec) == CRASH
                   for spec in make_specs())
        results, runner = run_supervised(workers=4, chaos=chaos)
        assert results == reference
        assert runner.health.pool_rebuilds >= 1
        assert runner.health.failures == []

    def test_poison_trials_are_quarantined_not_fatal(self, reference):
        chaos = ChaosConfig(seed=11, poison=0.2)
        specs = make_specs()
        poisoned = {index for index, spec in enumerate(specs)
                    if FaultInjector(chaos).decide(spec) == POISON}
        assert poisoned
        results, runner = run_supervised(workers=4, chaos=chaos)
        for index, item in enumerate(results):
            if index in poisoned:
                assert isinstance(item, TrialFailure)
                assert item.spec == specs[index]
                assert "poison" in item.error
            else:
                # Innocent neighbours still produce bit-identical rows.
                assert item == reference[index]
        assert runner.health.quarantined >= len(poisoned)
        assert len(runner.health.failures) == len(poisoned)
        assert all(entry["attempts"] > 0
                   for entry in runner.health.failures)

    def test_watchdog_recovers_hung_workers(self, reference):
        chaos = ChaosConfig(seed=7, hang=0.15, hang_seconds=60.0)
        assert any(FaultInjector(chaos).decide(spec) == HANG
                   for spec in make_specs())
        results, runner = run_supervised(workers=4, chaos=chaos,
                                         trial_timeout=2.0)
        assert results == reference
        assert runner.health.timeouts >= 1
        assert runner.health.pool_rebuilds >= 1
        assert runner.health.failures == []


class TestBareRunnerChunkIsolation:
    """A failing chunk must not take later chunks' results with it."""

    @staticmethod
    def _batch_with_poison():
        # n=6 with t=1 violates the 2*T3 > n threshold precondition, so
        # this spec constructs fine but raises on execution — a real
        # (non-injected) poison trial.
        specs = make_specs(8)
        poison = TrialSpec(
            protocol="reset-tolerant", adversary="split-vote",
            n=6, t=1, inputs=(0, 1) * 3, seed=0, max_windows=4,
            stop_when="first")
        specs.insert(3, poison)
        return specs, 3

    @pytest.mark.parametrize("workers", [0, 2])
    def test_one_bad_spec_yields_failure_others_survive(self, workers):
        batch, poison_index = self._batch_with_poison()
        results = run_trials(batch, workers=workers)
        assert len(results) == len(batch)
        for index, item in enumerate(results):
            if index == poison_index:
                assert isinstance(item, TrialFailure)
                assert item.spec == batch[index]
            else:
                assert item == execute_trial(batch[index])


class TestRunHealthAndMerge:
    def test_clean_and_summary(self):
        health = RunHealth()
        assert health.clean
        health.retries += 1
        assert not health.clean
        assert "retries=1" in health.summary()
        assert "failures=0" in health.summary()

    def test_merge_accumulates_and_dedupes_by_fingerprint(self):
        spec = make_specs(1)[0]
        failure = TrialFailure(spec=spec, error="InjectedFault('x')",
                               attempts=3)
        first = RunHealth(retries=2)
        first.record_failure(failure)
        block = merge_health_block(None, first)
        second = RunHealth(retries=1, pool_rebuilds=1)
        second.record_failure(failure)
        merged = merge_health_block(block, second)
        assert merged["retries"] == 3
        assert merged["pool_rebuilds"] == 1
        assert len(merged["failures"]) == 1
        assert merged["failures"][0]["attempts"] == 3

    def test_store_accumulates_health_across_resumes(self, tmp_path):
        params = {"seed": 1}
        store = RunStore.open(str(tmp_path), "EX", params)
        store.record_health(RunHealth(retries=2))
        assert store.manifest["run_health"]["retries"] == 2
        reopened = RunStore.open(str(tmp_path), "EX", params)
        reopened.record_health(RunHealth(retries=1, timeouts=1))
        block = reopened.manifest["run_health"]
        assert block["retries"] == 3
        assert block["timeouts"] == 1

    def test_clean_health_leaves_manifest_untouched(self, tmp_path):
        store = RunStore.open(str(tmp_path), "EX", {"seed": 1})
        store.record_health(None)
        store.record_health(RunHealth())
        assert store.manifest["run_health"] == empty_health_block()


class TestTornWritesThroughStore:
    def test_torn_rows_survive_and_are_counted(self, tmp_path):
        experiment = get_experiment("E8")
        params = experiment.resolve_params(
            {"cs": (0.1,), "ns": (50,), "seed": 3})
        injector = FaultInjector(ChaosConfig(seed=1, torn=1.0))
        health = RunHealth()
        store = RunStore.open(str(tmp_path), "E8", params,
                              fault_injector=injector, health=health)
        rows = experiment.run(params=params, store=store)
        store.record_health(health)
        store.finish(wall_time=0.0)

        torn = 0
        intact = []
        with open(os.path.join(store.path, "rows.jsonl")) as handle:
            for line in handle:
                try:
                    intact.append(json.loads(line))
                except json.JSONDecodeError:
                    torn += 1
        assert torn == health.torn_writes == len(rows) > 0
        assert store.manifest["run_health"]["torn_writes"] == torn
        # Every torn write was followed by an intact recovery write, so
        # a reopening store sees the complete table.
        reopened = RunStore.open(str(tmp_path), "E8", params)
        assert reopened.rows() == rows


class _KillAfter(RunStore):
    """A store that dies (like SIGKILL mid-run) after N row writes."""

    def __init__(self, *args, kill_after: int, **kwargs):
        super().__init__(*args, **kwargs)
        self._writes_left = kill_after

    def write_row(self, index, key, row):
        if self._writes_left == 0:
            raise KeyboardInterrupt("killed mid-run")
        self._writes_left -= 1
        super().write_row(index, key, row)


class TestKillResumeUnderChaos:
    def test_chaos_kill_then_resume_is_bit_identical(self, tmp_path):
        """The keystone, end to end: chaos + kill + resume == clean run."""
        experiment = get_experiment("E2")
        params = experiment.resolve_params(E2_PARAMS)
        reference = experiment.run(params=params, workers=0)

        # Pick (deterministically) a chaos seed whose crash pattern
        # really hits this parameter grid, so the scenario cannot be
        # vacuous.
        specs = [spec for cell in experiment.cells(params=params)
                 for spec in cell.specs]
        chaos = next(
            config for config in
            (ChaosConfig(seed=seed, crash=0.5) for seed in range(64))
            if any(FaultInjector(config).decide(spec) == CRASH
                   for spec in specs))
        policy = ExecutionPolicy(retry=FAST_RETRY, chaos=chaos)

        path = run_directory(str(tmp_path), "E2", params)
        killed_health = RunHealth()
        killed = _KillAfter(path, "E2", params, kill_after=1,
                            health=killed_health)
        with pytest.raises(KeyboardInterrupt):
            experiment.run(params=params, workers=4, store=killed,
                           policy=policy, health=killed_health)
        assert not killed.manifest["completed"]
        assert killed.row_count == 1
        # Mid-run manifest rewrites persist the live health ledger, so
        # the killed segment's recovery actions survive the kill (how
        # much was persisted depends on the debounce timing; whatever
        # made it to disk is the resume baseline).
        carried = killed.manifest.get("run_health")

        resumed_health = RunHealth()
        resumed = RunStore.open(str(tmp_path), "E2", params, workers=4,
                                health=resumed_health)
        rows = experiment.run(params=params, workers=4, store=resumed,
                              policy=policy, health=resumed_health)
        resumed.finish(wall_time=0.5)

        assert rows == reference
        # The injected crashes bit during at least one of the two
        # executions (transient faults already absorbed before the kill
        # do not recur on resume — decisions are per-attempt).
        assert not (killed_health.clean and resumed_health.clean)
        # No duplicate rows on disk, and the manifest health block holds
        # the killed segment's persisted baseline plus exactly what the
        # resumed execution recorded.
        with open(os.path.join(path, "rows.jsonl")) as handle:
            keys = [json.dumps(json.loads(line)["key"]) for line in handle]
        assert len(keys) == len(set(keys))
        if resumed_health.clean:
            expected = carried or empty_health_block()
        else:
            expected = merge_health_block(carried, resumed_health)
        assert resumed.manifest["run_health"] == expected

        # A second resume recomputes nothing and changes nothing.
        rerun = RunStore.open(str(tmp_path), "E2", params, workers=4)
        assert experiment.run(params=params, workers=4,
                              store=rerun) == reference
