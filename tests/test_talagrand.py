"""Unit tests for the Talagrand toolkit and Theorem 5 constants."""

import math

import pytest

from repro.core.talagrand import (LowerBoundConstants, equation_3_satisfied,
                                  interpolation_threshold,
                                  lower_bound_constants, lower_bound_curve,
                                  predicted_lower_bound,
                                  separation_threshold, talagrand_bound,
                                  talagrand_violated, two_set_bound)


class TestTalagrandBound:
    def test_formula(self):
        assert talagrand_bound(0, 10) == pytest.approx(1.0)
        assert talagrand_bound(4, 4) == pytest.approx(math.exp(-1.0))

    def test_monotone_in_distance(self):
        values = [talagrand_bound(d, 20) for d in range(0, 21, 5)]
        assert values == sorted(values, reverse=True)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            talagrand_bound(1, 0)
        with pytest.raises(ValueError):
            talagrand_bound(-1, 5)

    def test_violation_check(self):
        # Impossible probabilities would flag a violation...
        assert talagrand_violated(0.9, 0.1, 10, 10)
        # ... while consistent ones do not.
        assert not talagrand_violated(0.1, 0.99, 10, 10)

    def test_two_set_bound_is_sqrt_of_talagrand_bound(self):
        assert two_set_bound(6, 12) == pytest.approx(
            math.sqrt(talagrand_bound(6, 12)))

    def test_thresholds_match_lemma_definitions(self):
        n, t = 100, 16
        assert separation_threshold(n, t) == pytest.approx(
            math.exp(-(t ** 2) / (8 * n)))
        assert interpolation_threshold(n, t) == pytest.approx(
            math.exp(-((t - 1) ** 2) / (8 * n)))


class TestLowerBoundConstants:
    def test_alpha_is_c_squared_over_nine(self):
        constants = lower_bound_constants(1.0 / 6.0)
        assert constants.alpha == pytest.approx((1.0 / 6.0) ** 2 / 9.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            lower_bound_constants(0.0)
        with pytest.raises(ValueError):
            lower_bound_constants(1.0)

    def test_equation_3_holds(self):
        for c in (0.05, 0.1, 1.0 / 6.0, 0.3):
            constants = lower_bound_constants(c)
            assert equation_3_satisfied(constants)

    def test_predicted_windows_grow_exponentially(self):
        constants = lower_bound_constants(0.2)
        small = constants.predicted_windows(50)
        large = constants.predicted_windows(100)
        assert large == pytest.approx(
            small * math.exp(constants.alpha * 50))
        assert large > small

    def test_success_probability_at_least_one_half(self):
        for c in (0.05, 0.1, 1.0 / 6.0, 0.25):
            constants = lower_bound_constants(c)
            for n in (10, 50, 100, 500, 1000):
                assert constants.success_probability(n) >= 0.5

    def test_larger_fault_fraction_gives_larger_exponent(self):
        weak = lower_bound_constants(0.05)
        strong = lower_bound_constants(0.3)
        assert strong.alpha > weak.alpha

    def test_curve_and_point_helpers_agree(self):
        ns = [20, 40, 60]
        curve = lower_bound_curve(ns, 0.1)
        assert curve == pytest.approx(
            [predicted_lower_bound(n, 0.1) for n in ns])

    def test_failure_term_shrinks_with_n(self):
        constants = lower_bound_constants(0.2)
        assert constants.failure_term(200) < constants.failure_term(50)
