"""Unit tests for the Ben-Or baseline protocol."""

import random

import pytest

from repro.adversaries.benign import BenignAdversary
from repro.adversaries.crash import StaticCrashAdversary
from repro.protocols.ben_or import PROPOSE, REPORT, BenOrAgreement
from repro.simulation.message import Message
from repro.simulation.windows import run_execution


def make_protocol(pid=0, n=7, t=3, input_bit=1, seed=5):
    return BenOrAgreement(pid=pid, n=n, t=t, input_bit=input_bit,
                          rng=random.Random(seed))


def report(sender, receiver, round_number, value):
    return Message(sender=sender, receiver=receiver,
                   payload=(REPORT, round_number, value))


def propose(sender, receiver, round_number, value):
    return Message(sender=sender, receiver=receiver,
                   payload=(PROPOSE, round_number, value))


class TestStructure:
    def test_resilience_requirement(self):
        with pytest.raises(ValueError):
            BenOrAgreement(pid=0, n=6, t=3, input_bit=0)

    def test_is_forgetful_and_fully_communicative(self):
        assert BenOrAgreement.forgetful
        assert BenOrAgreement.fully_communicative

    def test_first_message_is_report_of_input(self):
        protocol = make_protocol(input_bit=1)
        messages = protocol.send_step()
        assert all(m.payload == (REPORT, 1, 1) for m in messages)
        assert len(messages) == 7


class TestReportPhase:
    def test_majority_report_produces_proposal(self):
        protocol = make_protocol(input_bit=0)
        for sender in range(3):
            protocol.receive_step(report(sender, 0, 1, 1))
        assert protocol.phase == REPORT  # only 3 < n - t = 4 received so far
        # The fourth report completes the quorum; 4 > n/2 = 3.5, so the
        # majority value becomes the proposal.
        protocol.receive_step(report(3, 0, 1, 1))
        assert protocol.phase == PROPOSE
        assert protocol.proposal == 1

    def test_split_reports_produce_bottom_proposal(self):
        protocol = make_protocol(input_bit=0)
        for sender in range(2):
            protocol.receive_step(report(sender, 0, 1, 1))
        protocol.receive_step(report(2, 0, 1, 0))
        assert protocol.phase == REPORT
        # Quorum reached with an even split: 2 vs 2, no value exceeds n/2,
        # so the proposal stays bottom (None).
        protocol.receive_step(report(3, 0, 1, 0))
        assert protocol.phase == PROPOSE
        assert protocol.proposal is None

    def test_majority_threshold_hook(self):
        protocol = make_protocol()
        assert protocol.majority_threshold() == 4  # report phase
        protocol.phase = PROPOSE
        assert protocol.majority_threshold() == 1


class TestProposalPhase:
    def _enter_propose_phase(self, protocol, value):
        for sender in range(4):
            protocol.receive_step(report(sender, 0, 1, value))
        # Complete the report quorum with the same value.
        for sender in range(4, 5):
            protocol.receive_step(report(sender, 0, 1, value))
        assert protocol.phase == PROPOSE

    def test_decides_with_t_plus_one_matching_proposals(self):
        protocol = make_protocol(input_bit=0)
        self._enter_propose_phase(protocol, 1)
        for sender in range(4):
            protocol.receive_step(propose(sender, 0, 1, 1))
        protocol.receive_step(propose(4, 0, 1, None))
        assert protocol.decided
        assert protocol.output == 1
        assert protocol.round == 2

    def test_adopts_single_proposal_without_deciding(self):
        protocol = make_protocol(input_bit=0)
        self._enter_propose_phase(protocol, 1)
        protocol.receive_step(propose(0, 0, 1, 1))
        for sender in range(1, 5):
            protocol.receive_step(propose(sender, 0, 1, None))
        assert not protocol.decided
        assert protocol.estimate == 1
        assert protocol.round == 2

    def test_all_bottom_proposals_flip_a_coin(self):
        protocol = make_protocol(input_bit=0)
        self._enter_propose_phase(protocol, 1)
        for sender in range(5):
            protocol.receive_step(propose(sender, 0, 1, None))
        assert not protocol.decided
        assert protocol.coin_flips == 1
        assert protocol.round == 2

    def test_malformed_messages_ignored(self):
        protocol = make_protocol()
        protocol.receive_step(Message(sender=1, receiver=0, payload=42))
        protocol.receive_step(Message(sender=1, receiver=0,
                                      payload=(REPORT, 1, 5)))
        assert protocol.phase == REPORT
        assert protocol._received == {}


class TestEndToEnd:
    def test_unanimous_inputs_decide_quickly(self):
        for value in (0, 1):
            result = run_execution(BenOrAgreement, n=7, t=3,
                                   inputs=[value] * 7,
                                   adversary=BenignAdversary(),
                                   max_windows=20, seed=1)
            assert result.all_live_decided
            assert result.decision_values == {value}

    def test_split_inputs_terminate_under_benign_schedule(self):
        result = run_execution(BenOrAgreement, n=9, t=4,
                               inputs=[pid % 2 for pid in range(9)],
                               adversary=BenignAdversary(),
                               max_windows=3000, seed=11)
        assert result.all_live_decided
        assert result.agreement_ok and result.validity_ok

    def test_tolerates_t_crashes_at_start(self):
        n, t = 9, 4
        result = run_execution(
            BenOrAgreement, n=n, t=t, inputs=[1] * n,
            adversary=StaticCrashAdversary(
                crash_schedule={0: tuple(range(t))}),
            max_windows=3000, seed=2)
        assert result.agreement_ok and result.validity_ok
        assert result.all_live_decided
        assert len(result.crashed) == t
