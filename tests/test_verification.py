"""Verification-layer tests: traces, the invariant checker, and shrinking."""

import dataclasses

import pytest

from repro.protocols.base import ProtocolFactory
from repro.protocols.registry import get_protocol
from repro.runner import TrialSpec, execute_trial
from repro.simulation.engine import StepEngine
from repro.simulation.events import Step
from repro.simulation.trace import ExecutionTrace, TraceEvent
from repro.simulation.windows import WindowEngine, WindowSpec
from repro.verification import (InvariantChecker, ReplaySetup,
                                load_counterexample, replay_schedule,
                                save_counterexample,
                                schedule_from_jsonable,
                                schedule_to_jsonable, shrink_schedule)
from repro.verification.invariants import INVARIANTS


def _window_engine(protocol="reset-tolerant", n=13, t=2, seed=7,
                   inputs=None):
    info = get_protocol(protocol)
    factory = ProtocolFactory(info.protocol_cls, n=n, t=t)
    if inputs is None:
        inputs = [pid % 2 for pid in range(n)]
    return WindowEngine(factory, inputs, seed=seed, record_trace=True)


# ----------------------------------------------------------------------
# Trace recording.
# ----------------------------------------------------------------------
class TestTraceRecording:
    def test_window_engine_records_all_event_kinds(self):
        engine = _window_engine()
        spec = WindowSpec.full_delivery(engine.n)
        engine.run_window(spec)
        engine.run_window(dataclasses.replace(spec,
                                              resets=frozenset({0, 1})))
        trace = engine.trace
        assert trace is not None
        assert trace.engine == "window"
        assert len(trace.windows) == 2
        assert trace.events_of("send")
        assert trace.events_of("deliver")
        assert [event.pid for event in trace.events_of("reset")] == [0, 1]
        # Every delivery belongs to a recorded window.
        for event in trace.events_of("deliver"):
            assert 0 <= event.window < 2

    def test_window_engine_records_decisions(self):
        engine = _window_engine(inputs=[1] * 13)
        while not engine.all_live_decided():
            engine.run_window(WindowSpec.full_delivery(engine.n))
        decisions = engine.trace.decisions()
        assert sorted(pid for pid, _ in decisions) == list(range(13))
        assert {value for _, value in decisions} == {1}

    def test_step_engine_records_steps_and_crashes(self):
        info = get_protocol("ben-or")
        factory = ProtocolFactory(info.protocol_cls, n=5, t=2)
        engine = StepEngine(factory, [0, 1, 0, 1, 0], seed=3,
                            record_trace=True)
        engine.apply_step(Step.send(0))
        message = engine.pending_messages()[0]
        engine.apply_step(Step.receive(message))
        engine.apply_step(Step.crash(4))
        trace = engine.trace
        assert trace.engine == "step"
        sends = trace.events_of("send")
        assert sends and sends[0].pid == 0 and len(sends[0].sequences) == 5
        delivers = trace.events_of("deliver")
        assert delivers[0].sequence == message.sequence
        assert trace.crashed_pids() == {4}

    def test_trace_attached_to_result_only_when_requested(self):
        engine = _window_engine()
        engine.run_window(WindowSpec.full_delivery(engine.n))
        assert engine.result().trace is engine.trace
        info = get_protocol("reset-tolerant")
        factory = ProtocolFactory(info.protocol_cls, n=13, t=2)
        silent = WindowEngine(factory, [0] * 13, seed=1)
        silent.run_window(WindowSpec.full_delivery(13))
        assert silent.result().trace is None

    def test_trial_spec_record_trace_plumbs_through(self):
        spec = TrialSpec(protocol="reset-tolerant", adversary="benign",
                         n=13, t=2, inputs=(1,) * 13, seed=0,
                         max_windows=50, record_trace=True)
        result = execute_trial(spec)
        assert result.trace is not None
        assert result.trace.inputs == spec.inputs
        bare = execute_trial(dataclasses.replace(spec, record_trace=False))
        assert bare.trace is None


# ----------------------------------------------------------------------
# The invariant checker.
# ----------------------------------------------------------------------
class TestInvariantChecker:
    def test_clean_execution_passes_every_invariant(self):
        spec = TrialSpec(protocol="reset-tolerant",
                         adversary="schedule-fuzzer", n=13, t=2,
                         inputs=tuple(pid % 2 for pid in range(13)),
                         seed=11, adversary_kwargs={"seed": 4},
                         max_windows=80, record_trace=True)
        report = InvariantChecker().check_result(execute_trial(spec))
        assert report.ok
        assert report.summary() == "-"

    def test_checker_requires_a_trace(self):
        spec = TrialSpec(protocol="reset-tolerant", adversary="benign",
                         n=13, t=2, inputs=(0,) * 13, max_windows=10)
        with pytest.raises(ValueError, match="no trace"):
            InvariantChecker().check_result(execute_trial(spec))

    def test_agreement_and_validity_violations_detected(self, buggy_protocol):
        engine = _window_engine(protocol=buggy_protocol)
        for _ in range(3):
            engine.run_window(WindowSpec.full_delivery(engine.n))
        report = InvariantChecker().check(engine.trace)
        assert not report.ok
        assert "agreement" in report.violated_invariants()

    def test_validity_violation_detected(self):
        # Hand-build a trace whose only decision matches no input.
        trace = ExecutionTrace(engine="window", n=3, t=1, inputs=(0, 0, 0))
        trace.events.append(TraceEvent(kind="decide", pid=1, value=1))
        report = InvariantChecker().check(trace)
        assert report.violated_invariants() == ["validity"]

    def test_decision_retraction_detected(self):
        trace = ExecutionTrace(engine="window", n=3, t=1, inputs=(0, 1, 0))
        trace.events.append(TraceEvent(kind="decide", pid=2, value=0))
        trace.events.append(TraceEvent(kind="decide", pid=2, value=1))
        report = InvariantChecker().check(trace)
        assert "decision-stability" in report.violated_invariants()

    def test_fault_bound_violation_detected(self):
        trace = ExecutionTrace(engine="step", n=5, t=1, inputs=(0,) * 5,
                               crash_budget=1)
        trace.events.append(TraceEvent(kind="crash", pid=0))
        trace.events.append(TraceEvent(kind="crash", pid=1))
        report = InvariantChecker().check(trace)
        assert "fault-bound" in report.violated_invariants()

    def test_reset_budget_violation_detected(self):
        trace = ExecutionTrace(engine="window", n=4, t=1, inputs=(0,) * 4)
        trace.windows.append(WindowSpec.full_delivery(4))
        trace.events.append(TraceEvent(kind="reset", pid=0, window=0))
        trace.events.append(TraceEvent(kind="reset", pid=1, window=0))
        report = InvariantChecker().check(trace)
        assert "reset-budget" in report.violated_invariants()

    def test_unacceptable_window_detected(self):
        trace = ExecutionTrace(engine="window", n=4, t=1, inputs=(0,) * 4)
        # Sender sets of size 2 < n - t = 3: not an acceptable window.
        starved = frozenset({0, 1})
        trace.windows.append(WindowSpec.uniform(4, starved))
        report = InvariantChecker().check(trace)
        assert "window-acceptability" in report.violated_invariants()

    def test_message_causality_violations_detected(self):
        trace = ExecutionTrace(engine="step", n=3, t=1, inputs=(0,) * 3)
        trace.events.append(TraceEvent(kind="send", pid=0,
                                       sequences=(0, 1)))
        trace.events.append(TraceEvent(kind="deliver", pid=1, sequence=7,
                                       sender=0))  # never sent
        trace.events.append(TraceEvent(kind="deliver", pid=1, sequence=0,
                                       sender=0))
        trace.events.append(TraceEvent(kind="deliver", pid=1, sequence=0,
                                       sender=0))  # duplicated
        report = InvariantChecker().check(trace)
        details = [v.detail for v in report.violations]
        assert any("never sent" in detail for detail in details)
        assert any("delivered twice" in detail for detail in details)

    def test_corrupted_processors_are_excluded(self):
        # Corrupted pid 0 "decides" 1 against unanimous-0 honest inputs:
        # judged over honest processors only, the trace is clean.
        trace = ExecutionTrace(engine="step", n=4, t=1, inputs=(1, 0, 0, 0))
        trace.events.append(TraceEvent(kind="decide", pid=0, value=1))
        trace.events.append(TraceEvent(kind="decide", pid=1, value=0))
        assert not InvariantChecker().check(trace).ok
        assert InvariantChecker(corrupted=(0,)).check(trace).ok

    def test_invariant_names_are_stable(self):
        assert INVARIANTS == (
            "agreement", "validity", "decision-stability",
            "window-acceptability", "fault-bound", "reset-budget",
            "message-causality")


# ----------------------------------------------------------------------
# Replay and shrinking.
# ----------------------------------------------------------------------
class TestReplayAndShrink:
    def _violating_run(self, buggy_protocol, n=9, t=1, seed=21):
        spec = TrialSpec(protocol=buggy_protocol,
                         adversary="schedule-fuzzer", n=n, t=t,
                         inputs=tuple(pid % 2 for pid in range(n)),
                         seed=seed, adversary_kwargs={"seed": 5},
                         max_windows=30, record_trace=True)
        result = execute_trial(spec)
        setup = ReplaySetup(protocol=buggy_protocol, n=n, t=t,
                            inputs=spec.inputs, seed=seed)
        return setup, result

    def test_replay_reproduces_a_traced_execution(self, buggy_protocol):
        setup, result = self._violating_run(buggy_protocol)
        replayed = replay_schedule(setup, result.trace.windows)
        assert replayed.outputs == result.outputs
        assert replayed.total_resets == result.total_resets
        assert replayed.messages_sent == result.messages_sent

    def test_injected_bug_is_caught_and_shrinks_small(self, buggy_protocol):
        setup, result = self._violating_run(buggy_protocol)
        checker = InvariantChecker()
        assert not checker.check(result.trace).ok
        shrunk = shrink_schedule(setup, result.trace.windows,
                                 checker=checker)
        # The acceptance bar: a short reproducer of at most 10 events.
        assert 1 <= len(shrunk.schedule) <= 10
        assert shrunk.violations
        assert shrunk.original_windows >= len(shrunk.schedule)
        # The minimized schedule still violates when replayed afresh.
        assert not checker.check(
            replay_schedule(setup, shrunk.schedule).trace).ok

    def test_shrink_rejects_clean_schedules(self):
        setup = ReplaySetup(protocol="reset-tolerant", n=13, t=2,
                            inputs=(1,) * 13, seed=0)
        schedule = [WindowSpec.full_delivery(13)] * 3
        with pytest.raises(ValueError, match="nothing to shrink"):
            shrink_schedule(setup, schedule)

    def test_schedule_json_round_trip(self):
        spec = WindowSpec(
            senders_for=tuple(frozenset(range(4)) - {pid % 2}
                              for pid in range(4)),
            resets=frozenset({3}), crashes=frozenset(),
            deliver_last=frozenset({1, 2}))
        schedule = [spec, WindowSpec.full_delivery(4)]
        assert schedule_from_jsonable(
            schedule_to_jsonable(schedule)) == schedule

    def test_counterexample_artifact_round_trip(self, tmp_path,
                                                buggy_protocol):
        setup, result = self._violating_run(buggy_protocol)
        shrunk = shrink_schedule(setup, result.trace.windows)
        path = str(tmp_path / "counterexamples" / "trial-0.json")
        save_counterexample(path, setup, shrunk.schedule,
                            shrunk.violations)
        loaded_setup, loaded_schedule, loaded_violations = \
            load_counterexample(path)
        assert loaded_setup == setup
        assert loaded_schedule == shrunk.schedule
        assert loaded_violations == shrunk.violations
        # The artifact alone reproduces the violation.
        report = InvariantChecker().check(
            replay_schedule(loaded_setup, loaded_schedule).trace)
        assert not report.ok
