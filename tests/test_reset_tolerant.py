"""Unit tests for the paper's reset-tolerant agreement algorithm."""

import random

import pytest

from repro.adversaries.benign import BenignAdversary
from repro.adversaries.split_vote import AdaptiveResettingAdversary
from repro.core.reset_tolerant import VOTE, ResetTolerantAgreement
from repro.core.thresholds import ThresholdConfig, default_thresholds
from repro.protocols.base import ProtocolFactory
from repro.simulation.message import Message
from repro.simulation.windows import WindowEngine, WindowSpec, run_execution


def make_protocol(pid=0, n=13, t=2, input_bit=1, seed=3, thresholds=None):
    return ResetTolerantAgreement(pid=pid, n=n, t=t, input_bit=input_bit,
                                  rng=random.Random(seed),
                                  thresholds=thresholds)


def vote(sender, receiver, round_number, value):
    return Message(sender=sender, receiver=receiver,
                   payload=(VOTE, round_number, value))


class TestStructuralProperties:
    def test_is_forgetful_and_fully_communicative(self):
        assert ResetTolerantAgreement.forgetful
        assert ResetTolerantAgreement.fully_communicative

    def test_default_thresholds_are_theorem_4(self):
        protocol = make_protocol()
        expected = default_thresholds(13, 2)
        assert protocol.thresholds == expected

    def test_invalid_thresholds_rejected_by_default(self):
        bad = ThresholdConfig(n=13, t=2, t1=9, t2=9, t3=5)
        with pytest.raises(Exception):
            make_protocol(thresholds=bad)

    def test_invalid_thresholds_allowed_when_requested(self):
        bad = ThresholdConfig(n=13, t=2, t1=9, t2=9, t3=5)
        protocol = ResetTolerantAgreement(pid=0, n=13, t=2, input_bit=0,
                                          thresholds=bad,
                                          validate_thresholds=False)
        assert protocol.thresholds is bad


class TestRoundLogic:
    def test_initial_message_carries_round_and_input(self):
        protocol = make_protocol(input_bit=1)
        messages = protocol.send_step()
        assert len(messages) == 13
        assert all(m.payload == (VOTE, 1, 1) for m in messages)

    def test_decides_on_t2_matching_votes(self):
        protocol = make_protocol(input_bit=1)
        # T1 = T2 = 9 for n=13, t=2.
        for sender in range(9):
            protocol.receive_step(vote(sender, 0, 1, 1))
        assert protocol.decided
        assert protocol.output == 1
        assert protocol.current_round() == 2
        assert protocol.current_estimate() == 1

    def test_adopts_on_t3_without_deciding(self):
        protocol = make_protocol(input_bit=0)
        # 7 = T3 votes for 1, 2 votes for 0 -> adopt 1, no decision.
        for sender in range(7):
            protocol.receive_step(vote(sender, 0, 1, 1))
        for sender in range(7, 9):
            protocol.receive_step(vote(sender, 0, 1, 0))
        assert not protocol.decided
        assert protocol.current_estimate() == 1
        assert protocol.current_round() == 2

    def test_coin_flip_when_no_threshold_met(self):
        protocol = make_protocol(input_bit=0)
        # 5 votes for 1 and 4 for 0: below T3 = 7 for both values.
        for sender in range(5):
            protocol.receive_step(vote(sender, 0, 1, 1))
        for sender in range(5, 9):
            protocol.receive_step(vote(sender, 0, 1, 0))
        assert not protocol.decided
        assert protocol.coin_flips == 1
        assert protocol.current_estimate() in (0, 1)

    def test_stale_round_votes_ignored(self):
        protocol = make_protocol(input_bit=1)
        for sender in range(9):
            protocol.receive_step(vote(sender, 0, 1, 1))
        assert protocol.current_round() == 2
        # Round-1 votes arriving late must not affect round 2 counting.
        protocol.receive_step(vote(10, 0, 1, 0))
        assert protocol.current_round() == 2

    def test_future_round_votes_buffered(self):
        protocol = make_protocol(input_bit=1)
        for sender in range(9):
            protocol.receive_step(vote(sender, 0, 2, 1))
        # Still in round 1: the round-2 votes are buffered, not processed.
        assert protocol.current_round() == 1
        for sender in range(9):
            protocol.receive_step(vote(sender, 0, 1, 1))
        # Finishing round 1 immediately consumes the buffered round-2 quota.
        assert protocol.current_round() == 3

    def test_malformed_messages_ignored(self):
        protocol = make_protocol()
        protocol.receive_step(Message(sender=1, receiver=0, payload="junk"))
        protocol.receive_step(Message(sender=1, receiver=0,
                                      payload=(VOTE, "x", 1)))
        protocol.receive_step(Message(sender=1, receiver=0,
                                      payload=(VOTE, 1, 7)))
        assert protocol.current_round() == 1
        assert protocol.volatile_state()[3] == ()


class TestResetHandling:
    def test_reset_clears_round_and_estimate(self):
        protocol = make_protocol(input_bit=1)
        protocol.send_step()
        protocol.reset()
        assert protocol.current_round() is None
        assert protocol.current_estimate() is None
        assert protocol.reset_count == 1

    def test_reset_processor_refrains_from_sending(self):
        protocol = make_protocol(input_bit=1)
        protocol.reset()
        assert protocol.send_step() == []

    def test_reset_processor_resynchronises_from_t1_common_round_votes(self):
        protocol = make_protocol(input_bit=1)
        protocol.reset()
        for sender in range(9):
            protocol.receive_step(vote(sender, 0, 5, 1))
        assert protocol.current_round() == 6
        assert protocol.current_estimate() == 1
        # After resynchronising it resumes sending.
        messages = protocol.send_step()
        assert messages and messages[0].payload == (VOTE, 6, 1)

    def test_reset_preserves_decision(self):
        protocol = make_protocol(input_bit=1)
        for sender in range(9):
            protocol.receive_step(vote(sender, 0, 1, 1))
        assert protocol.decided
        protocol.reset()
        assert protocol.output == 1


class TestEndToEnd:
    def test_unanimous_inputs_decide_the_common_value(self):
        for value in (0, 1):
            result = run_execution(ResetTolerantAgreement, n=13, t=2,
                                   inputs=[value] * 13,
                                   adversary=BenignAdversary(),
                                   max_windows=10, seed=1)
            assert result.all_live_decided
            assert result.decision_values == {value}

    def test_correct_under_adaptive_resetting_adversary(self):
        result = run_execution(ResetTolerantAgreement, n=13, t=2,
                               inputs=[pid % 2 for pid in range(13)],
                               adversary=AdaptiveResettingAdversary(seed=4),
                               max_windows=20000, seed=9, stop_when="all")
        assert result.agreement_ok
        assert result.validity_ok
        assert result.all_live_decided

    def test_volatile_state_round_trips_through_fingerprint(self):
        factory = ProtocolFactory(ResetTolerantAgreement, n=13, t=2)
        engine = WindowEngine(factory, [1] * 13, seed=1)
        before = engine.configuration()
        engine.run_window(WindowSpec.full_delivery(13))
        after = engine.configuration()
        assert before.hamming_distance(after) == 13
