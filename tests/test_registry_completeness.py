"""Registry completeness: every registered adversary, protocol and
Byzantine strategy is exercised under the independent invariant checker.

The scenario tables below are the coverage contract: registering a new
adversary, protocol or strategy without adding a scenario here fails the
``*_registry_is_fully_covered`` tests, and every scenario actually runs a
traced execution whose trace must satisfy all of the paper's invariants.

Scenario-name discovery is delegated to the ``repro.staticcheck`` symbol
index: the tables must stay plain dict literals so the linter's R3 check
parses exactly the same names this test exercises — the static and
runtime views of the coverage contract can never disagree.
"""

import pytest

from repro.adversaries.registry import ADVERSARIES, STRATEGIES
from repro.protocols.registry import available_protocols
from repro.runner import TrialSpec, execute_trial
from repro.simulation.windows import WindowSpec
from repro.staticcheck import project_scenarios
from repro.verification import InvariantChecker

# A replayable 2-window schedule for the replay-schedule scenario, in the
# picklable JSON encoding trial specs must carry (the adversary pads with
# benign full-delivery windows afterwards, so the execution decides).
_REPLAY_SCHEDULE = [
    WindowSpec.uniform(13, frozenset(range(2, 13)),
                       resets=frozenset({0})).to_jsonable(),
    WindowSpec.full_delivery(13).to_jsonable(),
]

# One scenario per registered adversary: (protocol, engine, n, t,
# adversary kwargs, corrupted processors the checker must exclude).
ADVERSARY_SCENARIOS = {
    "benign": ("reset-tolerant", "window", 13, 2, {}, ()),
    "random-scheduler": ("reset-tolerant", "window", 13, 2,
                         {"seed": 1, "reset_probability": 0.5}, ()),
    "silencing": ("reset-tolerant", "window", 13, 2, {}, ()),
    "split-vote": ("reset-tolerant", "window", 13, 2, {"seed": 2}, ()),
    "adaptive-resetting": ("reset-tolerant", "window", 13, 2,
                           {"seed": 3}, ()),
    "polarizing": ("reset-tolerant", "window", 13, 2, {"seed": 4}, ()),
    "lookahead": ("reset-tolerant", "window", 7, 1,
                  {"seed": 9, "horizon": 1, "samples": 2,
                   "include_hybrids": False, "max_candidates": 4}, ()),
    "static-crash": ("ben-or", "window", 9, 4,
                     {"crash_schedule": {0: (0, 1)}}, ()),
    "crash-at-decision": ("ben-or", "window", 9, 4, {}, ()),
    "crash-split-vote": ("ben-or", "window", 9, 4, {"seed": 5}, ()),
    "byzantine": ("bracha", "step", 7, 2,
                  {"corrupted": (0, 1), "strategy": "flip", "seed": 6},
                  (0, 1)),
    "schedule-fuzzer": ("reset-tolerant", "window", 13, 2,
                        {"seed": 7}, ()),
    "step-fuzzer": ("bracha", "step", 7, 2,
                    {"seed": 8, "corrupted": (0, 1),
                     "strategy": "equivocate"}, (0, 1)),
    "replay-schedule": ("reset-tolerant", "window", 13, 2,
                        {"schedule": _REPLAY_SCHEDULE}, ()),
}

# One scenario per registered Byzantine strategy, all driven through the
# byzantine adversary against Bracha.  Written out as a literal (not a
# comprehension) so the staticcheck symbol index reads the same keys.
STRATEGY_SCENARIOS = {
    "silent": ("bracha", "step", 7, 2,
               {"corrupted": (0, 1), "strategy": "silent", "seed": 30},
               (0, 1)),
    "flip": ("bracha", "step", 7, 2,
             {"corrupted": (0, 1), "strategy": "flip", "seed": 31},
             (0, 1)),
    "equivocate": ("bracha", "step", 7, 2,
                   {"corrupted": (0, 1), "strategy": "equivocate",
                    "seed": 32},
                   (0, 1)),
    "random-values": ("bracha", "step", 7, 2,
                      {"corrupted": (0, 1), "strategy": "random-values",
                       "seed": 33},
                      (0, 1)),
}


def _run_checked(adversary, protocol, engine, n, t, kwargs, corrupted):
    spec = TrialSpec(
        protocol=protocol, adversary=adversary, n=n, t=t,
        inputs=tuple(pid % 2 for pid in range(n)), seed=99,
        adversary_kwargs=dict(kwargs), engine=engine,
        max_windows=400, max_steps=60000, stop_when="all",
        record_trace=True)
    result = execute_trial(spec)
    report = InvariantChecker(corrupted=corrupted).check_result(result)
    return result, report


def test_adversary_registry_is_fully_covered():
    """Fails when an adversary registration ships without a scenario.

    Discovery goes through the staticcheck symbol index (which parses
    this file's table statically — the same parse the linter's R3 check
    uses), cross-checked against the runtime dict.
    """
    tables = project_scenarios()
    assert tables.adversaries == set(ADVERSARY_SCENARIOS)
    assert tables.adversaries == set(ADVERSARIES)


def test_strategy_registry_is_fully_covered():
    """Fails when a Byzantine strategy ships without a scenario."""
    tables = project_scenarios()
    assert tables.strategies == set(STRATEGY_SCENARIOS)
    assert tables.strategies == set(STRATEGIES)


def test_protocol_registry_is_fully_covered():
    """Every registered protocol appears in at least one scenario."""
    tables = project_scenarios()
    assert tables.protocols == {scenario[0] for scenario
                                in ADVERSARY_SCENARIOS.values()}
    assert tables.protocols == set(available_protocols())


@pytest.mark.parametrize("adversary", sorted(ADVERSARY_SCENARIOS))
def test_every_adversary_passes_the_invariant_checker(adversary):
    protocol, engine, n, t, kwargs, corrupted = \
        ADVERSARY_SCENARIOS[adversary]
    result, report = _run_checked(adversary, protocol, engine, n, t,
                                  kwargs, corrupted)
    assert report.ok, report.summary()
    # The scenario must actually exercise the execution machinery.
    assert result.trace is not None and result.trace.events


@pytest.mark.parametrize("strategy", sorted(STRATEGY_SCENARIOS))
def test_every_strategy_passes_the_invariant_checker(strategy):
    protocol, engine, n, t, kwargs, corrupted = \
        STRATEGY_SCENARIOS[strategy]
    result, report = _run_checked("byzantine", protocol, engine, n, t,
                                  kwargs, corrupted)
    assert report.ok, report.summary()
    assert result.trace is not None and result.trace.events
