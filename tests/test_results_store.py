"""Results-store tests: manifest, streaming rows, and kill/resume."""

import json
import os

import pytest

import repro.experiments.base as base
from repro.experiments import get_experiment
from repro.results import (RunStore, latest_run, list_runs, load_run,
                           params_digest, run_directory)

E2_PARAMS = {"ns": (12, 16), "trials": 1, "max_windows": 200000,
             "use_resets": True, "seed": 9}


def _resolved(name, params):
    return get_experiment(name).resolve_params(params)


class TestManifest:
    def test_manifest_fields(self, tmp_path):
        experiment = get_experiment("E8")
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 3})
        store = RunStore.open(str(tmp_path), "E8", params, workers=0)
        experiment.run(params=params, store=store)
        store.finish(wall_time=1.25)
        manifest = store.manifest
        assert manifest["experiment"] == "E8"
        assert manifest["seed"] == 3
        assert manifest["workers"] == 0
        assert manifest["completed"] is True
        assert manifest["wall_time_seconds"] == 1.25
        assert manifest["row_count"] == 4  # 1 curve + 3 talagrand cells
        assert manifest["package_version"]
        assert manifest["params"]["cs"] == [0.1]

    def test_run_directory_is_content_addressed(self, tmp_path):
        params = _resolved("E8", {"seed": 3})
        path = run_directory(str(tmp_path), "E8", params)
        assert path == os.path.join(
            str(tmp_path), "E8", params_digest("E8", params))
        # Same config -> same digest; different seed -> different digest.
        assert params_digest("E8", params) == params_digest("E8", params)
        other = dict(params, seed=4)
        assert params_digest("E8", params) != params_digest("E8", other)


class TestStreamingAndLoad:
    def test_rows_stream_as_jsonl(self, tmp_path):
        experiment = get_experiment("E3")
        params = _resolved("E3", {"ns": (8,), "samples": 2,
                                  "separation_trials": 2, "seed": 7})
        store = RunStore.open(str(tmp_path), "E3", params)
        rows = experiment.run(params=params, store=store)
        store.finish(wall_time=0.1)
        lines = [json.loads(line) for line in
                 open(os.path.join(store.path, "rows.jsonl"))]
        assert [line["row"] for line in lines] == rows
        manifest, loaded = load_run(store.path)
        assert loaded == rows
        assert manifest["completed"]

    def test_list_and_latest_runs(self, tmp_path):
        experiment = get_experiment("E8")
        for seed in (1, 2):
            params = _resolved("E8", {"cs": (0.1,), "ns": (50,),
                                      "seed": seed})
            store = RunStore.open(str(tmp_path), "E8", params)
            experiment.run(params=params, store=store)
            store.finish(wall_time=0.0)
        runs = list_runs(str(tmp_path))
        assert len(runs) == 2
        assert latest_run(str(tmp_path), "E8") == runs[0]
        assert latest_run(str(tmp_path), "E1") is None

    def test_list_runs_breaks_mtime_ties_by_digest(self, tmp_path):
        # Filesystem mtimes are coarse enough for back-to-back runs to
        # tie; the order must then come from the digest, not from
        # directory-listing accidents.
        experiment = get_experiment("E8")
        paths = []
        for seed in (1, 2, 3):
            params = _resolved("E8", {"cs": (0.1,), "ns": (50,),
                                      "seed": seed})
            store = RunStore.open(str(tmp_path), "E8", params)
            experiment.run(params=params, store=store)
            store.finish(wall_time=0.0)
            paths.append(store.path)
        stamp = os.path.getmtime(os.path.join(paths[0], "manifest.json"))
        for path in paths:
            os.utime(os.path.join(path, "manifest.json"), (stamp, stamp))
        assert list_runs(str(tmp_path)) == sorted(
            paths, key=os.path.basename, reverse=True)

    def test_latest_run_prefers_completed_over_fresher_partial(
            self, tmp_path):
        experiment = get_experiment("E8")
        done = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", done)
        experiment.run(params=done, store=store)
        store.finish(wall_time=0.0)
        # An interrupted rerun opens (touching its manifest) but never
        # finishes; `show E8` must still find the completed run.
        partial = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 2})
        RunStore.open(str(tmp_path), "E8", partial)
        assert latest_run(str(tmp_path), "E8") == store.path


class _KillAfter(RunStore):
    """A store that dies (like SIGKILL mid-run) after N row writes."""

    def __init__(self, *args, kill_after: int, **kwargs):
        super().__init__(*args, **kwargs)
        self._writes_left = kill_after

    def write_row(self, index, key, row):
        if self._writes_left == 0:
            raise KeyboardInterrupt("killed mid-run")
        self._writes_left -= 1
        super().write_row(index, key, row)


class TestResume:
    def test_kill_midrun_then_resume_no_duplicates_identical_table(
            self, tmp_path, monkeypatch):
        experiment = get_experiment("E2")
        params = _resolved("E2", E2_PARAMS)
        reference = experiment.run(params=params, workers=0)

        path = run_directory(str(tmp_path), "E2", params)
        killed = _KillAfter(path, "E2", params, kill_after=1)
        with pytest.raises(KeyboardInterrupt):
            experiment.run(params=params, workers=0, store=killed)
        assert not killed.manifest["completed"]
        assert killed.row_count == 1

        # Rerun: the surviving cell must not recompute.  Count the trials
        # that are submitted for execution on resume.
        executed = []
        real_iter_trials = base.iter_trials

        def counting_iter_trials(specs, workers=None, **kwargs):
            specs = list(specs)
            executed.extend(specs)
            return real_iter_trials(specs, workers=workers, **kwargs)

        monkeypatch.setattr(base, "iter_trials", counting_iter_trials)
        resumed_store = RunStore.open(str(tmp_path), "E2", params,
                                      workers=0)
        rows = experiment.run(params=params, workers=0,
                              store=resumed_store)
        resumed_store.finish(wall_time=0.5)

        cells = experiment.cells(params=params)
        assert len(executed) == len(cells[1].specs)  # only the killed cell
        assert rows == reference  # identical final table, fit row included

        # No duplicate rows in the JSONL, and a second rerun executes
        # nothing at all.
        lines = [json.loads(line) for line in
                 open(os.path.join(path, "rows.jsonl"))]
        keys = [json.dumps(line["key"]) for line in lines]
        assert len(keys) == len(set(keys)) == len(cells)
        executed.clear()
        rerun_store = RunStore.open(str(tmp_path), "E2", params, workers=0)
        assert experiment.run(params=params, workers=0,
                              store=rerun_store) == reference
        assert executed == []

    def test_resume_sees_rows_written_after_compaction(self, tmp_path):
        # The columnar copy must never feed resume: only rows.jsonl can,
        # or rows appended after the last compaction would recompute.
        experiment = get_experiment("E8")
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", params)
        experiment.run(params=params, store=store)
        store.finish(wall_time=0.1)
        store.write_row(99, ["extra-cell"], {"n": 1})
        reopened = RunStore.open(str(tmp_path), "E8", params)
        assert reopened.row_count == store.row_count
        assert "extra-cell" in str(reopened.completed_rows())

    def test_torn_final_line_is_ignored(self, tmp_path):
        experiment = get_experiment("E8")
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", params)
        rows = experiment.run(params=params, store=store)
        rows_path = os.path.join(store.path, "rows.jsonl")
        with open(rows_path, "a") as handle:
            handle.write('{"index": 99, "key": ["torn"')  # no newline
        reopened = RunStore.open(str(tmp_path), "E8", params)
        assert reopened.rows() == rows
        # And the resumed run completes the table without the torn cell.
        assert experiment.run(params=params, store=reopened) == rows


class TestManifestDebounce:
    def _store(self, tmp_path):
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        return RunStore.open(str(tmp_path), "E8", params, workers=0)

    def test_row_writes_do_not_rewrite_the_manifest_each_time(
            self, tmp_path, monkeypatch):
        from repro.results import store as store_module

        store = self._store(tmp_path)
        # Freeze the clock so only the row-count threshold can trigger.
        frozen = store._last_manifest_write
        monkeypatch.setattr(store_module.time, "monotonic",
                            lambda: frozen)
        threshold = store_module.MANIFEST_EVERY_ROWS
        for i in range(threshold - 1):
            store.write_row(i, [f"cell-{i}"], {"n": i})
        assert store.manifest["row_count"] == 0  # still the open() write
        store.write_row(threshold - 1, ["cell-last"], {"n": threshold})
        assert store.manifest["row_count"] == threshold

    def test_elapsed_time_also_flushes(self, tmp_path, monkeypatch):
        from repro.results import store as store_module

        store = self._store(tmp_path)
        clock = [store._last_manifest_write]
        monkeypatch.setattr(store_module.time, "monotonic",
                            lambda: clock[0])
        store.write_row(0, ["cell-0"], {"n": 0})
        assert store.manifest["row_count"] == 0
        clock[0] += store_module.MANIFEST_MIN_INTERVAL
        store.write_row(1, ["cell-1"], {"n": 1})
        assert store.manifest["row_count"] == 2

    def test_reopen_corrects_a_lagging_count(self, tmp_path, monkeypatch):
        from repro.results import store as store_module

        store = self._store(tmp_path)
        frozen = store._last_manifest_write
        monkeypatch.setattr(store_module.time, "monotonic",
                            lambda: frozen)
        for i in range(5):
            store.write_row(i, [f"cell-{i}"], {"n": i})
        assert store.manifest["row_count"] == 0  # lagging, killed here
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        reopened = RunStore.open(str(tmp_path), "E8", params)
        assert reopened.manifest["row_count"] == 5

    def test_finish_writes_an_exact_manifest(self, tmp_path, monkeypatch):
        from repro.results import store as store_module

        store = self._store(tmp_path)
        frozen = store._last_manifest_write
        monkeypatch.setattr(store_module.time, "monotonic",
                            lambda: frozen)
        for i in range(3):
            store.write_row(i, [f"cell-{i}"], {"n": i})
        store.finish(wall_time=0.5)
        manifest = store.manifest
        assert manifest["row_count"] == 3
        assert manifest["completed"] is True


class TestNonFiniteCanonicalization:
    def test_write_row_stores_non_finite_floats_as_null(self, tmp_path):
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", params)
        store.write_row(0, ["cell"], {"good": 0.5, "nan": float("nan"),
                                      "inf": float("inf"),
                                      "nested": {"x": float("-inf")}})
        line = open(os.path.join(store.path, "rows.jsonl")).readline()
        assert "NaN" not in line and "Infinity" not in line
        stored = json.loads(line)["row"]
        assert stored == {"good": 0.5, "nan": None, "inf": None,
                          "nested": {"x": None}}
        # The resumed view agrees with the stored form.
        reopened = RunStore.open(str(tmp_path), "E8", params)
        assert reopened.rows() == [stored]

    def test_non_finite_params_canonicalized_in_manifest(self, tmp_path):
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        params["threshold"] = float("inf")
        store = RunStore.open(str(tmp_path), "E8", params)
        assert store.manifest["params"]["threshold"] is None

    def test_loader_rejects_raw_nan_lines_loudly(self, tmp_path):
        from repro.results.columnar import NonFiniteRowError

        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", params)
        store.write_row(0, ["cell"], {"n": 1})
        with open(os.path.join(store.path, "rows.jsonl"), "a") as handle:
            handle.write('{"index": 1, "key": ["bad"], '
                         '"row": {"x": NaN}}\n')
        # A pre-canonicalization line is an error, not a torn line to
        # silently drop on resume.
        with pytest.raises(NonFiniteRowError):
            RunStore.open(str(tmp_path), "E8", params)


class TestStoreRobustness:
    def _finished_run(self, tmp_path, seed=1):
        experiment = get_experiment("E8")
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,),
                                  "seed": seed})
        store = RunStore.open(str(tmp_path), "E8", params)
        experiment.run(params=params, store=store)
        store.finish(wall_time=0.1)
        return store

    def test_stray_files_do_not_brick_listing(self, tmp_path):
        store = self._finished_run(tmp_path)
        (tmp_path / "notes.txt").write_text("a stray root file\n")
        (tmp_path / "E8" / "download.partial").write_text("debris\n")
        assert list_runs(str(tmp_path)) == [store.path]
        assert latest_run(str(tmp_path), "E8") == store.path

    def test_load_run_on_a_stray_file_raises_cleanly(self, tmp_path):
        stray = tmp_path / "E8"
        stray.parent.mkdir(exist_ok=True)
        stray.write_text("not a directory\n")
        with pytest.raises(FileNotFoundError, match="not a run directory"):
            load_run(str(stray))

    def test_corrupt_manifest_skipped_with_warning(self, tmp_path):
        from repro.results import scan_runs

        good = self._finished_run(tmp_path, seed=1)
        broken = tmp_path / "E8" / "corrupt000000"
        broken.mkdir()
        (broken / "manifest.json").write_text("{definitely not json\n")
        headless = tmp_path / "E8" / "headless00000"
        headless.mkdir()
        (headless / "manifest.json").write_text('{"seed": 1}\n')
        with pytest.warns(RuntimeWarning, match="skipping unloadable"):
            scanned = list(scan_runs(str(tmp_path)))
        assert [run_dir for run_dir, _, _ in scanned] == [good.path]

    def test_load_run_reports_manifest_without_experiment(self, tmp_path):
        run_dir = tmp_path / "E8" / "headless00000"
        run_dir.mkdir(parents=True)
        (run_dir / "manifest.json").write_text('{"seed": 1}\n')
        with pytest.raises(ValueError, match="no 'experiment' field"):
            load_run(str(run_dir))

    def test_listing_a_missing_root_is_empty(self, tmp_path):
        assert list_runs(str(tmp_path / "nowhere")) == []
        assert latest_run(str(tmp_path / "nowhere"), "E8") is None
