"""Results-store tests: manifest, streaming rows, and kill/resume."""

import json
import os

import pytest

import repro.experiments.base as base
from repro.experiments import get_experiment
from repro.results import (RunStore, latest_run, list_runs, load_run,
                           params_digest, run_directory)

E2_PARAMS = {"ns": (12, 16), "trials": 1, "max_windows": 200000,
             "use_resets": True, "seed": 9}


def _resolved(name, params):
    return get_experiment(name).resolve_params(params)


class TestManifest:
    def test_manifest_fields(self, tmp_path):
        experiment = get_experiment("E8")
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 3})
        store = RunStore.open(str(tmp_path), "E8", params, workers=0)
        experiment.run(params=params, store=store)
        store.finish(wall_time=1.25)
        manifest = store.manifest
        assert manifest["experiment"] == "E8"
        assert manifest["seed"] == 3
        assert manifest["workers"] == 0
        assert manifest["completed"] is True
        assert manifest["wall_time_seconds"] == 1.25
        assert manifest["row_count"] == 4  # 1 curve + 3 talagrand cells
        assert manifest["package_version"]
        assert manifest["params"]["cs"] == [0.1]

    def test_run_directory_is_content_addressed(self, tmp_path):
        params = _resolved("E8", {"seed": 3})
        path = run_directory(str(tmp_path), "E8", params)
        assert path == os.path.join(
            str(tmp_path), "E8", params_digest("E8", params))
        # Same config -> same digest; different seed -> different digest.
        assert params_digest("E8", params) == params_digest("E8", params)
        other = dict(params, seed=4)
        assert params_digest("E8", params) != params_digest("E8", other)


class TestStreamingAndLoad:
    def test_rows_stream_as_jsonl(self, tmp_path):
        experiment = get_experiment("E3")
        params = _resolved("E3", {"ns": (8,), "samples": 2,
                                  "separation_trials": 2, "seed": 7})
        store = RunStore.open(str(tmp_path), "E3", params)
        rows = experiment.run(params=params, store=store)
        store.finish(wall_time=0.1)
        lines = [json.loads(line) for line in
                 open(os.path.join(store.path, "rows.jsonl"))]
        assert [line["row"] for line in lines] == rows
        manifest, loaded = load_run(store.path)
        assert loaded == rows
        assert manifest["completed"]

    def test_list_and_latest_runs(self, tmp_path):
        experiment = get_experiment("E8")
        for seed in (1, 2):
            params = _resolved("E8", {"cs": (0.1,), "ns": (50,),
                                      "seed": seed})
            store = RunStore.open(str(tmp_path), "E8", params)
            experiment.run(params=params, store=store)
            store.finish(wall_time=0.0)
        runs = list_runs(str(tmp_path))
        assert len(runs) == 2
        assert latest_run(str(tmp_path), "E8") == runs[0]
        assert latest_run(str(tmp_path), "E1") is None

    def test_list_runs_breaks_mtime_ties_by_digest(self, tmp_path):
        # Filesystem mtimes are coarse enough for back-to-back runs to
        # tie; the order must then come from the digest, not from
        # directory-listing accidents.
        experiment = get_experiment("E8")
        paths = []
        for seed in (1, 2, 3):
            params = _resolved("E8", {"cs": (0.1,), "ns": (50,),
                                      "seed": seed})
            store = RunStore.open(str(tmp_path), "E8", params)
            experiment.run(params=params, store=store)
            store.finish(wall_time=0.0)
            paths.append(store.path)
        stamp = os.path.getmtime(os.path.join(paths[0], "manifest.json"))
        for path in paths:
            os.utime(os.path.join(path, "manifest.json"), (stamp, stamp))
        assert list_runs(str(tmp_path)) == sorted(
            paths, key=os.path.basename, reverse=True)

    def test_latest_run_prefers_completed_over_fresher_partial(
            self, tmp_path):
        experiment = get_experiment("E8")
        done = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", done)
        experiment.run(params=done, store=store)
        store.finish(wall_time=0.0)
        # An interrupted rerun opens (touching its manifest) but never
        # finishes; `show E8` must still find the completed run.
        partial = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 2})
        RunStore.open(str(tmp_path), "E8", partial)
        assert latest_run(str(tmp_path), "E8") == store.path


class _KillAfter(RunStore):
    """A store that dies (like SIGKILL mid-run) after N row writes."""

    def __init__(self, *args, kill_after: int, **kwargs):
        super().__init__(*args, **kwargs)
        self._writes_left = kill_after

    def write_row(self, index, key, row):
        if self._writes_left == 0:
            raise KeyboardInterrupt("killed mid-run")
        self._writes_left -= 1
        super().write_row(index, key, row)


class TestResume:
    def test_kill_midrun_then_resume_no_duplicates_identical_table(
            self, tmp_path, monkeypatch):
        experiment = get_experiment("E2")
        params = _resolved("E2", E2_PARAMS)
        reference = experiment.run(params=params, workers=0)

        path = run_directory(str(tmp_path), "E2", params)
        killed = _KillAfter(path, "E2", params, kill_after=1)
        with pytest.raises(KeyboardInterrupt):
            experiment.run(params=params, workers=0, store=killed)
        assert not killed.manifest["completed"]
        assert killed.row_count == 1

        # Rerun: the surviving cell must not recompute.  Count the trials
        # that are submitted for execution on resume.
        executed = []
        real_iter_trials = base.iter_trials

        def counting_iter_trials(specs, workers=None, **kwargs):
            specs = list(specs)
            executed.extend(specs)
            return real_iter_trials(specs, workers=workers, **kwargs)

        monkeypatch.setattr(base, "iter_trials", counting_iter_trials)
        resumed_store = RunStore.open(str(tmp_path), "E2", params,
                                      workers=0)
        rows = experiment.run(params=params, workers=0,
                              store=resumed_store)
        resumed_store.finish(wall_time=0.5)

        cells = experiment.cells(params=params)
        assert len(executed) == len(cells[1].specs)  # only the killed cell
        assert rows == reference  # identical final table, fit row included

        # No duplicate rows in the JSONL, and a second rerun executes
        # nothing at all.
        lines = [json.loads(line) for line in
                 open(os.path.join(path, "rows.jsonl"))]
        keys = [json.dumps(line["key"]) for line in lines]
        assert len(keys) == len(set(keys)) == len(cells)
        executed.clear()
        rerun_store = RunStore.open(str(tmp_path), "E2", params, workers=0)
        assert experiment.run(params=params, workers=0,
                              store=rerun_store) == reference
        assert executed == []

    def test_torn_final_line_is_ignored(self, tmp_path):
        experiment = get_experiment("E8")
        params = _resolved("E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        store = RunStore.open(str(tmp_path), "E8", params)
        rows = experiment.run(params=params, store=store)
        rows_path = os.path.join(store.path, "rows.jsonl")
        with open(rows_path, "a") as handle:
            handle.write('{"index": 99, "key": ["torn"')  # no newline
        reopened = RunStore.open(str(tmp_path), "E8", params)
        assert reopened.rows() == rows
        # And the resumed run completes the table without the torn cell.
        assert experiment.run(params=params, store=reopened) == rows
