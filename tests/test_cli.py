"""CLI tests: argument handling, run/show round-trips, EXPERIMENTS.md sync."""

import json
import os


from repro.cli import main, render_registry_doc
from repro.experiments import available_experiments

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXPERIMENTS_MD = os.path.join(REPO_ROOT, "EXPERIMENTS.md")

E3_ARGS = ["--set", "ns=(8,)", "--set", "samples=2",
           "--set", "separation_trials=2"]


def test_experiments_md_in_sync():
    """EXPERIMENTS.md is generated; regenerate with
    ``python -m repro list --doc > EXPERIMENTS.md`` after editing the
    registry."""
    with open(EXPERIMENTS_MD) as handle:
        on_disk = handle.read()
    assert on_disk == render_registry_doc()


def test_doc_covers_every_experiment():
    doc = render_registry_doc()
    for experiment in available_experiments():
        assert f"## {experiment.name} — {experiment.title}" in doc
        assert experiment.slug in doc


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment in available_experiments():
        assert experiment.name in out
        assert experiment.slug in out


def test_list_doc_prints_the_document(capsys):
    assert main(["list", "--doc"]) == 0
    assert capsys.readouterr().out == render_registry_doc()


def test_run_requires_experiment_or_all(capsys):
    assert main(["run"]) == 2
    assert "--all" in capsys.readouterr().err


def test_run_unknown_experiment_fails_cleanly(capsys):
    assert main(["run", "E99", "--no-store"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_unknown_parameter_fails_cleanly(capsys):
    assert main(["run", "E8", "--no-store", "--set", "bogus=1"]) == 2
    assert "unknown parameter" in capsys.readouterr().err


def test_run_bad_set_syntax_fails_cleanly(capsys):
    assert main(["run", "E8", "--no-store", "--set", "novalue"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_run_non_literal_set_value_fails_cleanly(capsys):
    assert main(["run", "E2", "--no-store", "--set", "trials=3x"]) == 2
    assert "not a Python literal" in capsys.readouterr().err


def test_run_no_store_prints_table(capsys):
    assert main(["run", "E8", "--no-store", "--seed", "3",
                 "--set", "cs=(0.1,)", "--set", "ns=(50, 100)"]) == 0
    out = capsys.readouterr().out
    assert "E8: Theorem 5 constants" in out
    assert "predicted_windows" in out


def test_run_by_slug(capsys):
    assert main(["run", "constants", "--no-store",
                 "--set", "cs=(0.1,)", "--set", "ns=(50,)"]) == 0
    assert "E8" in capsys.readouterr().out


def test_run_writes_store_and_resumes(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E3", "--quick", "--out", out_dir] + E3_ARGS) == 0
    first = capsys.readouterr().out
    assert "0 cached + 1 computed" in first

    run_dirs = [os.path.join(root, name)
                for root, dirs, files in os.walk(out_dir)
                for name in files if name == "manifest.json"]
    assert len(run_dirs) == 1
    manifest = json.load(open(run_dirs[0]))
    assert manifest["experiment"] == "E3"
    assert manifest["completed"] is True
    assert os.path.exists(os.path.join(os.path.dirname(run_dirs[0]),
                                       "rows.jsonl"))

    # Rerun of the same configuration resumes (all cells cached) and
    # keeps the originally recorded wall time instead of ~0s.
    wall_before = json.load(open(run_dirs[0]))["wall_time_seconds"]
    assert main(["run", "E3", "--quick", "--out", out_dir] + E3_ARGS) == 0
    second = capsys.readouterr().out
    assert "1 cached + 0 computed" in second
    assert json.load(open(run_dirs[0]))["wall_time_seconds"] == wall_before


def test_run_set_negative_int_coerces(capsys):
    # Negative literals survive both argparse and ast.literal_eval.
    assert main(["run", "E8", "--no-store", "--set", "seed=-7",
                 "--set", "cs=(0.1,)", "--set", "ns=(50,)"]) == 0
    assert "E8" in capsys.readouterr().out


def test_run_set_tuple_and_list_values_coerce(capsys):
    assert main(["run", "E8", "--no-store", "--set", "cs=(0.1, 0.2)",
                 "--set", "ns=[50, 100]"]) == 0
    out = capsys.readouterr().out
    assert out.count("E8 ") >= 4  # 2 cs x 2 ns curve rows


def test_run_set_empty_value_fails_cleanly(capsys):
    assert main(["run", "E8", "--no-store", "--set", "cs="]) == 2
    assert "not a Python literal" in capsys.readouterr().err


def test_run_set_unknown_key_reports_known_parameters(capsys):
    assert main(["run", "E8", "--no-store", "--set", "bogus=1"]) == 2
    err = capsys.readouterr().err
    assert "unknown parameter" in err
    assert "known parameters" in err


def test_run_repeated_set_last_assignment_wins(capsys):
    assert main(["run", "E8", "--no-store", "--set", "ns=(50, 100)",
                 "--set", "cs=(0.1,)", "--set", "ns=(50,)"]) == 0
    out = capsys.readouterr().out
    assert "50" in out and " 100 " not in out


def test_show_on_non_run_directory_fails_cleanly(tmp_path, capsys):
    assert main(["show", str(tmp_path)]) == 2
    assert "not a run directory" in capsys.readouterr().err


def test_show_on_missing_run_id_reports_the_path(capsys):
    # A path-like target that does not exist is a missing run id, not an
    # unknown experiment name.
    assert main(["show", "results/E1/0123456789ab"]) == 2
    err = capsys.readouterr().err
    assert "no run directory at" in err
    assert "unknown experiment" not in err


def test_show_on_unknown_name_still_reports_experiments(capsys):
    assert main(["show", "E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_show_renders_unregistered_experiment_manifests(tmp_path, capsys):
    # Stored runs of pseudo-experiments (e.g. fuzz campaigns) render
    # generically instead of crashing on the registry lookup.
    from repro.results import RunStore

    store = RunStore.open(str(tmp_path), "custom-campaign", {"seed": 1})
    store.write_row(0, ("custom-campaign", 0), {"trial": 0, "ok": True})
    store.finish(0.1)
    assert main(["show", store.path]) == 0
    out = capsys.readouterr().out
    assert "custom-campaign" in out
    assert "trial" in out


def test_show_latest_run_and_run_dir(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E3", "--quick", "--out", out_dir] + E3_ARGS) == 0
    capsys.readouterr()

    assert main(["show", "E3", "--out", out_dir]) == 0
    by_name = capsys.readouterr().out
    assert "complete" in by_name
    assert "separation_holds" in by_name

    run_dir = os.path.dirname(next(
        os.path.join(root, name)
        for root, dirs, files in os.walk(out_dir)
        for name in files if name == "manifest.json"))
    assert main(["show", run_dir]) == 0
    by_path = capsys.readouterr().out
    assert "separation_holds" in by_path


def test_show_without_stored_runs_errors(tmp_path, capsys):
    assert main(["show", "E3", "--out", str(tmp_path / "empty")]) == 1
    assert "no stored runs" in capsys.readouterr().err


def test_show_renders_finalize_rows(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E2", "--out", out_dir, "--seed", "5",
                 "--set", "ns=(12, 16)", "--set", "trials=1",
                 "--workers", "0"]) == 0
    capsys.readouterr()
    assert main(["show", "E2", "--out", out_dir]) == 0
    out = capsys.readouterr().out
    assert "E2-fit" in out  # synthetic fit row recomputed on render


E2_TINY_ARGS = ["--set", "ns=(12,)", "--set", "trials=1",
                "--set", "use_resets=True", "--seed", "9",
                "--workers", "0"]


def _only_run_dir(out_dir):
    return os.path.dirname(next(
        os.path.join(root, name)
        for root, dirs, files in os.walk(out_dir)
        for name in files if name == "manifest.json"))


def test_run_profile_records_telemetry_and_artifacts(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E2", "--out", out_dir, "--profile"]
                + E2_TINY_ARGS) == 0
    capsys.readouterr()
    run_dir = _only_run_dir(out_dir)

    from repro.telemetry import TELEMETRY_NAME, read_events
    events = read_events(os.path.join(run_dir, TELEMETRY_NAME))
    names = {event.get("name") for event in events
             if event.get("kind") == "span"}
    assert {"campaign", "cell", "trial"} <= names
    for artifact in ("campaign.pstats", "top-functions.txt",
                     "phases.json"):
        assert os.path.isfile(os.path.join(run_dir, "profile", artifact))
    manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
    assert manifest["telemetry"]["spans"] > 0

    assert main(["show", "E2", "--out", out_dir, "--timing"]) == 0
    out = capsys.readouterr().out
    assert "telemetry:" in out
    assert "trial timing (telemetry, ms)" in out
    assert "slowest trial:" in out

    assert main(["top", "E2", "--out", out_dir, "--once"]) == 0
    out = capsys.readouterr().out
    assert "== top:" in out and "completed" in out

    assert main(["query",
                 "SELECT name, count(*) AS n FROM spans "
                 "GROUP BY name ORDER BY name",
                 "--out", out_dir, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "campaign" in [row[0] for row in payload["rows"]]


def test_run_no_telemetry_leaves_no_trace(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E2", "--out", out_dir, "--no-telemetry"]
                + E2_TINY_ARGS) == 0
    capsys.readouterr()
    run_dir = _only_run_dir(out_dir)
    assert not os.path.exists(os.path.join(run_dir, "telemetry.jsonl"))
    manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
    assert "telemetry" not in manifest

    assert main(["show", "E2", "--out", out_dir, "--timing"]) == 0
    assert "no trial timing recorded" in capsys.readouterr().out


def test_telemetry_flag_never_changes_rows(tmp_path, capsys):
    plain_dir = str(tmp_path / "plain")
    traced_dir = str(tmp_path / "traced")
    assert main(["run", "E2", "--out", plain_dir, "--no-telemetry"]
                + E2_TINY_ARGS) == 0
    assert main(["run", "E2", "--out", traced_dir, "--profile"]
                + E2_TINY_ARGS) == 0
    capsys.readouterr()

    def stored_rows(out_dir):
        with open(os.path.join(_only_run_dir(out_dir),
                               "rows.jsonl")) as handle:
            return [json.loads(line) for line in handle]

    assert stored_rows(plain_dir) == stored_rows(traced_dir)
