"""CLI tests: argument handling, run/show round-trips, EXPERIMENTS.md sync."""

import json
import os


from repro.cli import main, render_registry_doc
from repro.experiments import available_experiments

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXPERIMENTS_MD = os.path.join(REPO_ROOT, "EXPERIMENTS.md")

E3_ARGS = ["--set", "ns=(8,)", "--set", "samples=2",
           "--set", "separation_trials=2"]


def test_experiments_md_in_sync():
    """EXPERIMENTS.md is generated; regenerate with
    ``python -m repro list --doc > EXPERIMENTS.md`` after editing the
    registry."""
    with open(EXPERIMENTS_MD) as handle:
        on_disk = handle.read()
    assert on_disk == render_registry_doc()


def test_doc_covers_every_experiment():
    doc = render_registry_doc()
    for experiment in available_experiments():
        assert f"## {experiment.name} — {experiment.title}" in doc
        assert experiment.slug in doc


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment in available_experiments():
        assert experiment.name in out
        assert experiment.slug in out


def test_list_doc_prints_the_document(capsys):
    assert main(["list", "--doc"]) == 0
    assert capsys.readouterr().out == render_registry_doc()


def test_run_requires_experiment_or_all(capsys):
    assert main(["run"]) == 2
    assert "--all" in capsys.readouterr().err


def test_run_unknown_experiment_fails_cleanly(capsys):
    assert main(["run", "E99", "--no-store"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_run_unknown_parameter_fails_cleanly(capsys):
    assert main(["run", "E8", "--no-store", "--set", "bogus=1"]) == 2
    assert "unknown parameter" in capsys.readouterr().err


def test_run_bad_set_syntax_fails_cleanly(capsys):
    assert main(["run", "E8", "--no-store", "--set", "novalue"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_run_non_literal_set_value_fails_cleanly(capsys):
    assert main(["run", "E2", "--no-store", "--set", "trials=3x"]) == 2
    assert "not a Python literal" in capsys.readouterr().err


def test_run_no_store_prints_table(capsys):
    assert main(["run", "E8", "--no-store", "--seed", "3",
                 "--set", "cs=(0.1,)", "--set", "ns=(50, 100)"]) == 0
    out = capsys.readouterr().out
    assert "E8: Theorem 5 constants" in out
    assert "predicted_windows" in out


def test_run_by_slug(capsys):
    assert main(["run", "constants", "--no-store",
                 "--set", "cs=(0.1,)", "--set", "ns=(50,)"]) == 0
    assert "E8" in capsys.readouterr().out


def test_run_writes_store_and_resumes(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E3", "--quick", "--out", out_dir] + E3_ARGS) == 0
    first = capsys.readouterr().out
    assert "0 cached + 1 computed" in first

    run_dirs = [os.path.join(root, name)
                for root, dirs, files in os.walk(out_dir)
                for name in files if name == "manifest.json"]
    assert len(run_dirs) == 1
    manifest = json.load(open(run_dirs[0]))
    assert manifest["experiment"] == "E3"
    assert manifest["completed"] is True
    assert os.path.exists(os.path.join(os.path.dirname(run_dirs[0]),
                                       "rows.jsonl"))

    # Rerun of the same configuration resumes (all cells cached) and
    # keeps the originally recorded wall time instead of ~0s.
    wall_before = json.load(open(run_dirs[0]))["wall_time_seconds"]
    assert main(["run", "E3", "--quick", "--out", out_dir] + E3_ARGS) == 0
    second = capsys.readouterr().out
    assert "1 cached + 0 computed" in second
    assert json.load(open(run_dirs[0]))["wall_time_seconds"] == wall_before


def test_run_set_negative_int_coerces(capsys):
    # Negative literals survive both argparse and ast.literal_eval.
    assert main(["run", "E8", "--no-store", "--set", "seed=-7",
                 "--set", "cs=(0.1,)", "--set", "ns=(50,)"]) == 0
    assert "E8" in capsys.readouterr().out


def test_run_set_tuple_and_list_values_coerce(capsys):
    assert main(["run", "E8", "--no-store", "--set", "cs=(0.1, 0.2)",
                 "--set", "ns=[50, 100]"]) == 0
    out = capsys.readouterr().out
    assert out.count("E8 ") >= 4  # 2 cs x 2 ns curve rows


def test_run_set_empty_value_fails_cleanly(capsys):
    assert main(["run", "E8", "--no-store", "--set", "cs="]) == 2
    assert "not a Python literal" in capsys.readouterr().err


def test_run_set_unknown_key_reports_known_parameters(capsys):
    assert main(["run", "E8", "--no-store", "--set", "bogus=1"]) == 2
    err = capsys.readouterr().err
    assert "unknown parameter" in err
    assert "known parameters" in err


def test_run_repeated_set_last_assignment_wins(capsys):
    assert main(["run", "E8", "--no-store", "--set", "ns=(50, 100)",
                 "--set", "cs=(0.1,)", "--set", "ns=(50,)"]) == 0
    out = capsys.readouterr().out
    assert "50" in out and " 100 " not in out


def test_show_on_non_run_directory_fails_cleanly(tmp_path, capsys):
    assert main(["show", str(tmp_path)]) == 2
    assert "not a run directory" in capsys.readouterr().err


def test_show_on_missing_run_id_reports_the_path(capsys):
    # A path-like target that does not exist is a missing run id, not an
    # unknown experiment name.
    assert main(["show", "results/E1/0123456789ab"]) == 2
    err = capsys.readouterr().err
    assert "no run directory at" in err
    assert "unknown experiment" not in err


def test_show_on_unknown_name_still_reports_experiments(capsys):
    assert main(["show", "E99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_show_renders_unregistered_experiment_manifests(tmp_path, capsys):
    # Stored runs of pseudo-experiments (e.g. fuzz campaigns) render
    # generically instead of crashing on the registry lookup.
    from repro.results import RunStore

    store = RunStore.open(str(tmp_path), "custom-campaign", {"seed": 1})
    store.write_row(0, ("custom-campaign", 0), {"trial": 0, "ok": True})
    store.finish(0.1)
    assert main(["show", store.path]) == 0
    out = capsys.readouterr().out
    assert "custom-campaign" in out
    assert "trial" in out


def test_show_latest_run_and_run_dir(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E3", "--quick", "--out", out_dir] + E3_ARGS) == 0
    capsys.readouterr()

    assert main(["show", "E3", "--out", out_dir]) == 0
    by_name = capsys.readouterr().out
    assert "complete" in by_name
    assert "separation_holds" in by_name

    run_dir = os.path.dirname(next(
        os.path.join(root, name)
        for root, dirs, files in os.walk(out_dir)
        for name in files if name == "manifest.json"))
    assert main(["show", run_dir]) == 0
    by_path = capsys.readouterr().out
    assert "separation_holds" in by_path


def test_show_without_stored_runs_errors(tmp_path, capsys):
    assert main(["show", "E3", "--out", str(tmp_path / "empty")]) == 1
    assert "no stored runs" in capsys.readouterr().err


def test_show_renders_finalize_rows(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["run", "E2", "--out", out_dir, "--seed", "5",
                 "--set", "ns=(12, 16)", "--set", "trials=1",
                 "--workers", "0"]) == 0
    capsys.readouterr()
    assert main(["show", "E2", "--out", out_dir]) == 0
    out = capsys.readouterr().out
    assert "E2-fit" in out  # synthetic fit row recomputed on render
