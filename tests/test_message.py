"""Unit tests for message primitives."""

import pytest

from repro.simulation.message import Message, broadcast


class TestMessage:
    def test_fields(self):
        message = Message(sender=1, receiver=2, payload=("VOTE", 1, 0))
        assert message.sender == 1
        assert message.receiver == 2
        assert message.payload == ("VOTE", 1, 0)
        assert message.sequence == -1
        assert message.chain_depth == 1

    def test_with_sequence_returns_new_object(self):
        message = Message(sender=0, receiver=1, payload="x")
        stamped = message.with_sequence(7)
        assert stamped.sequence == 7
        assert message.sequence == -1
        assert stamped is not message

    def test_with_chain_depth(self):
        message = Message(sender=0, receiver=1, payload="x")
        deep = message.with_chain_depth(5)
        assert deep.chain_depth == 5
        assert message.chain_depth == 1

    def test_corrupted_replaces_payload_only(self):
        message = Message(sender=3, receiver=4, payload=("VOTE", 2, 1),
                          sequence=9)
        corrupted = message.corrupted(("VOTE", 2, 0))
        assert corrupted.payload == ("VOTE", 2, 0)
        assert corrupted.sender == 3
        assert corrupted.receiver == 4
        assert corrupted.sequence == 9

    def test_key_ignores_bookkeeping(self):
        a = Message(sender=1, receiver=2, payload="p", sequence=5,
                    chain_depth=3)
        b = Message(sender=1, receiver=2, payload="p", sequence=9,
                    chain_depth=7)
        assert a.key() == b.key()

    def test_immutability(self):
        message = Message(sender=0, receiver=1, payload="x")
        with pytest.raises(Exception):
            message.sender = 5  # type: ignore[misc]


class TestBroadcast:
    def test_broadcast_includes_self_by_default(self):
        messages = broadcast(2, 5, payload="hello")
        assert len(messages) == 5
        assert {m.receiver for m in messages} == set(range(5))
        assert all(m.sender == 2 for m in messages)
        assert all(m.payload == "hello" for m in messages)

    def test_broadcast_excluding_self(self):
        messages = broadcast(2, 5, payload="hello", include_self=False)
        assert len(messages) == 4
        assert 2 not in {m.receiver for m in messages}

    def test_broadcast_single_processor(self):
        messages = broadcast(0, 1, payload=1)
        assert len(messages) == 1
        assert messages[0].receiver == 0
