"""Query-layer tests: mounting, the fallback engine, engine selection."""

import json

import pytest

from repro.experiments import get_experiment
from repro.results import RunStore
from repro.results.minisql import MiniSQLError, execute
from repro.results.query import (QueryError, duckdb_ok, mount_store,
                                 query_store, resolve_engine, run_query)

PEOPLE = [
    {"name": "ada", "team": "a", "score": 3, "bonus": None},
    {"name": "bob", "team": "b", "score": 1, "bonus": 2.5},
    {"name": "cyd", "team": "a", "score": 2, "bonus": None},
    {"name": "dee", "team": "b", "score": 4, "bonus": 0.5},
]
TABLES = {"people": PEOPLE}


def _store_with_runs(tmp_path, seeds=(1, 2)):
    experiment = get_experiment("E8")
    for seed in seeds:
        params = experiment.resolve_params(
            {"cs": (0.1,), "ns": (50,), "seed": seed})
        store = RunStore.open(str(tmp_path), "E8", params, workers=0)
        experiment.run(params=params, store=store)
        store.finish(wall_time=0.1)
    return str(tmp_path)


class TestMiniSQL:
    def test_select_where_order(self):
        columns, rows = execute(
            "SELECT name, score FROM people WHERE team = 'a' "
            "ORDER BY score DESC", TABLES)
        assert columns == ["name", "score"]
        assert rows == [("ada", 3), ("cyd", 2)]

    def test_select_star_uses_first_seen_columns(self):
        columns, rows = execute("SELECT * FROM people LIMIT 1", TABLES)
        assert columns == ["name", "team", "score", "bonus"]
        assert rows == [("ada", "a", 3, None)]

    def test_group_by_aggregates(self):
        columns, rows = execute(
            "SELECT team, COUNT(*) AS n, SUM(score) AS total, "
            "AVG(score) AS mean, MIN(score) AS lo, MAX(score) AS hi "
            "FROM people GROUP BY team ORDER BY team", TABLES)
        assert columns == ["team", "n", "total", "mean", "lo", "hi"]
        assert rows == [("a", 2, 5, 2.5, 2, 3), ("b", 2, 5, 2.5, 1, 4)]

    def test_global_aggregate_and_count_skips_nulls(self):
        _, rows = execute(
            "SELECT COUNT(*) AS all_rows, COUNT(bonus) AS with_bonus "
            "FROM people", TABLES)
        assert rows == [(4, 2)]

    def test_is_null_in_and_boolean_logic(self):
        _, rows = execute(
            "SELECT name FROM people WHERE bonus IS NULL "
            "AND (team IN ('a', 'c') OR score > 10) ORDER BY name",
            TABLES)
        assert rows == [("ada",), ("cyd",)]
        _, rows = execute(
            "SELECT name FROM people WHERE NOT bonus IS NULL "
            "ORDER BY name", TABLES)
        assert rows == [("bob",), ("dee",)]

    def test_distinct_and_limit(self):
        _, rows = execute(
            "SELECT DISTINCT team FROM people ORDER BY team LIMIT 1",
            TABLES)
        assert rows == [("a",)]

    def test_nulls_sort_last(self):
        _, rows = execute(
            "SELECT name, bonus FROM people ORDER BY bonus, name", TABLES)
        assert [row[0] for row in rows] == ["dee", "bob", "ada", "cyd"]

    def test_missing_column_reads_as_null(self):
        # Mounted stores are heterogeneous (the rows table is the union
        # of every experiment's columns), so an absent column is NULL,
        # not an error.
        _, rows = execute(
            "SELECT name FROM people WHERE missing IS NULL LIMIT 1",
            TABLES)
        assert rows == [("ada",)]

    @pytest.mark.parametrize("sql,message", [
        ("SELECT name FROM nowhere", "unknown table"),
        ("DELETE FROM people", "SELECT"),
        ("SELECT name FROM people WHERE COUNT(*) > 1", "WHERE"),
        ("SELECT name, COUNT(*) FROM people", "GROUP BY"),
        ("SELECT name FROM people ORDER BY bonus", "ORDER BY"),
        ("SELECT name FROM people; DROP TABLE people", "tokenize"),
    ])
    def test_rejections_carry_a_hint(self, sql, message):
        with pytest.raises(MiniSQLError, match=message):
            execute(sql, TABLES)


class TestMountStore:
    def test_tables_and_meta_columns(self, tmp_path):
        root = _store_with_runs(tmp_path)
        store = mount_store(root)
        assert store.experiments == ["E8"]
        assert len(store.tables["runs"]) == 2
        runs = store.tables["runs"]
        assert all(run["row_count"] == 4 for run in runs)
        assert all(run["columnar_codec"] is not None for run in runs)
        rows = store.tables["rows"]
        assert len(rows) == 8
        first = rows[0]
        assert first["run_id"]
        assert json.loads(first["params"])["seed"] in (1, 2)
        assert json.loads(first["cell"])  # a JSON list
        # Row columns follow the meta columns in the declared order.
        assert store.columns["rows"].index("experiment") == 0

    def test_mount_skips_debris(self, tmp_path):
        root = _store_with_runs(tmp_path, seeds=(1,))
        (tmp_path / "E8" / "not-a-run").write_text("debris\n")
        broken = tmp_path / "E8" / "badmanifest00"
        broken.mkdir()
        (broken / "manifest.json").write_text("{not json\n")
        with pytest.warns(RuntimeWarning, match="skipping"):
            store = mount_store(root)
        assert len(store.tables["runs"]) == 1


class TestFallbackEngine:
    def test_run_query_end_to_end(self, tmp_path):
        root = _store_with_runs(tmp_path)
        result = run_query(
            root, "SELECT seed, COUNT(*) AS n FROM rows "
                  "GROUP BY seed ORDER BY seed", engine="fallback")
        assert result.engine == "fallback"
        assert result.columns == ["seed", "n"]
        assert result.rows == [(1, 4), (2, 4)]
        assert result.as_dicts()[0] == {"seed": 1, "n": 4}

    def test_experiment_pseudo_table(self, tmp_path):
        root = _store_with_runs(tmp_path, seeds=(1,))
        result = run_query(
            root, "SELECT n, success_probability FROM E8 WHERE n = 50",
            engine="fallback")
        assert len(result.rows) == 1
        assert result.rows[0][0] == 50

    def test_bad_sql_raises_query_error(self, tmp_path):
        root = _store_with_runs(tmp_path, seeds=(1,))
        with pytest.raises(QueryError, match="analytics"):
            run_query(root, "SELECT frobnicate(", engine="fallback")

    def test_engine_resolution(self):
        with pytest.raises(QueryError, match="unknown query engine"):
            resolve_engine("sqlite")
        assert resolve_engine("fallback") == "fallback"
        if duckdb_ok():
            assert resolve_engine("auto") == "duckdb"
        else:
            assert resolve_engine("auto") == "fallback"
            with pytest.raises(QueryError, match="not installed"):
                resolve_engine("duckdb")


class TestQueryCLI:
    def test_query_table_output(self, tmp_path, capsys):
        from repro.cli import main

        root = _store_with_runs(tmp_path)
        assert main(["query", "SELECT seed, COUNT(*) AS n FROM rows "
                              "GROUP BY seed ORDER BY seed",
                     "--out", root]) == 0
        out = capsys.readouterr().out
        assert "seed" in out and "n" in out
        assert "2 row(s)" in out

    def test_query_json_output(self, tmp_path, capsys):
        from repro.cli import main

        root = _store_with_runs(tmp_path, seeds=(1,))
        assert main(["query", "SELECT run_id, row_count FROM runs",
                     "--out", root, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["columns"] == ["run_id", "row_count"]
        assert payload["rows"][0][1] == 4

    def test_query_csv_output(self, tmp_path, capsys):
        from repro.cli import main

        root = _store_with_runs(tmp_path, seeds=(1,))
        assert main(["query", "SELECT seed FROM runs", "--out", root,
                     "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == ["seed", "1"]

    def test_query_bad_sql_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        root = _store_with_runs(tmp_path, seeds=(1,))
        assert main(["query", "EXPLODE please", "--out", root,
                     "--engine", "fallback"]) == 2
        assert "repro query" in capsys.readouterr().err


@pytest.mark.skipif(not duckdb_ok(), reason="duckdb not installed")
class TestDuckDBEngine:
    def test_matches_fallback_on_shared_subset(self, tmp_path):
        root = _store_with_runs(tmp_path)
        store = mount_store(root)
        sql = ("SELECT seed, COUNT(*) AS n FROM rows "
               "GROUP BY seed ORDER BY seed")
        duck = query_store(store, sql, engine="duckdb")
        fallback = query_store(store, sql, engine="fallback")
        assert duck.engine == "duckdb"
        assert duck.columns == fallback.columns
        assert [tuple(row) for row in duck.rows] == fallback.rows

    def test_experiment_view_and_sql_breadth(self, tmp_path):
        root = _store_with_runs(tmp_path, seeds=(1,))
        result = run_query(
            root, "SELECT r.n FROM E8 AS r JOIN runs USING (run_id) "
                  "WHERE runs.completed ORDER BY r.n LIMIT 1",
            engine="duckdb")
        assert result.rows[0][0] == 50

    def test_bad_sql_raises_query_error(self, tmp_path):
        root = _store_with_runs(tmp_path, seeds=(1,))
        with pytest.raises(QueryError, match="duckdb rejected"):
            run_query(root, "SELECT FROM WHERE", engine="duckdb")
