"""Unit tests for the statistics helpers."""

import math

import pytest

from repro.analysis.statistics import (empirical_probability,
                                       fit_exponential, format_table,
                                       geometric_mean, summarize_trials)


class TestSummaries:
    def test_summary_of_constant_batch(self):
        summary = summarize_trials([5.0, 5.0, 5.0])
        assert summary.mean == 5.0
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == 5.0

    def test_summary_fields(self):
        summary = summarize_trials([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0 and summary.maximum == 4.0
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            summarize_trials([])

    def test_single_trial(self):
        summary = summarize_trials([7.0])
        assert summary.mean == 7.0
        assert summary.std == 0.0


class TestExponentialFit:
    def test_recovers_known_parameters(self):
        a, b = 2.0, 0.3
        xs = list(range(5, 30, 5))
        ys = [a * math.exp(b * x) for x in xs]
        fit = fit_exponential(xs, ys)
        assert fit.a == pytest.approx(a, rel=1e-6)
        assert fit.b == pytest.approx(b, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_doubling_x(self):
        fit = fit_exponential([0, 1, 2], [1.0, 2.0, 4.0])
        assert fit.doubling_x == pytest.approx(1.0)

    def test_flat_fit_has_infinite_doubling(self):
        fit = fit_exponential([0, 1, 2], [3.0, 3.0, 3.0])
        assert fit.doubling_x == math.inf

    def test_predict(self):
        fit = fit_exponential([0, 1, 2], [1.0, math.e, math.e ** 2])
        assert fit.predict(3) == pytest.approx(math.e ** 3, rel=1e-6)

    def test_requires_two_positive_points(self):
        with pytest.raises(ValueError):
            fit_exponential([1, 2], [0.0, -1.0])


class TestOtherHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_empirical_probability_interval_contains_estimate(self):
        p_hat, low, high = empirical_probability(30, 100)
        assert low <= p_hat <= high
        assert 0.0 <= low and high <= 1.0

    def test_empirical_probability_validates_arguments(self):
        with pytest.raises(ValueError):
            empirical_probability(5, 0)
        with pytest.raises(ValueError):
            empirical_probability(11, 10)

    def test_format_table_renders_all_rows_and_columns(self):
        rows = [{"n": 8, "windows": 12.5}, {"n": 16, "windows": None}]
        text = format_table(rows)
        assert "n" in text and "windows" in text
        assert "12.5" in text
        assert "-" in text  # the None cell
        assert text.count("\n") >= 3

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"
