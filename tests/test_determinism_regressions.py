"""Regression tests for the unseeded-entropy fix (lint code D5).

Before this change, every constructor with a ``seed: Optional[int] =
None`` parameter forwarded it verbatim into ``random.Random``, so an
omitted seed silently pulled OS entropy and made the run irreproducible.
All such sites now route through :func:`repro.determinism.seeded_rng`,
whose ``None`` fallback draws from a fixed-seeded module stream.  These
tests pin both halves of that contract:

* unseeded constructions are reproducible (rewind the fallback stream,
  rebuild, get bit-identical behaviour);
* explicit seeds produce *exactly* the bitstream they always did, so no
  golden value anywhere else in the suite moves.
"""

import random

from repro.adversaries.benign import RandomSchedulerAdversary
from repro.adversaries.fuzzing import ScheduleFuzzer
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.determinism import (FALLBACK_MASTER_SEED, reset_fallback_stream,
                               seeded_rng)
from repro.protocols.base import ProtocolFactory
from repro.simulation.windows import run_execution


class TestSeededRng:
    def test_explicit_seed_matches_plain_random(self):
        """seeded_rng(k) is a drop-in for random.Random(k), bit for bit."""
        for seed in (0, 1, 7, 123, FALLBACK_MASTER_SEED):
            ours = seeded_rng(seed)
            theirs = random.Random(seed)
            assert [ours.random() for _ in range(20)] == \
                   [theirs.random() for _ in range(20)]
            assert ours.getrandbits(64) == theirs.getrandbits(64)

    def test_unseeded_rng_is_reproducible_across_resets(self):
        reset_fallback_stream()
        first = [seeded_rng().random() for _ in range(5)]
        reset_fallback_stream()
        second = [seeded_rng().random() for _ in range(5)]
        assert first == second

    def test_consecutive_unseeded_rngs_are_distinct(self):
        """The fallback is a stream, not a constant: unseeded adversaries
        in one sweep must not all share a bitstream."""
        reset_fallback_stream()
        streams = [seeded_rng().random() for _ in range(5)]
        assert len(set(streams)) == len(streams)


class TestUnseededConstructions:
    def test_unseeded_adversary_is_reproducible(self):
        def schedule():
            adversary = RandomSchedulerAdversary(reset_probability=0.5)
            return [(adversary.rng.random(), adversary.rng.getrandbits(32))
                    for _ in range(10)]

        reset_fallback_stream()
        first = schedule()
        reset_fallback_stream()
        second = schedule()
        assert first == second

    def test_unseeded_schedule_fuzzer_is_reproducible(self):
        reset_fallback_stream()
        first = ScheduleFuzzer().rng.getrandbits(64)
        reset_fallback_stream()
        second = ScheduleFuzzer().rng.getrandbits(64)
        assert first == second

    def test_unseeded_factory_build_is_reproducible(self):
        factory = ProtocolFactory(ResetTolerantAgreement, n=7, t=1)

        def coin_streams():
            protocols = factory.build([0, 1, 0, 1, 1, 0, 1],
                                      seed=None)
            return [proto.rng.getrandbits(64) for proto in protocols]

        reset_fallback_stream()
        first = coin_streams()
        reset_fallback_stream()
        second = coin_streams()
        assert first == second
        # Per-processor streams stay mutually independent.
        assert len(set(first)) == len(first)

    def test_unseeded_execution_is_reproducible_end_to_end(self):
        def run():
            return run_execution(
                ResetTolerantAgreement, n=7, t=1,
                inputs=[0, 1, 1, 0, 1, 0, 1],
                adversary=RandomSchedulerAdversary(reset_probability=0.3),
                max_windows=30, seed=None)

        reset_fallback_stream()
        first = run()
        reset_fallback_stream()
        second = run()
        assert first.outputs == second.outputs
        assert first.windows_elapsed == second.windows_elapsed
        assert first.total_coin_flips == second.total_coin_flips

    def test_explicitly_seeded_execution_ignores_the_fallback_stream(self):
        """A seeded run must be identical no matter where the fallback
        stream happens to stand — seeded paths never touch it."""
        def run():
            return run_execution(
                ResetTolerantAgreement, n=7, t=1,
                inputs=[0, 1, 1, 0, 1, 0, 1],
                adversary=RandomSchedulerAdversary(seed=5,
                                                   reset_probability=0.3),
                max_windows=30, seed=11)

        reset_fallback_stream()
        first = run()
        seeded_rng()  # advance the fallback stream
        second = run()
        assert first.outputs == second.outputs
        assert first.windows_elapsed == second.windows_elapsed
        assert first.total_coin_flips == second.total_coin_flips
