"""The differential harness and the backend plumbing, end to end.

Covers the ISSUE's differential-coverage contract: batched-vs-trial
bit-identity on the real E1/E2 quick grids, across worker counts 0/1/4,
under injected chaos faults, and — via hypothesis — under every
admissible partition of a spec list into sub-batches.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.batched import numpy_ok, resolve_backend
from repro.experiments import get_experiment
from repro.runner import RunHealth, TrialSpec, run_trials
from repro.runner.spec import execute_trial
from repro.verification import diff_experiment_cells, diff_specs

pytestmark = pytest.mark.skipif(
    not numpy_ok(), reason="batched backend needs numpy >= 2.0")


def _quick_specs(name):
    experiment = get_experiment(name)
    cells = experiment.cells(None, quick=True)
    return [spec for cell in cells for spec in cell.specs]


def _split_vote_specs(count, base_seed=99, n=8, t=1):
    rng = random.Random(base_seed)
    return [TrialSpec(
        protocol="reset-tolerant", adversary="split-vote", n=n, t=t,
        inputs=tuple(rng.getrandbits(1) for _ in range(n)),
        seed=rng.getrandbits(32),
        adversary_kwargs={"seed": rng.getrandbits(32)},
        max_windows=1000) for _ in range(count)]


# -- the harness itself -------------------------------------------------

@pytest.mark.parametrize("name", ["E1", "E2"])
def test_harness_passes_on_quick_grids(name):
    report = diff_experiment_cells(name, quick=True, sample=1.0)
    assert report.ok, report.summary()
    assert report.batched > 0
    assert report.replayed == report.batched  # sample=1.0 replays all


def test_harness_sampling_is_deterministic_and_partial():
    specs = _split_vote_specs(12)
    full = diff_specs(specs, sample=1.0)
    assert full.ok and full.replayed == 12
    half_a = diff_specs(specs, sample=0.5, sample_seed=3)
    half_b = diff_specs(specs, sample=0.5, sample_seed=3)
    assert half_a.ok
    assert half_a.replayed == half_b.replayed == 6


def test_harness_detects_a_mismatch():
    """A doctored batched result must surface as a DiffMismatch."""
    import dataclasses

    import repro.verification.batched_diff as bd

    specs = _split_vote_specs(4)
    real_compare = bd._compare

    def sabotage(index, spec, batched_result, oracle_result):
        doctored = dataclasses.replace(
            batched_result,
            windows_elapsed=batched_result.windows_elapsed + 1)
        return real_compare(index, spec, doctored, oracle_result)

    try:
        bd._compare = sabotage
        report = bd.diff_specs(specs, sample=1.0)
    finally:
        bd._compare = real_compare
    assert not report.ok
    assert all("windows_elapsed" in mismatch.fields
               for mismatch in report.mismatches)
    assert "MISMATCH" not in report.summary() or not report.ok
    assert "windows_elapsed" in report.mismatches[0].describe()


def test_harness_rejects_bad_sample():
    with pytest.raises(ValueError):
        diff_specs(_split_vote_specs(2), sample=0.0)


# -- worker counts ------------------------------------------------------

@pytest.mark.parametrize("workers", [0, 1, 4])
def test_backend_identity_across_worker_counts(workers):
    """Worker count never changes values, only wall time."""
    specs = _quick_specs("E1")
    batched = run_trials(specs, workers=workers, backend="batched")
    trial = run_trials(specs, workers=0, backend="trial")
    assert batched == trial


def test_experiment_rows_identical_across_backends():
    experiment = get_experiment("E2")
    rows_trial = experiment.run(quick=True, workers=0, backend="trial")
    rows_batched = experiment.run(quick=True, workers=0,
                                  backend="batched")
    assert rows_trial == rows_batched


# -- chaos --------------------------------------------------------------

def test_backend_identity_under_chaos():
    """Active chaos keeps the per-trial path, bit-identically."""
    from repro.faults import parse_chaos_spec
    from repro.runner import ExecutionPolicy, RetryPolicy
    from repro.runner.parallel import _build_runner

    chaos = parse_chaos_spec("raise=0.3,seed=7")
    specs = _quick_specs("E1")

    def run_with(backend):
        policy = ExecutionPolicy(retry=RetryPolicy(max_retries=2),
                                 chaos=chaos)
        return run_trials(specs, workers=0, policy=policy,
                          health=RunHealth(), backend=backend)

    assert run_with("batched") == run_with("trial")
    # And structurally: chaos suppresses the batched wrapper outright.
    policy = ExecutionPolicy(retry=RetryPolicy(max_retries=2), chaos=chaos)
    runner = _build_runner(None, None, policy, RunHealth(), "batched")
    assert type(runner).__name__ == "SupervisedRunner"
    calm = ExecutionPolicy(retry=RetryPolicy(max_retries=2))
    runner = _build_runner(None, None, calm, RunHealth(), "batched")
    assert type(runner).__name__ == "BatchedRunner"


# -- partition invariance (hypothesis) ----------------------------------

_PARTITION_SPECS = _split_vote_specs(10, base_seed=5)
_PARTITION_ORACLE = [execute_trial(spec) for spec in _PARTITION_SPECS]


@given(cuts=st.sets(st.integers(min_value=1, max_value=9), max_size=4))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_batch_partition_yields_identical_results(cuts):
    """Splitting a batch anywhere changes nothing observable.

    The engine batches by signature, but nothing guarantees callers hand
    it all matching specs at once (the store's resume path re-submits
    subsets).  Every partition of the spec list into contiguous
    sub-batches must reproduce the oracle exactly.
    """
    from repro.batched.engine import BatchedWindowEngine

    bounds = [0] + sorted(cuts) + [len(_PARTITION_SPECS)]
    outputs = []
    for start, stop in zip(bounds, bounds[1:]):
        part = _PARTITION_SPECS[start:stop]
        if not part:
            continue
        results, quarantined = BatchedWindowEngine(part).run()
        assert not quarantined
        outputs.extend(results)
    assert outputs == _PARTITION_ORACLE


# -- backend resolution -------------------------------------------------

def test_resolve_backend_names():
    assert resolve_backend(None) == "trial"
    assert resolve_backend("trial") == "trial"
    assert resolve_backend("batched") == "batched"  # numpy_ok gated above
    assert resolve_backend("auto") == "batched"
    with pytest.raises(ValueError):
        resolve_backend("gpu")
