"""Integration tests: protocol x adversary safety and liveness invariants.

These are the repository's executable statement of the paper's correctness
claims: against every legal strongly adaptive schedule we can construct,
the reset-tolerant algorithm never violates agreement or validity, and it
terminates; the baselines satisfy the same invariants in their own fault
models; and the adversarial slowdowns have the shape the paper describes.
"""

import random

import pytest

from repro.adversaries.benign import (BenignAdversary,
                                      RandomSchedulerAdversary,
                                      SilencingAdversary)
from repro.adversaries.crash import (CrashAtDecisionAdversary,
                                     StaticCrashAdversary)
from repro.adversaries.interpolation import LookaheadAdversary
from repro.adversaries.polarizing import PolarizingAdversary
from repro.adversaries.split_vote import (AdaptiveResettingAdversary,
                                          SplitVoteAdversary)
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.core.thresholds import max_tolerable_t
from repro.protocols.ben_or import BenOrAgreement
from repro.simulation.windows import run_execution
from repro.workloads.inputs import standard_workloads


ADVERSARY_FACTORIES = {
    "benign": lambda seed: BenignAdversary(),
    "random": lambda seed: RandomSchedulerAdversary(seed=seed,
                                                    reset_probability=0.7),
    "silencing": lambda seed: SilencingAdversary(),
    "split-vote": lambda seed: SplitVoteAdversary(seed=seed),
    "adaptive-resetting": lambda seed: AdaptiveResettingAdversary(seed=seed),
    "polarizing": lambda seed: PolarizingAdversary(seed=seed),
}


class TestResetTolerantInvariants:
    @pytest.mark.parametrize("adversary_name",
                             sorted(ADVERSARY_FACTORIES))
    @pytest.mark.parametrize("workload", ["unanimous-0", "unanimous-1",
                                          "split", "random"])
    def test_agreement_validity_termination(self, adversary_name, workload,
                                            rng_seed):
        n = 13
        t = max_tolerable_t(n)
        inputs = standard_workloads(n, seed=rng_seed)[workload]
        adversary = ADVERSARY_FACTORIES[adversary_name](rng_seed)
        result = run_execution(ResetTolerantAgreement, n=n, t=t,
                               inputs=inputs, adversary=adversary,
                               max_windows=30000, seed=rng_seed,
                               stop_when="all")
        assert result.agreement_ok, f"{adversary_name}/{workload}"
        assert result.validity_ok, f"{adversary_name}/{workload}"
        assert result.all_live_decided, f"{adversary_name}/{workload}"

    def test_unanimity_forces_the_common_value_under_every_adversary(self,
                                                                     rng_seed):
        n = 13
        t = max_tolerable_t(n)
        for name, factory in ADVERSARY_FACTORIES.items():
            for value in (0, 1):
                result = run_execution(ResetTolerantAgreement, n=n, t=t,
                                       inputs=[value] * n,
                                       adversary=factory(rng_seed),
                                       max_windows=5000, seed=rng_seed)
                assert result.decision_values == {value}, name

    def test_lookahead_adversary_respects_safety(self, rng_seed):
        n, t = 9, 1
        result = run_execution(ResetTolerantAgreement, n=n, t=t,
                               inputs=[pid % 2 for pid in range(n)],
                               adversary=LookaheadAdversary(
                                   horizon=1, samples=2, seed=rng_seed),
                               max_windows=60, seed=rng_seed,
                               stop_when="all")
        assert result.agreement_ok
        assert result.validity_ok


class TestAdversarialSlowdownShape:
    def test_split_vote_adversary_slows_decisions_down(self, rng_seed):
        """The paper's Section 3 observation, in miniature.

        Unanimous inputs decide in the first window regardless of the
        schedule; with split inputs the vote-splitting adversary makes
        decisions take substantially longer than a benign schedule does.
        """
        n = 24
        t = max_tolerable_t(n)
        inputs = [pid % 2 for pid in range(n)]
        benign_windows = []
        adversarial_windows = []
        rng = random.Random(rng_seed)
        for _ in range(3):
            benign = run_execution(ResetTolerantAgreement, n=n, t=t,
                                   inputs=inputs,
                                   adversary=BenignAdversary(),
                                   max_windows=100000,
                                   seed=rng.getrandbits(32),
                                   stop_when="first")
            adversarial = run_execution(
                ResetTolerantAgreement, n=n, t=t, inputs=inputs,
                adversary=SplitVoteAdversary(seed=rng.getrandbits(32)),
                max_windows=100000, seed=rng.getrandbits(32),
                stop_when="first")
            benign_windows.append(benign.first_decision_window
                                  or benign.windows_elapsed)
            adversarial_windows.append(adversarial.first_decision_window
                                       or adversarial.windows_elapsed)
        unanimous = run_execution(ResetTolerantAgreement, n=n, t=t,
                                  inputs=[1] * n,
                                  adversary=SplitVoteAdversary(seed=rng_seed),
                                  max_windows=10, seed=rng_seed,
                                  stop_when="first")
        assert unanimous.first_decision_window == 1
        mean_benign = sum(benign_windows) / len(benign_windows)
        mean_adversarial = sum(adversarial_windows) / len(adversarial_windows)
        assert mean_adversarial > mean_benign

    def test_resets_do_not_rescue_the_adversary_from_lopsided_coins(self,
                                                                    rng_seed):
        """Termination still occurs with the full strongly adaptive power."""
        n = 12
        t = max_tolerable_t(n)
        result = run_execution(ResetTolerantAgreement, n=n, t=t,
                               inputs=[pid % 2 for pid in range(n)],
                               adversary=AdaptiveResettingAdversary(
                                   seed=rng_seed),
                               max_windows=50000, seed=rng_seed,
                               stop_when="all")
        assert result.all_live_decided
        assert result.total_resets > 0


class TestBenOrCrashModel:
    @pytest.mark.parametrize("adversary_factory", [
        lambda: BenignAdversary(),
        lambda: StaticCrashAdversary(crash_schedule={0: (0, 1, 2, 3)}),
        lambda: CrashAtDecisionAdversary(),
        lambda: RandomSchedulerAdversary(seed=3),
    ])
    def test_ben_or_invariants_under_crash_adversaries(self,
                                                       adversary_factory,
                                                       rng_seed):
        n, t = 9, 4
        result = run_execution(BenOrAgreement, n=n, t=t,
                               inputs=[pid % 2 for pid in range(n)],
                               adversary=adversary_factory(),
                               max_windows=5000, seed=rng_seed,
                               stop_when="all")
        assert result.agreement_ok
        assert result.validity_ok
        assert result.all_live_decided

    def test_message_chain_tracks_windows_in_lockstep_schedules(self,
                                                                rng_seed):
        result = run_execution(BenOrAgreement, n=9, t=4, inputs=[1] * 9,
                               adversary=BenignAdversary(), max_windows=100,
                               seed=rng_seed, stop_when="first")
        assert result.message_chain_length is not None
        assert result.message_chain_length <= result.windows_elapsed
