"""Unit tests for the step-level asynchronous engine."""

import pytest

from repro.protocols.base import ProtocolFactory
from repro.protocols.ben_or import BenOrAgreement
from repro.simulation.engine import StepAdversary, StepEngine
from repro.simulation.errors import AdversaryBudgetError, InvalidStepError
from repro.simulation.events import Step, StepType


def make_engine(n=7, t=3, inputs=None, seed=2):
    factory = ProtocolFactory(BenOrAgreement, n=n, t=t)
    if inputs is None:
        inputs = [pid % 2 for pid in range(n)]
    return StepEngine(factory, inputs, seed=seed)


class TestStepTypes:
    def test_step_constructors(self):
        assert Step.send(3).step_type is StepType.SEND
        assert Step.reset(1).step_type is StepType.RESET
        assert Step.crash(2).step_type is StepType.CRASH

    def test_receive_step_carries_message(self):
        engine = make_engine()
        engine.apply_step(Step.send(0))
        message = engine.pending_messages()[0]
        step = Step.receive(message)
        assert step.step_type is StepType.RECEIVE
        assert step.pid == message.receiver


class TestStepApplication:
    def test_send_then_receive(self):
        engine = make_engine()
        engine.apply_step(Step.send(0))
        assert engine.network.pending_count() == engine.n
        message = engine.pending_messages()[0]
        engine.apply_step(Step.receive(message))
        assert engine.network.delivered_count == 1

    def test_receive_without_message_raises(self):
        engine = make_engine()
        with pytest.raises(InvalidStepError):
            engine.apply_step(Step(StepType.RECEIVE, pid=0))

    def test_crash_respects_budget(self):
        engine = make_engine(n=7, t=2)
        engine.apply_step(Step.crash(0))
        engine.apply_step(Step.crash(1))
        with pytest.raises(AdversaryBudgetError):
            engine.apply_step(Step.crash(2))

    def test_crash_is_idempotent(self):
        engine = make_engine(n=7, t=1)
        engine.apply_step(Step.crash(0))
        engine.apply_step(Step.crash(0))
        assert engine.total_crashes == 1

    def test_crashed_processor_cannot_send(self):
        engine = make_engine(n=7, t=1)
        engine.apply_step(Step.crash(0))
        with pytest.raises(InvalidStepError):
            engine.apply_step(Step.send(0))

    def test_delivery_to_crashed_processor_is_silently_lost(self):
        engine = make_engine(n=7, t=1)
        engine.apply_step(Step.send(1))
        target = [m for m in engine.pending_messages() if m.receiver == 0][0]
        engine.apply_step(Step.crash(0))
        engine.apply_step(Step.receive(target))  # must not raise
        assert engine.processors[0].messages_received == 0

    def test_corrupted_delivery_changes_payload(self):
        engine = make_engine()
        engine.apply_step(Step.send(0))
        message = [m for m in engine.pending_messages()
                   if m.receiver == 1][0]
        engine.apply_step(Step.receive(message,
                                       corrupted_payload=("REPORT", 1, 1)))
        # The recipient recorded the corrupted value, not the original.
        assert engine.processors[1].protocol._received[(1, "REPORT")][0] == 1

    def test_reset_budget_enforced(self):
        factory = ProtocolFactory(BenOrAgreement, n=7, t=3)
        engine = StepEngine(factory, [0] * 7, seed=1, reset_budget=1)
        engine.apply_step(Step.reset(0))
        with pytest.raises(AdversaryBudgetError):
            engine.apply_step(Step.reset(1))


class TestRun:
    def test_round_robin_adversary_reaches_decision(self):
        class FairScheduler(StepAdversary):
            def __init__(self):
                self.queue = []

            def next_step(self, engine):
                if not self.queue:
                    self.queue = [Step.send(pid)
                                  for pid in engine.live_processors()]
                    self.queue += [Step.receive(m)
                                   for m in engine.pending_messages()]
                return self.queue.pop(0)

        engine = make_engine(n=7, t=3, inputs=[1] * 7)
        result = engine.run(FairScheduler(), max_steps=100000,
                            stop_when="all")
        assert result.all_live_decided
        assert result.decision_values == {1}
        assert result.agreement_ok and result.validity_ok

    def test_run_stops_when_adversary_returns_none(self):
        class GiveUp(StepAdversary):
            def next_step(self, engine):
                return None

        engine = make_engine()
        result = engine.run(GiveUp(), max_steps=100)
        assert result.steps_elapsed == 0
        assert not result.decided

    def test_run_rejects_bad_stop_condition(self):
        class GiveUp(StepAdversary):
            def next_step(self, engine):
                return None

        engine = make_engine()
        with pytest.raises(ValueError):
            engine.run(GiveUp(), max_steps=10, stop_when="sometime")
