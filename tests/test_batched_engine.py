"""The batched engine against the per-trial oracle, shape by shape.

Every (protocol, adversary, stop rule) combination the batched backend
claims to vectorize is exercised here with a grid of seed-deterministic
specs — mixed inputs, mixed seeds, replay schedules with resets, crashes
and deliver-last perturbations — and each trial's full
:class:`~repro.simulation.trace.ExecutionResult` must equal what
:func:`~repro.runner.spec.execute_trial` produces.  This is the
bit-identity contract at its finest grain; the differential harness
(``test_batched_differential.py``) re-checks it on the real experiment
grids and through the runner stack.
"""

import random

import pytest

from repro.batched.support import (batch_signature, numpy_ok,
                                   unsupported_reason)
from repro.runner.spec import TrialSpec, execute_trial
from repro.simulation.windows import WindowSpec

pytestmark = pytest.mark.skipif(
    not numpy_ok(), reason="batched backend needs numpy >= 2.0")


def _specs(protocol, adversary, n, t, count, base_seed, stop_when="all",
           adversary_kwargs_fn=None, max_windows=2000):
    rng = random.Random(base_seed)
    specs = []
    for _ in range(count):
        inputs = tuple(rng.getrandbits(1) for _ in range(n))
        kwargs = adversary_kwargs_fn(rng) if adversary_kwargs_fn else {}
        specs.append(TrialSpec(
            protocol=protocol, adversary=adversary, n=n, t=t,
            inputs=inputs, seed=rng.getrandbits(32),
            adversary_kwargs=kwargs, stop_when=stop_when,
            max_windows=max_windows))
    return specs


def _random_schedule(rng, n, t, length, with_resets=True,
                     with_crashes=False):
    crash_order = list(range(n))
    rng.shuffle(crash_order)
    crash_pool = crash_order[:t]
    used_crashes = set()
    schedule = []
    for _ in range(length):
        senders_for = []
        for _receiver in range(n):
            hidden = rng.sample(range(n), rng.randint(0, t))
            senders_for.append(frozenset(range(n)) - frozenset(hidden))
        resets = frozenset(rng.sample(range(n), rng.randint(0, t))) \
            if with_resets and rng.random() < 0.4 else frozenset()
        crashes = frozenset()
        if with_crashes and rng.random() < 0.2 and len(used_crashes) < t:
            pick = rng.choice(crash_pool)
            used_crashes.add(pick)
            crashes = frozenset({pick})
        deliver_last = frozenset(rng.sample(range(n),
                                            rng.randint(0, n // 2))) \
            if rng.random() < 0.5 else frozenset()
        schedule.append(WindowSpec(
            senders_for=tuple(senders_for), resets=resets,
            crashes=crashes, deliver_last=deliver_last).to_jsonable())
    return schedule


def _replay_kwargs(n, t, with_resets, with_crashes, pad):
    def build(rng):
        return {"schedule": _random_schedule(
            rng, n, t, rng.randint(1, 12), with_resets, with_crashes),
            "pad": pad}
    return build


def _seeded(rng):
    return {"seed": rng.getrandbits(32)}


SHAPES = {
    "rt-benign-all": lambda: _specs(
        "reset-tolerant", "benign", 8, 1, 12, 1),
    "rt-benign-first": lambda: _specs(
        "reset-tolerant", "benign", 8, 1, 12, 2, stop_when="first"),
    "benor-benign-all": lambda: _specs(
        "ben-or", "benign", 8, 1, 12, 3),
    "benor-benign-first": lambda: _specs(
        "ben-or", "benign", 7, 2, 12, 4, stop_when="first"),
    "rt-silencing": lambda: _specs(
        "reset-tolerant", "silencing", 8, 1, 12, 5),
    "benor-silencing": lambda: _specs(
        "ben-or", "silencing", 9, 2, 12, 6,
        adversary_kwargs_fn=lambda r: {"silenced": (0, 1)}),
    "rt-split-vote": lambda: _specs(
        "reset-tolerant", "split-vote", 8, 1, 16, 7,
        adversary_kwargs_fn=_seeded),
    "benor-split-vote": lambda: _specs(
        "ben-or", "split-vote", 8, 1, 16, 8, stop_when="first",
        adversary_kwargs_fn=_seeded),
    "rt-adaptive": lambda: _specs(
        "reset-tolerant", "adaptive-resetting", 8, 1, 16, 9,
        stop_when="first",
        adversary_kwargs_fn=lambda r: {"seed": r.getrandbits(32),
                                       "reset_fraction": 1.0}),
    "rt-adaptive-frac": lambda: _specs(
        "reset-tolerant", "adaptive-resetting", 13, 2, 10, 10,
        stop_when="first",
        adversary_kwargs_fn=lambda r: {"seed": r.getrandbits(32),
                                       "reset_fraction": 0.5}),
    "rt-replay-benign-pad": lambda: _specs(
        "reset-tolerant", "replay-schedule", 8, 1, 12, 11,
        adversary_kwargs_fn=_replay_kwargs(8, 1, True, True, "benign")),
    "rt-replay-repeat-pad": lambda: _specs(
        "reset-tolerant", "replay-schedule", 8, 1, 12, 12,
        stop_when="first",
        adversary_kwargs_fn=_replay_kwargs(8, 1, True, False, "repeat")),
    "benor-replay-benign-pad": lambda: _specs(
        "ben-or", "replay-schedule", 8, 1, 12, 13,
        adversary_kwargs_fn=_replay_kwargs(8, 1, False, True, "benign")),
}


@pytest.mark.parametrize("shape", sorted(SHAPES), ids=sorted(SHAPES))
def test_engine_is_bit_identical_to_oracle(shape):
    from repro.batched.engine import BatchedWindowEngine

    specs = SHAPES[shape]()
    for spec in specs:
        assert unsupported_reason(spec) is None
    assert len({batch_signature(spec) for spec in specs}) == 1
    results, quarantined = BatchedWindowEngine(specs).run()
    for index, spec in enumerate(specs):
        if index in quarantined:
            continue  # quarantined trials rerun on the oracle upstream
        assert results[index] == execute_trial(spec), f"{shape}[{index}]"


def test_quarantined_indices_have_no_result():
    """A quarantined trial yields None, never a wrong result."""
    from repro.batched.engine import BatchedWindowEngine

    specs = SHAPES["rt-adaptive"]()
    results, quarantined = BatchedWindowEngine(specs).run()
    for index in quarantined:
        assert results[index] is None


def test_support_gate_declines_what_the_oracle_rejects():
    """Specs the oracle raises on must be declined, not emulated."""
    base = dict(protocol="reset-tolerant", adversary="split-vote",
                n=8, t=1, inputs=(0, 1) * 4, seed=7,
                adversary_kwargs={"seed": 3})
    assert unsupported_reason(TrialSpec(**base)) is None
    unseeded = dict(base, adversary_kwargs={})
    assert "unseeded" in unsupported_reason(TrialSpec(**unseeded))
    no_seed = dict(base, seed=None)
    assert "unseeded trial" in unsupported_reason(TrialSpec(**no_seed))
    traced = dict(base, record_trace=True)
    assert "trace" in unsupported_reason(TrialSpec(**traced))
    stepped = dict(base, engine="step")
    assert "step engine" in unsupported_reason(TrialSpec(**stepped))
    big = dict(base, n=80, t=1, inputs=(0, 1) * 40)
    assert "bitmask" in unsupported_reason(TrialSpec(**big))
    byzantine = dict(base, adversary="random-scheduler",
                     adversary_kwargs={})
    assert "not vectorized" in unsupported_reason(TrialSpec(**byzantine))


def test_ben_or_resets_are_declined():
    spec = TrialSpec(
        protocol="ben-or", adversary="adaptive-resetting", n=8, t=1,
        inputs=(0, 1) * 4, seed=7,
        adversary_kwargs={"seed": 3, "reset_fraction": 1.0})
    assert "resets restart ben-or" in unsupported_reason(spec)


def test_runner_falls_back_and_interleaves_in_order():
    """Mixed supported/unsupported specs come back in submission order."""
    from repro.batched.runner import BatchedRunner
    from repro.runner.parallel import ParallelRunner

    supported = _specs("reset-tolerant", "split-vote", 8, 1, 6, 20,
                       adversary_kwargs_fn=_seeded)
    unsupported = _specs("reset-tolerant", "split-vote", 8, 1, 3, 21)
    mixed = [spec for pair in zip(supported, unsupported + supported[:3])
             for spec in pair]
    runner = BatchedRunner(ParallelRunner(workers=0))
    results = runner.run(mixed)
    assert [r for r in results] == [execute_trial(s) for s in mixed]
    assert runner.stats["batched"] > 0
    assert runner.stats["fallback"] >= len(unsupported)
    assert runner.fallback_reasons[
        "unseeded adversary (shared fallback stream)"] == len(unsupported)


def test_runner_singleton_group_falls_back():
    from repro.batched.runner import MIN_BATCH, BatchedRunner
    from repro.runner.parallel import ParallelRunner

    specs = _specs("reset-tolerant", "split-vote", 8, 1, 1, 22,
                   adversary_kwargs_fn=_seeded)
    runner = BatchedRunner(ParallelRunner(workers=0))
    results = runner.run(specs)
    assert results == [execute_trial(specs[0])]
    assert runner.stats["batched"] == 0
    assert runner.fallback_reasons[f"batch smaller than {MIN_BATCH}"] == 1
