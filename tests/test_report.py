"""Report tests: percentiles, aggregation, recomputed finalizer rows."""

import json

import pytest

from repro.experiments import get_experiment
from repro.results import RunStore, load_run
from repro.results.report import (ReportError, build_report, percentile,
                                  render_report_text)

E2_PARAMS = {"ns": (12, 16), "trials": 1, "max_windows": 200000,
             "use_resets": True, "seed": 9}


def _run(tmp_path, name, params):
    experiment = get_experiment(name)
    resolved = experiment.resolve_params(params)
    store = RunStore.open(str(tmp_path), name, resolved, workers=0)
    experiment.run(params=resolved, store=store)
    store.finish(wall_time=0.1)
    return store


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        values = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert percentile(values, 0) == 15.0
        assert percentile(values, 50) == 35.0
        assert percentile(values, 100) == 50.0
        assert percentile(values, 40) == pytest.approx(29.0)
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([7.0], 90) == 7.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101)


class TestBuildReport:
    def test_aggregates_across_seeds(self, tmp_path):
        for seed in (1, 2):
            _run(tmp_path, "E8",
                 {"cs": (0.1,), "ns": (50,), "seed": seed})
        report = build_report(str(tmp_path), "E8")
        assert report.experiment == "E8"
        assert len(report.runs) == 2
        assert all(run["completed"] and run["rows"] == 4
                   for run in report.runs)
        by_cell = {(entry["cell"], entry["metric"]): entry
                   for entry in report.cells}
        curve_cell = json.dumps(["E8", 0.1, 50])
        entry = by_cell[(curve_cell, "success_probability")]
        assert entry["count"] == 2
        assert entry["min"] <= entry["p50"] <= entry["max"]
        # With two samples, p50 is their midpoint (linear interpolation).
        assert entry["p50"] == pytest.approx(
            (entry["min"] + entry["max"]) / 2)

    def test_finalizer_rows_match_the_stored_run(self, tmp_path):
        store = _run(tmp_path, "E2", E2_PARAMS)
        report = build_report(str(tmp_path), "E2")
        experiment = get_experiment("E2")
        manifest, rows = load_run(store.path)
        assert report.finalizers == \
            experiment.finalize(rows, manifest["params"])
        assert report.finalizers  # E2 stores none, recomputes the fit

    def test_custom_percentiles(self, tmp_path):
        _run(tmp_path, "E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        report = build_report(str(tmp_path), "E8",
                              percentiles=(25.0, 75.0))
        assert report.percentiles == (25.0, 75.0)
        assert {"p25", "p75"} <= set(report.cells[0])
        assert "p50" not in report.cells[0]

    def test_no_runs_is_a_report_error(self, tmp_path):
        with pytest.raises(ReportError, match="no stored runs"):
            build_report(str(tmp_path), "E8")

    def test_bad_percentile_is_a_report_error(self, tmp_path):
        _run(tmp_path, "E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        with pytest.raises(ReportError, match="outside"):
            build_report(str(tmp_path), "E8", percentiles=(150.0,))

    def test_unregistered_experiment_reports_without_finalizers(
            self, tmp_path):
        store = _run(tmp_path, "E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        manifest = store.manifest
        manifest["experiment"] = "campaign-x"
        target = tmp_path / "campaign-x" / "deadbeef0000"
        target.mkdir(parents=True)
        (target / "manifest.json").write_text(
            json.dumps(manifest, allow_nan=False))
        (target / "rows.jsonl").write_text(
            open(store.path + "/rows.jsonl").read())
        report = build_report(str(tmp_path), "campaign-x")
        assert report.experiment == "campaign-x"
        assert report.finalizers == []
        assert report.cells


class TestRendering:
    def test_text_rendering_has_all_sections(self, tmp_path):
        _run(tmp_path, "E2", E2_PARAMS)
        report = build_report(str(tmp_path), "E2")
        text = render_report_text(report)
        assert "== report: E2" in text
        assert "-- runs --" in text
        assert "-- per-cell percentiles --" in text
        assert "recomputed finalizer rows" in text

    def test_json_rendering_round_trips(self, tmp_path):
        _run(tmp_path, "E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        report = build_report(str(tmp_path), "E8")
        payload = json.loads(report.as_json())
        assert payload["experiment"] == "E8"
        assert payload["percentiles"] == [50.0, 90.0, 99.0]
        assert len(payload["runs"]) == 1
        assert payload["cells"]


class TestReportCLI:
    def test_report_text_and_json(self, tmp_path, capsys):
        from repro.cli import main

        _run(tmp_path, "E8", {"cs": (0.1,), "ns": (50,), "seed": 1})
        assert main(["report", "E8", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "== report: E8" in out
        assert main(["report", "E8", "--out", str(tmp_path),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "E8"

    def test_report_without_runs_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "E8", "--out", str(tmp_path)]) == 1
        assert "no stored runs" in capsys.readouterr().err

    def test_report_bad_percentiles_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "E8", "--out", str(tmp_path),
                     "--percentiles", "fifty"]) == 2
        assert "percentiles" in capsys.readouterr().err
