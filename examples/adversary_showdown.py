#!/usr/bin/env python3
"""Adversary showdown: every protocol against every adversary it tolerates.

This example exercises the whole protocol zoo through the registries —
protocols come from :mod:`repro.protocols.registry` (which also supplies
each protocol's resilience bound) and adversaries are built by name through
:mod:`repro.adversaries.registry`:

* the paper's reset-tolerant algorithm against the strongly adaptive
  adversaries (benign, silencing, split-vote, adaptive-resetting);
* Ben-Or against crash adversaries (crash-at-start, crash-at-decision);
* Bracha against Byzantine strategies (silent, value-flipping,
  equivocation) on the step-level engine;
* the Kapron-style committee-election protocol against non-adaptive and
  adaptive corruption — the contrast motivating the paper's lower bound.

For each cell it reports whether agreement, validity and termination held,
and how long the execution took in the relevant running-time measure.

Run with::

    python examples/adversary_showdown.py
"""

from __future__ import annotations

import random

from repro import ProtocolFactory, StepEngine, get_protocol, run_execution
from repro.adversaries.registry import build_adversary
from repro.analysis.statistics import format_table
from repro.protocols.committee import (CommitteeElectionProtocol,
                                       failure_rate)
from repro.workloads import split


def reset_tolerant_rows(n: int, seed: int) -> list:
    info = get_protocol("reset-tolerant")
    t = info.max_faults(n)
    adversaries = {
        "benign": build_adversary("benign"),
        "silencing": build_adversary("silencing"),
        "split-vote": build_adversary("split-vote", seed=seed),
        "adaptive-resetting": build_adversary("adaptive-resetting",
                                              seed=seed),
    }
    rows = []
    for name, adversary in adversaries.items():
        result = run_execution(info.protocol_cls, n=n, t=t,
                               inputs=split(n), adversary=adversary,
                               max_windows=100000, seed=seed)
        rows.append({
            "protocol": info.name,
            "fault model": "strongly adaptive (resets)",
            "adversary": name,
            "n": n, "t": t,
            "agreement": result.agreement_ok,
            "validity": result.validity_ok,
            "terminated": result.all_live_decided,
            "running time": f"{result.windows_elapsed} windows",
        })
    return rows


def ben_or_rows(n: int, seed: int) -> list:
    info = get_protocol("ben-or")
    t = info.max_faults(n)
    adversaries = {
        "crash-at-start": build_adversary(
            "static-crash", crash_schedule={0: tuple(range(t))}),
        "crash-at-decision": build_adversary("crash-at-decision"),
        "benign": build_adversary("benign"),
    }
    rows = []
    for name, adversary in adversaries.items():
        result = run_execution(info.protocol_cls, n=n, t=t, inputs=split(n),
                               adversary=adversary, max_windows=20000,
                               seed=seed)
        rows.append({
            "protocol": info.name,
            "fault model": info.fault_model,
            "adversary": name,
            "n": n, "t": t,
            "agreement": result.agreement_ok,
            "validity": result.validity_ok,
            "terminated": result.all_live_decided,
            "running time": f"{result.windows_elapsed} windows",
        })
    return rows


def bracha_rows(n: int, seed: int) -> list:
    info = get_protocol("bracha")
    t = info.max_faults(n)
    rows = []
    for strategy_name in ("silent", "flip", "equivocate"):
        factory = ProtocolFactory(info.protocol_cls, n=n, t=t)
        engine = StepEngine(factory, split(n), seed=seed)
        adversary = build_adversary("byzantine",
                                    corrupted=tuple(range(t)),
                                    strategy=strategy_name, seed=seed)
        result = engine.run(adversary, max_steps=400000, stop_when="all")
        honest = [pid for pid in range(n) if pid >= t]
        honest_values = {result.outputs[pid] for pid in honest}
        rows.append({
            "protocol": info.name,
            "fault model": info.fault_model,
            "adversary": strategy_name,
            "n": n, "t": t,
            "agreement": len({v for v in honest_values
                              if v is not None}) <= 1,
            "validity": all(v in (0, 1, None) for v in honest_values),
            "terminated": None not in honest_values,
            "running time": f"{result.steps_elapsed} steps",
        })
    return rows


def committee_rows(n: int, seed: int) -> list:
    t = n // 5
    protocol = CommitteeElectionProtocol(n=n, t=t)
    rows = []
    for adaptive in (False, True):
        rate = failure_rate(protocol, split(n), trials=40, adaptive=adaptive,
                            seed=seed)
        sample = protocol.run(split(n), adaptive=adaptive, seed=seed)
        rows.append({
            "protocol": "committee-election",
            "fault model": ("adaptive Byzantine" if adaptive
                            else "non-adaptive Byzantine"),
            "adversary": "corrupt final committee" if adaptive
                         else "random corruption",
            "n": n, "t": t,
            "agreement": rate < 0.5,
            "validity": rate < 0.5,
            "terminated": True,
            "running time": f"{sample.communication_rounds} rounds "
                            f"(failure rate {rate:.2f})",
        })
    return rows


def main() -> None:
    seed = random.Random(2013).getrandbits(32)
    rows = []
    rows += reset_tolerant_rows(n=18, seed=seed)
    rows += ben_or_rows(n=9, seed=seed)
    rows += bracha_rows(n=7, seed=seed)
    rows += committee_rows(n=64, seed=seed)
    print(format_table(rows, columns=[
        "protocol", "fault model", "adversary", "n", "t", "agreement",
        "validity", "terminated", "running time"]))
    print("\nThe committee-election rows show the trade-off the paper "
          "studies: they are fast, but an adaptive adversary that corrupts "
          "the final committee defeats them, while the adaptive-safe "
          "protocols above pay for their robustness with exponential "
          "running time (Theorems 5 and 17 prove they must).")


if __name__ == "__main__":
    main()
