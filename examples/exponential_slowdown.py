#!/usr/bin/env python3
"""Reproduce the exponential-slowdown claim (experiment E2) end to end.

Looks experiment E2 up in the registry (``repro.experiments``), sweeps the
system size ``n`` at the Theorem 4 fault bound ``t = ⌊(n-1)/6⌋``, runs the
reset-tolerant algorithm on split inputs against the strongly adaptive
adversary, and compares:

* the measured mean number of acceptable windows until the first decision,
* the analytic prediction from the binomial-tail model of
  :func:`repro.core.analysis.split_vote_analysis`,
* the Theorem 5 lower-bound curve ``C * exp(alpha * n)`` for the same fault
  fraction, and
* the (constant) window count for unanimous inputs.

The absolute numbers depend on the simulator, but the *shape* — exponential
growth in ``n`` for split inputs versus a single window for unanimous
inputs — is the paper's claim, and the exponential fit at the end makes it
quantitative.

The same sweep is available (with persistence and resume) as
``python -m repro run E2 [--quick]``.

Run with::

    python examples/exponential_slowdown.py [--quick]
"""

from __future__ import annotations

import argparse

from repro.analysis.statistics import format_table
from repro.core.talagrand import lower_bound_constants
from repro.experiments import get_experiment


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep for a fast demonstration")
    parser.add_argument("--trials", type=int, default=None,
                        help="trials per system size")
    args = parser.parse_args()

    if args.quick:
        ns = (12, 16, 20)
        trials = args.trials or 3
    else:
        ns = (12, 16, 20, 24)
        trials = args.trials or 5

    print("E2: windows to first decision, split inputs, strongly adaptive "
          "adversary")
    experiment = get_experiment("E2")
    rows = experiment.run(params={"ns": ns, "trials": trials,
                                  "use_resets": True, "seed": 42})
    data = [row for row in rows if row["experiment"] == "E2"]
    fit = [row for row in rows if row["experiment"] == "E2-fit"]

    constants = lower_bound_constants(1.0 / 6.0)
    for row in data:
        row["theorem5_lower_bound"] = constants.predicted_windows(row["n"])
    print(format_table(data, columns=[
        "n", "t", "mean_windows", "median_windows", "max_windows",
        "analytic_expected_windows", "theorem5_lower_bound",
        "unanimous_mean_windows"]))

    if fit:
        growth = fit[0]["fit_growth_rate_per_processor"]
        print(f"\nexponential fit: windows ~ exp({growth:.3f} * n), "
              f"R^2 = {fit[0]['fit_r_squared']:.3f}")
        print(f"Theorem 5 exponent for c = 1/6: alpha = "
              f"{constants.alpha:.4f} (the measured growth rate should be "
              f"at least this large)")


if __name__ == "__main__":
    main()
