#!/usr/bin/env python3
"""Guided adversary search: hunt a worst-case schedule, then replay it.

This example walks the whole `repro.search` loop in miniature:

1. run a small hill-climb campaign that optimizes admissible window
   schedules toward the ``undecided-rounds`` objective (the paper's
   running-time measure) on the reset-tolerant protocol;
2. compare the searched schedule against an equal budget of blind
   ``schedule-fuzzer`` samples on the same fixed execution context —
   the guided search wins because replayed executions are
   deterministic, so it can keep the known-good undecided prefix of its
   best candidate and re-roll only the doomed suffix;
3. replay the best-found schedule through the ``replay-schedule``
   registry adversary and re-check the trace with the independent
   invariant checker.

Run with::

    python examples/adversary_search_demo.py
"""

from __future__ import annotations

from repro.runner import (TrialSpec, derive_seed, execute_trial,
                          iter_trials, undecided_windows)
from repro.search import (campaign_setup, resolve_search_params,
                          run_search_campaign)
from repro.verification import InvariantChecker

BUDGET_GENERATIONS = 10
BUDGET_POPULATION = 6
HORIZON = 600


def main() -> None:
    params = resolve_search_params(
        protocol="reset-tolerant", strategy="hill-climb",
        objective="undecided-rounds", generations=BUDGET_GENERATIONS,
        population=BUDGET_POPULATION, windows=HORIZON, seed=1,
        verify=False)
    setup = campaign_setup(params)
    budget = BUDGET_GENERATIONS * BUDGET_POPULATION

    print(f"Searching {budget} candidate schedules "
          f"(n={params['n']}, t={params['t']}, horizon {HORIZON} windows)")
    report = run_search_campaign(params, workers=0)
    for summary in report.generation_summary():
        print(f"  generation {summary['generation']}: "
              f"best {summary['best_score']:.0f}, "
              f"mean {summary['mean_score']:.1f}")
    print(f"searched best: {report.best_score:.0f} undecided windows")

    fuzz_specs = [TrialSpec(
        protocol=params["protocol"], adversary="schedule-fuzzer",
        n=params["n"], t=params["t"], inputs=setup.inputs,
        adversary_kwargs={"seed": derive_seed(1, 500 + i) & 0xFFFFFFFF,
                          "reset_probability": 0.35,
                          "deliver_last_probability": 0.3},
        seed=setup.seed, max_windows=HORIZON, stop_when="first")
        for i in range(budget)]
    fuzz_best = max(undecided_windows(result)
                    for result in iter_trials(fuzz_specs))
    print(f"blind fuzzing best of {budget} samples: {fuzz_best:.0f}")

    assert report.best_schedule is not None
    replay = execute_trial(TrialSpec(
        protocol=params["protocol"], adversary="replay-schedule",
        n=params["n"], t=params["t"], inputs=setup.inputs,
        seed=setup.seed,
        adversary_kwargs={"schedule": [spec.to_jsonable()
                                       for spec in report.best_schedule]},
        max_windows=HORIZON, stop_when="first", record_trace=True))
    verdict = InvariantChecker().check_result(replay)
    print(f"replay of the best schedule: "
          f"{undecided_windows(replay):.0f} undecided windows, "
          f"invariants {'OK' if verdict.ok else 'VIOLATED'}")


if __name__ == "__main__":
    main()
