#!/usr/bin/env python3
"""Walk through the Theorem 5 lower-bound machinery on a small system.

The exponential lower bound cannot be "run" directly — it quantifies over
all algorithms — but each ingredient of its proof is a concrete,
measurable statement about the reset-tolerant algorithm at small ``n``:

1. **Lemma 11** — configurations deciding 0 and configurations deciding 1
   are more than ``t`` apart in Hamming distance.  We sample reachable
   decision configurations and measure the separation.
2. **Lemma 9 / Lemma 13 (Talagrand)** — a product distribution cannot put
   more than ``tau = exp(-t^2/8n)`` weight on each of two ``t``-separated
   sets.  We verify the inequality exactly on product spaces.
3. **Lemma 14** — interpolating between a window that avoids a 0-decision
   and one that avoids a 1-decision yields a window avoiding both.  We sweep
   the hybrids and report the best interpolation point.
4. **Theorem 5's input interpolation** — walking from all-0 inputs to all-1
   inputs crosses an assignment from which the adversary can block both
   decisions.  We locate it empirically.
5. **The constants** — ``alpha = c^2/9`` and ``C`` from Equation (3), the
   predicted window count ``E = C e^{alpha n}`` and the adversary's success
   probability ``>= 1/2``.

Run with::

    python examples/lower_bound_demo.py
"""

from __future__ import annotations

from repro import ResetTolerantAgreement, lower_bound_constants, max_tolerable_t
from repro.analysis.product_measure import (ProductDistribution,
                                            verify_talagrand)
from repro.core.lower_bound import lower_bound_report
from repro.core.talagrand import separation_threshold


def main() -> None:
    n = 12
    t = max_tolerable_t(n)
    print(f"Lower-bound machinery on n = {n}, t = {t}\n")

    report = lower_bound_report(ResetTolerantAgreement, n=n, t=t,
                                separation_trials=10, samples=6, seed=2013)

    print("1. Lemma 11 — Hamming separation of the decision sets")
    print(f"   sampled {report.separation.zero_samples} configurations "
          f"deciding 0 and {report.separation.one_samples} deciding 1")
    print(f"   minimum Hamming distance observed: "
          f"{report.separation.min_distance} "
          f"(Lemma 11 requires > t = {t}) -> "
          f"{'OK' if report.separation.satisfied else 'VIOLATED'}\n")

    print("2. Lemma 9 / Lemma 13 — Talagrand's inequality")
    print(f"   two-set threshold tau = exp(-t^2/8n) = "
          f"{separation_threshold(n, t):.4f}")
    cube = ProductDistribution.uniform_bits(10)
    points = [point for point, _ in cube.enumerate_support()
              if sum(point) <= 2]
    check = verify_talagrand(cube, points, radius=3, exact=True)
    print(f"   exact check on the 10-coin cube, A = (at most 2 ones), d=3:")
    print(f"   P[A](1 - P[B(A,d)]) = {check.product:.5f} <= "
          f"exp(-d^2/4n) = {check.bound:.5f} -> "
          f"{'OK' if check.satisfied else 'VIOLATED'}\n")

    print("3. Lemma 14 — hybrid windows avoid both decision sets")
    print(f"   best interpolation index j* = {report.hybrid_best.j} with "
          f"worst decision probability {report.hybrid_best.worst:.3f} "
          f"(endpoint windows: {report.endpoint_worst:.3f})\n")

    print("4. Theorem 5 — input interpolation")
    ones = sum(report.balanced_inputs.inputs)
    print(f"   balanced input assignment found: {ones} ones / "
          f"{n - ones} zeros")
    print(f"   quick-decision probabilities from it: "
          f"P[decide 0] = {report.balanced_inputs.zero_probability:.3f}, "
          f"P[decide 1] = {report.balanced_inputs.one_probability:.3f}\n")

    print("5. Theorem 5 constants")
    for c in (0.05, 0.1, 1.0 / 6.0):
        constants = lower_bound_constants(c)
        print(f"   c = {c:.3f}: alpha = {constants.alpha:.5f}, "
              f"C = {constants.big_c:.3e}, "
              f"E(n=200) = {constants.predicted_windows(200):.3e}, "
              f"success probability >= "
              f"{constants.success_probability(200):.3f}")


if __name__ == "__main__":
    main()
