#!/usr/bin/env python3
"""Quickstart: run the paper's reset-tolerant agreement algorithm.

This example walks through the public API at its simplest:

1. pick a system size ``n`` and the largest fault bound ``t`` admitted by
   Theorem 4 (``t < n/6``);
2. choose the input bits;
3. run one execution against a friendly scheduler and against the strongly
   adaptive (vote-splitting + resetting) adversary;
4. inspect the result: decision values, agreement/validity, number of
   acceptable windows, resets and coin flips.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (AdaptiveResettingAdversary, BenignAdversary,
                   ResetTolerantAgreement, default_thresholds,
                   max_tolerable_t, run_execution)
from repro.workloads import split, unanimous


def describe(title: str, result) -> None:
    """Print the fields of an ExecutionResult that the paper talks about."""
    print(f"\n--- {title} ---")
    print(f"inputs            : {list(result.inputs)}")
    print(f"outputs           : {list(result.outputs)}")
    print(f"decision values   : {sorted(result.decision_values)}")
    print(f"agreement ok      : {result.agreement_ok}")
    print(f"validity ok       : {result.validity_ok}")
    print(f"windows elapsed   : {result.windows_elapsed}")
    print(f"first decision at : window {result.first_decision_window}")
    print(f"resets applied    : {result.total_resets}")
    print(f"coin flips        : {result.total_coin_flips}")
    print(f"messages sent     : {result.messages_sent}")


def main() -> None:
    n = 24
    t = max_tolerable_t(n)
    thresholds = default_thresholds(n, t)
    print("Reset-tolerant agreement (Lewko & Lewko, Section 3)")
    print(f"n = {n}, t = {t}, thresholds: {thresholds.describe()}")

    # Unanimous inputs decide in the very first acceptable window, no matter
    # what the adversary does (validity forces the outcome).
    result = run_execution(ResetTolerantAgreement, n=n, t=t,
                           inputs=unanimous(n, 1),
                           adversary=AdaptiveResettingAdversary(seed=7),
                           max_windows=100, seed=1)
    describe("unanimous inputs vs strongly adaptive adversary", result)

    # Split inputs under a benign scheduler still decide quickly.
    result = run_execution(ResetTolerantAgreement, n=n, t=t,
                           inputs=split(n), adversary=BenignAdversary(),
                           max_windows=100000, seed=2)
    describe("split inputs vs benign scheduler", result)

    # Split inputs under the strongly adaptive adversary: the adversary
    # shows every processor a near-even vote split and resets the most
    # lopsided processors, forcing fresh coin flips window after window.
    result = run_execution(ResetTolerantAgreement, n=n, t=t,
                           inputs=split(n),
                           adversary=AdaptiveResettingAdversary(seed=7),
                           max_windows=200000, seed=3)
    describe("split inputs vs strongly adaptive adversary", result)

    print("\nNote how the adversarial execution needs far more acceptable "
          "windows than the benign one — Section 4 of the paper proves this "
          "slowdown is unavoidable for any algorithm with measure-one "
          "correctness and termination.")


if __name__ == "__main__":
    main()
