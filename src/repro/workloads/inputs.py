"""Input-bit assignments (workloads) used across experiments.

The paper's running-time behaviour depends strongly on the input setting:
unanimous inputs decide immediately (validity forces the outcome), while an
even split lets the adversary stall the threshold-voting algorithms for
exponentially many windows.  The adversarial assignment of Theorem 5 is
found by interpolating between all-0 and all-1; workloads here provide all
of these plus random assignments for correctness sweeps.
"""

from __future__ import annotations

import random
from typing import List, Optional


def unanimous(n: int, value: int) -> List[int]:
    """All processors share the same input bit."""
    if value not in (0, 1):
        raise ValueError("input bits must be 0 or 1")
    return [value] * n


def split(n: int) -> List[int]:
    """An (almost) even split: the first half 1, the rest 0.

    This is the input setting Section 3 uses to exhibit the exponential
    running time of the threshold-voting algorithm.
    """
    ones = n // 2
    return [1] * ones + [0] * (n - ones)


def alternating(n: int) -> List[int]:
    """Inputs alternate 0, 1, 0, 1, ... (an even split interleaved)."""
    return [pid % 2 for pid in range(n)]


def random_inputs(n: int, seed: Optional[int] = None,
                  probability_one: float = 0.5) -> List[int]:
    """Independent random inputs with the given bias."""
    if not 0.0 <= probability_one <= 1.0:
        raise ValueError("probability_one must lie in [0, 1]")
    rng = random.Random(seed)
    return [1 if rng.random() < probability_one else 0 for _ in range(n)]


def ones_prefix(n: int, ones: int) -> List[int]:
    """The interpolation family of Theorem 5: ``ones`` ones then zeros."""
    if not 0 <= ones <= n:
        raise ValueError("ones must lie in [0, n]")
    return [1] * ones + [0] * (n - ones)


def standard_workloads(n: int, seed: Optional[int] = None) -> dict:
    """The named workloads used by the correctness sweeps (experiment E1)."""
    return {
        "unanimous-0": unanimous(n, 0),
        "unanimous-1": unanimous(n, 1),
        "split": split(n),
        "alternating": alternating(n),
        "random": random_inputs(n, seed=seed),
    }


__all__ = [
    "unanimous",
    "split",
    "alternating",
    "random_inputs",
    "ones_prefix",
    "standard_workloads",
]
