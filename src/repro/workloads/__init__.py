"""Input-bit workloads used by the experiments."""

from repro.workloads.inputs import (alternating, ones_prefix, random_inputs,
                                    split, standard_workloads, unanimous)

__all__ = [
    "alternating",
    "ones_prefix",
    "random_inputs",
    "split",
    "standard_workloads",
    "unanimous",
]
