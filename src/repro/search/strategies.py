"""Search strategies: hill climbing, annealing, and a population loop.

All strategies sit behind one generational interface so the campaign
driver (:mod:`repro.search.campaign`) can treat them uniformly:

1. :meth:`SearchStrategy.propose` returns the next generation of candidate
   schedules — a pure function of the strategy's seeded stream and the
   scores observed so far;
2. the campaign evaluates the whole generation through
   :mod:`repro.runner` (order-preserving fan-out, so worker count never
   changes values);
3. :meth:`SearchStrategy.observe` feeds the scores and failure frontiers
   back, updating the strategy's state.

Because every random draw comes from a stream seeded by the campaign seed
and happens at a fixed point of the propose/observe cycle, a campaign is
bit-identical across worker counts and across kill/resume: replaying the
cycle with cached scores reproduces the exact proposal sequence.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.runner import derive_seed
from repro.search.mutations import Schedule, WindowSampler, mutate, splice

_STRATEGY_SALT = 0x5EA2C4


class SearchStrategy:
    """Base class: seeded stream, best-candidate tracking, the interface.

    Args:
        sampler: the window-sampling distribution (and the (n, t) system).
        horizon: schedule length in windows.
        population: candidates per generation.
        seed: campaign master seed (the strategy derives its own stream).
        reach: how far before the failure frontier mutations are drawn.
    """

    name: str = ""

    def __init__(self, sampler: WindowSampler, horizon: int,
                 population: int, seed: int, reach: int = 8) -> None:
        if population <= 0:
            raise ValueError(f"population must be positive, "
                             f"got {population}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.sampler = sampler
        self.horizon = horizon
        self.population = population
        self.reach = reach
        self.rng = random.Random(derive_seed(seed, _STRATEGY_SALT))
        self.best_score: float = -math.inf
        self.best_schedule: Optional[Schedule] = None
        self.best_generation: Optional[int] = None

    # -- the campaign-facing interface --------------------------------
    def propose(self, generation: int) -> List[Schedule]:
        """The next generation of candidate schedules."""
        raise NotImplementedError

    def observe(self, generation: int, genomes: Sequence[Schedule],
                scores: Sequence[float],
                frontiers: Sequence[int]) -> None:
        """Ingest the generation's evaluations (aligned with propose)."""
        self._track_best(generation, genomes, scores)
        self._update(generation, genomes, scores, frontiers)

    # -- subclass hooks ------------------------------------------------
    def _update(self, generation: int, genomes: Sequence[Schedule],
                scores: Sequence[float],
                frontiers: Sequence[int]) -> None:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------
    def _track_best(self, generation: int, genomes: Sequence[Schedule],
                    scores: Sequence[float]) -> None:
        for genome, score in zip(genomes, scores):
            if score > self.best_score:
                self.best_score = score
                self.best_schedule = list(genome)
                self.best_generation = generation

    def _initial_generation(self) -> List[Schedule]:
        return [self.sampler.schedule(self.horizon, self.rng)
                for _ in range(self.population)]

    def _mutant(self, genome: Schedule, frontier: int) -> Schedule:
        return mutate(genome, frontier, self.sampler, self.rng,
                      reach=self.reach)

    @staticmethod
    def _argmax(scores: Sequence[float]) -> int:
        best = 0
        for index in range(1, len(scores)):
            if scores[index] > scores[best]:
                best = index
        return best


class HillClimbStrategy(SearchStrategy):
    """Steepest-ascent hill climbing from the best-seen candidate.

    Each generation proposes ``population`` independent mutants of the
    incumbent; the best mutant replaces it when it scores strictly
    higher.  Greedy and fast-converging — the default strategy.
    """

    name = "hill-climb"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._incumbent: Optional[Tuple[Schedule, float, int]] = None

    def propose(self, generation: int) -> List[Schedule]:
        if self._incumbent is None:
            return self._initial_generation()
        genome, _, frontier = self._incumbent
        return [self._mutant(genome, frontier)
                for _ in range(self.population)]

    def _update(self, generation: int, genomes: Sequence[Schedule],
                scores: Sequence[float],
                frontiers: Sequence[int]) -> None:
        best = self._argmax(scores)
        if self._incumbent is None or scores[best] > self._incumbent[1]:
            self._incumbent = (list(genomes[best]), scores[best],
                               frontiers[best])


class SimulatedAnnealingStrategy(SearchStrategy):
    """Simulated annealing over schedules.

    The best mutant of each generation replaces the incumbent when it
    improves, and otherwise with the Metropolis probability
    ``exp((score - incumbent) / temperature)`` under a geometrically
    cooling temperature — early generations roam, late ones climb.

    Args:
        temperature: initial temperature, in score units.
        cooling: per-generation temperature decay factor in (0, 1].
    """

    name = "anneal"

    def __init__(self, *args: Any, temperature: float = 8.0,
                 cooling: float = 0.9, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, "
                             f"got {temperature}")
        if not 0 < cooling <= 1:
            raise ValueError(f"cooling must lie in (0, 1], got {cooling}")
        self.temperature = temperature
        self.cooling = cooling
        self._incumbent: Optional[Tuple[Schedule, float, int]] = None

    def propose(self, generation: int) -> List[Schedule]:
        if self._incumbent is None:
            return self._initial_generation()
        genome, _, frontier = self._incumbent
        return [self._mutant(genome, frontier)
                for _ in range(self.population)]

    def _update(self, generation: int, genomes: Sequence[Schedule],
                scores: Sequence[float],
                frontiers: Sequence[int]) -> None:
        best = self._argmax(scores)
        candidate = (list(genomes[best]), scores[best], frontiers[best])
        if self._incumbent is None:
            self._incumbent = candidate
            return
        delta = scores[best] - self._incumbent[1]
        temperature = self.temperature * self.cooling ** generation
        # The acceptance draw happens every generation, accepted or not,
        # so the stream stays aligned on resume.
        toss = self.rng.random()
        if delta > 0 or (math.isfinite(delta)
                         and toss < math.exp(delta / temperature)):
            self._incumbent = candidate


class EvolutionaryStrategy(SearchStrategy):
    """A (mu + lambda) elite population loop with splice crossover.

    Keeps the ``elites`` best candidates seen; each generation breeds
    ``population`` offspring by tournament-picking parents, optionally
    splicing two parents at the weaker parent's failure frontier, then
    mutating.  Better than the point strategies at escaping local optima
    on rugged objectives (vote-margin), at the cost of slower convergence.

    Args:
        elites: how many survivors breed (mu).
        crossover_probability: chance an offspring splices two parents.
    """

    name = "evolve"

    def __init__(self, *args: Any, elites: int = 4,
                 crossover_probability: float = 0.3,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if elites <= 0:
            raise ValueError(f"elites must be positive, got {elites}")
        if not 0 <= crossover_probability <= 1:
            raise ValueError("crossover_probability must lie in [0, 1], "
                             f"got {crossover_probability}")
        self.elites = elites
        self.crossover_probability = crossover_probability
        self._pool: List[Tuple[Schedule, float, int]] = []

    def propose(self, generation: int) -> List[Schedule]:
        if not self._pool:
            return self._initial_generation()
        offspring: List[Schedule] = []
        for _ in range(self.population):
            parent = self._tournament()
            genome, _, frontier = parent
            if len(self._pool) > 1 and \
                    self.rng.random() < self.crossover_probability:
                other = self._tournament()
                cut = min(frontier, other[2])
                genome = splice(genome, other[0],
                                max(1, min(cut, self.horizon - 1)),
                                self.sampler.t)
            offspring.append(self._mutant(genome, frontier))
        return offspring

    def _tournament(self) -> Tuple[Schedule, float, int]:
        first = self._pool[self.rng.randrange(len(self._pool))]
        second = self._pool[self.rng.randrange(len(self._pool))]
        return first if first[1] >= second[1] else second

    def _update(self, generation: int, genomes: Sequence[Schedule],
                scores: Sequence[float],
                frontiers: Sequence[int]) -> None:
        self._pool.extend(
            (list(genome), score, frontier)
            for genome, score, frontier in zip(genomes, scores, frontiers))
        self._pool.sort(key=lambda entry: -entry[1])
        del self._pool[self.elites:]


STRATEGIES: Dict[str, Type[SearchStrategy]] = {
    HillClimbStrategy.name: HillClimbStrategy,
    SimulatedAnnealingStrategy.name: SimulatedAnnealingStrategy,
    EvolutionaryStrategy.name: EvolutionaryStrategy,
}
"""Registered strategy classes, keyed by name."""


def build_strategy(name: str, **kwargs: Any) -> SearchStrategy:
    """Instantiate a registered search strategy.

    Raises:
        KeyError: with the list of known names, when the name is unknown.
    """
    try:
        strategy_cls = STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise KeyError(
            f"unknown search strategy {name!r}; known strategies: {known}")
    return strategy_cls(**kwargs)


__all__ = [
    "SearchStrategy",
    "HillClimbStrategy",
    "SimulatedAnnealingStrategy",
    "EvolutionaryStrategy",
    "STRATEGIES",
    "build_strategy",
]
