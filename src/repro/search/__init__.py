"""Guided adversary search: optimize admissible schedules toward hardness.

Theorem 5 proves a powerful strongly adaptive adversary *exists*; this
package goes looking for concrete ones.  It optimizes window schedules —
always admissible, always within the fault budgets — toward pluggable
hardness objectives (undecided windows, undecided fraction, vote-margin
minimization, invariant violations), using seed-deterministic search
strategies whose per-candidate evaluations fan out through
:mod:`repro.runner`:

* :mod:`repro.search.mutations` — admissibility-preserving mutation and
  crossover operators over :class:`~repro.simulation.windows.WindowSpec`
  schedules;
* :mod:`repro.search.objectives` — the objective registry;
* :mod:`repro.search.strategies` — hill climbing, simulated annealing and
  an elite population loop behind one generational interface;
* :mod:`repro.search.campaign` — the campaign driver: parallel
  evaluation, results-store persistence and resume, counterexample
  shrinking, best-schedule artifacts replayable via the
  ``replay-schedule`` adversary and ``repro replay``.

The CLI front end is ``python -m repro search``; experiment E9 compares
searched schedules against sampled and hand-written adversaries.
"""

from repro.search.campaign import (BEST_ARTIFACT, COUNTEREXAMPLE_DIR,
                                   ROW_SCHEMA, SEARCH_EXPERIMENT,
                                   SearchReport, campaign_objective,
                                   campaign_sampler, campaign_setup,
                                   campaign_strategy, candidate_spec,
                                   load_schedule_artifact,
                                   resolve_search_params,
                                   run_search_campaign, save_best_artifact)
from repro.search.mutations import (POINT_MUTATIONS, Schedule,
                                    WindowSampler, crashed_victims,
                                    flip_deliver_last, is_admissible,
                                    mutate, perturb_delivery,
                                    regrow_tail, relocate_crashes,
                                    relocate_resets, splice)
from repro.search.objectives import (OBJECTIVES, InvariantViolationObjective,
                                     Objective, UndecidedFractionObjective,
                                     UndecidedRoundsObjective,
                                     VoteMarginObjective, build_objective)
from repro.search.strategies import (STRATEGIES, EvolutionaryStrategy,
                                     HillClimbStrategy, SearchStrategy,
                                     SimulatedAnnealingStrategy,
                                     build_strategy)

__all__ = [
    "SEARCH_EXPERIMENT",
    "BEST_ARTIFACT",
    "COUNTEREXAMPLE_DIR",
    "ROW_SCHEMA",
    "SearchReport",
    "resolve_search_params",
    "run_search_campaign",
    "campaign_sampler",
    "campaign_strategy",
    "campaign_objective",
    "campaign_setup",
    "candidate_spec",
    "save_best_artifact",
    "load_schedule_artifact",
    "Schedule",
    "WindowSampler",
    "is_admissible",
    "crashed_victims",
    "mutate",
    "splice",
    "regrow_tail",
    "perturb_delivery",
    "relocate_resets",
    "relocate_crashes",
    "flip_deliver_last",
    "POINT_MUTATIONS",
    "Objective",
    "UndecidedRoundsObjective",
    "UndecidedFractionObjective",
    "VoteMarginObjective",
    "InvariantViolationObjective",
    "OBJECTIVES",
    "build_objective",
    "SearchStrategy",
    "HillClimbStrategy",
    "SimulatedAnnealingStrategy",
    "EvolutionaryStrategy",
    "STRATEGIES",
    "build_strategy",
]
