"""Search campaigns: seed-deterministic, parallel, resumable optimization.

A *campaign* optimizes a window schedule against one protocol toward one
objective with one strategy.  It runs in generations: the strategy
proposes a batch of candidate schedules, every candidate is evaluated as a
``replay-schedule`` trial fanned out through :mod:`repro.runner` (so
worker count changes wall-clock time only, never values), the scores feed
back into the strategy, repeat.  Every trace is re-checked by the
independent :class:`~repro.verification.invariants.InvariantChecker`;
violating candidates are shrunk into counterexample artifacts by the
existing :mod:`repro.verification.shrink` machinery.

Campaigns persist through :class:`repro.results.RunStore` under the
pseudo-experiment name ``"search"``: one row per candidate evaluation,
streamed as generations finish.  Because candidate genomes are a pure
function of the campaign seed and the observed scores, a resumed campaign
re-derives the proposal sequence and skips every evaluation the store
already holds — kill/resume is bit-identical to an uninterrupted run.
The best-found schedule is written as ``best-schedule.json`` in the run
directory, in the same self-contained artifact format as the fuzz
counterexamples, so ``repro replay`` (and the ``replay-schedule``
adversary) can re-execute it anywhere.
"""

from __future__ import annotations

import json
import math
import os
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.protocols.registry import get_protocol
from repro.results.store import RunStore
from repro.runner import TrialSpec, derive_seed, iter_trials
from repro.search.mutations import Schedule, WindowSampler, is_admissible
from repro.search.objectives import OBJECTIVES, Objective, build_objective
from repro.search.strategies import (STRATEGIES, SearchStrategy,
                                     build_strategy)
from repro.simulation.trace import ExecutionResult
from repro.verification.invariants import InvariantChecker
from repro.verification.shrink import (ReplaySetup,
                                       parse_schedule_artifact,
                                       save_counterexample,
                                       schedule_to_jsonable,
                                       shrink_schedule)
from repro.workloads.inputs import split, unanimous

SEARCH_EXPERIMENT = "search"
"""Results-store experiment name search campaigns are filed under."""

BEST_ARTIFACT = "best-schedule.json"
"""File name of the best-found schedule artifact inside a run directory."""

COUNTEREXAMPLE_DIR = "counterexamples"
"""Subdirectory of a search run holding shrunk violating schedules."""

_ENGINE_SALT = 0xE9E9E9

ROW_SCHEMA: Tuple[str, ...] = (
    "generation", "candidate", "score", "undecided_windows", "decided",
    "windows", "total_resets", "ok", "violations", "best_score",
    "counterexample")
"""Column set of every search-campaign row."""


def _score_to_stored(score: float) -> Optional[float]:
    """Scores as stored in rows/artifacts: strict JSON, no ``Infinity``.

    The invariant-violation objective scores hits ``math.inf``; rows and
    artifacts encode that as ``null`` (the ``ok``/``violations`` columns
    carry the why) so every persisted file stays parseable by strict
    RFC-JSON tooling.
    """
    return score if math.isfinite(score) else None


def _score_from_stored(value: Optional[float]) -> float:
    """The inverse of :func:`_score_to_stored`."""
    return math.inf if value is None else value

_WORKLOADS = {
    "split": split,
    "unanimous-0": lambda n: unanimous(n, 0),
    "unanimous-1": lambda n: unanimous(n, 1),
}


def resolve_search_params(protocol: str = "reset-tolerant",
                          strategy: str = "hill-climb",
                          objective: str = "undecided-rounds",
                          generations: int = 25, population: int = 8,
                          windows: int = 240, seed: int = 0,
                          n: Optional[int] = None, t: Optional[int] = None,
                          workload: str = "split", verify: bool = True,
                          target_score: Optional[float] = None
                          ) -> Dict[str, Any]:
    """Fill in campaign defaults, returning the canonical parameter dict.

    The dict is what the results store digests, so two invocations with
    the same resolved parameters share one run directory (and resume).
    The evaluation inputs and engine seed are resolved here — candidates
    compete on one fixed execution context, which is what lets the search
    exploit replay determinism.

    Args:
        verify: re-check every candidate's trace with the independent
            invariant checker (and shrink violations into counterexample
            artifacts).  Disabling skips trace recording for objectives
            that do not need it, roughly halving evaluation cost.
        target_score: stop the campaign at the end of the first
            generation whose running best reaches this score (the
            allotted evaluation budget stays ``generations *
            population``; a hit simply stops spending it).
    """
    info = get_protocol(protocol)
    if n is None:
        n = 12
    if n <= 1:
        raise ValueError(f"n must be at least 2, got {n}")
    if t is None:
        t = info.max_faults(n)
    if t <= 0:
        raise ValueError(
            f"protocol {protocol!r} tolerates no faults at n={n}; "
            f"choose a larger n")
    if t >= n:
        raise ValueError(f"fault bound t={t} must satisfy t < n={n}")
    if strategy not in STRATEGIES:
        known = ", ".join(sorted(STRATEGIES))
        raise ValueError(
            f"unknown search strategy {strategy!r}; known: {known}")
    if objective not in OBJECTIVES:
        known = ", ".join(sorted(OBJECTIVES))
        raise ValueError(
            f"unknown objective {objective!r}; known: {known}")
    if generations <= 0:
        raise ValueError(f"generations must be positive, got {generations}")
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    if windows <= 0:
        raise ValueError(f"windows must be positive, got {windows}")
    if workload not in _WORKLOADS:
        known = ", ".join(sorted(_WORKLOADS))
        raise ValueError(f"unknown workload {workload!r}; known: {known}")
    if objective == "invariant-violation" and not verify:
        raise ValueError(
            "the invariant-violation objective requires verify=True")
    # Constructing the objective validates protocol-specific requirements
    # (e.g. vote-margin needs the estimate_from_fingerprint hook) before
    # any run directory is created.
    build_objective(objective, protocol=protocol)
    inputs = "".join(str(bit) for bit in _WORKLOADS[workload](n))
    return {"protocol": protocol, "strategy": strategy,
            "objective": objective, "n": n, "t": t,
            "generations": generations, "population": population,
            "windows": windows, "seed": seed, "workload": workload,
            "inputs": inputs, "verify": bool(verify),
            "target_score": target_score,
            "engine_seed": derive_seed(seed, _ENGINE_SALT) & 0xFFFFFFFF}


def campaign_sampler(params: Dict[str, Any]) -> WindowSampler:
    """The window-sampling distribution, following the fault model.

    Resets are the strongly adaptive adversary's weapon, crashes the
    classical crash adversary's — the same convention fuzz campaigns use.
    """
    crash_model = \
        "crash" in get_protocol(params["protocol"]).fault_model.lower()
    return WindowSampler(
        n=params["n"], t=params["t"],
        reset_probability=0.0 if crash_model else 0.35,
        crash_probability=0.25 if crash_model else 0.0)


def campaign_strategy(params: Dict[str, Any]) -> SearchStrategy:
    """The (freshly seeded) strategy instance of a campaign."""
    return build_strategy(params["strategy"], sampler=campaign_sampler(params),
                          horizon=params["windows"],
                          population=params["population"],
                          seed=params["seed"])


def campaign_objective(params: Dict[str, Any]) -> Objective:
    """The objective instance of a campaign."""
    return build_objective(params["objective"], protocol=params["protocol"])


def campaign_setup(params: Dict[str, Any]) -> ReplaySetup:
    """The fixed execution context every candidate is evaluated in."""
    return ReplaySetup(
        protocol=params["protocol"], n=params["n"], t=params["t"],
        inputs=tuple(int(bit) for bit in params["inputs"]),
        seed=params["engine_seed"])


def candidate_spec(params: Dict[str, Any], objective: Objective,
                   schedule: Schedule, generation: int,
                   candidate: int) -> TrialSpec:
    """The runner trial evaluating one candidate schedule."""
    return TrialSpec(
        protocol=params["protocol"], adversary="replay-schedule",
        n=params["n"], t=params["t"],
        inputs=tuple(int(bit) for bit in params["inputs"]),
        seed=params["engine_seed"],
        adversary_kwargs={"schedule": schedule_to_jsonable(schedule)},
        max_windows=params["windows"], stop_when=objective.stop_when,
        record_trace=params.get("verify", True) or objective.needs_trace,
        record_configurations=objective.needs_configurations,
        tag=(SEARCH_EXPERIMENT, generation, candidate))


@dataclass
class SearchReport:
    """The outcome of one search campaign.

    Attributes:
        params: the resolved campaign parameters.
        rows: one row dict per candidate evaluation, in (generation,
            candidate) order.
        best_score: the best objective score found.
        best_schedule: the best-found schedule (``None`` only for empty
            campaigns).
        best_generation: the generation the best candidate appeared in.
        run_dir: the results-store directory (``None`` for unstored runs).
        best_artifact: path of the saved best-schedule artifact, if any.
        computed_evaluations: evaluations actually executed this run (the
            rest came cached from the store).
        failed_evaluations: evaluations that produced no row because
            execution kept failing through every recovery rung (their
            candidates score ``-inf`` for the strategy and are retried by
            a resumed campaign).
    """

    params: Dict[str, Any]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    best_score: float = -math.inf
    best_schedule: Optional[Schedule] = None
    best_generation: Optional[int] = None
    run_dir: Optional[str] = None
    best_artifact: Optional[str] = None
    computed_evaluations: int = 0
    failed_evaluations: int = 0

    @property
    def findings(self) -> List[Dict[str, Any]]:
        """The invariant-violating rows only (``ok is None`` = unchecked)."""
        return [row for row in self.rows if row["ok"] is False]

    def generation_summary(self) -> List[Dict[str, Any]]:
        """One row per generation: best / mean score, running best."""
        summary: List[Dict[str, Any]] = []
        by_generation: Dict[int, List[Dict[str, Any]]] = {}
        for row in self.rows:
            by_generation.setdefault(row["generation"], []).append(row)
        running = -math.inf
        for generation in sorted(by_generation):
            rows = by_generation[generation]
            scores = [_score_from_stored(row["score"]) for row in rows]
            running = max(running, max(scores))
            finite = [score for score in scores if math.isfinite(score)]
            summary.append({
                "generation": generation,
                "candidates": len(rows),
                "best_score": max(scores),
                "mean_score": (sum(finite) / len(finite)
                               if finite else math.inf),
                "best_so_far": running,
                "violations": sum(1 for row in rows
                                  if row["ok"] is False),
            })
        return summary


def _evaluation_row(params: Dict[str, Any], objective: Objective,
                    checker: InvariantChecker, generation: int,
                    candidate: int, result: ExecutionResult,
                    best_so_far: float) -> Dict[str, Any]:
    if params.get("verify", True):
        report = checker.check_result(result)
        ok: Optional[bool] = report.ok
        violations = report.summary()
        score = objective.score_checked(result, report)
    else:
        ok, violations = None, "-"  # not checked (verify=False)
        score = objective.score(result)
    return {
        "generation": generation,
        "candidate": candidate,
        "score": _score_to_stored(score),
        "undecided_windows": objective.frontier(result),
        "decided": result.decided,
        "windows": result.windows_elapsed,
        "total_resets": result.total_resets,
        "ok": ok,
        "violations": violations,
        "best_score": _score_to_stored(max(best_so_far, score)),
        "counterexample": None,
    }


def _shrink_finding(params: Dict[str, Any], schedule: Schedule,
                    store: RunStore, generation: int,
                    candidate: int) -> str:
    """Shrink one violating candidate into a counterexample artifact."""
    setup = campaign_setup(params)
    shrunk = shrink_schedule(setup, schedule)
    relative = os.path.join(
        COUNTEREXAMPLE_DIR, f"gen-{generation}-cand-{candidate}.json")
    save_counterexample(store.artifact_path(relative), setup,
                        shrunk.schedule, shrunk.violations)
    return relative


def save_best_artifact(path: str, params: Dict[str, Any],
                       report: SearchReport) -> None:
    """Write the best-found schedule as a self-contained artifact.

    The format is the schedule-artifact format of
    :func:`repro.verification.shrink.save_counterexample` (so
    ``repro replay`` handles both), extended with the campaign's
    objective and score for provenance.
    """
    assert report.best_schedule is not None
    setup = campaign_setup(params)
    artifact = {
        "protocol": setup.protocol,
        "n": setup.n,
        "t": setup.t,
        "inputs": list(setup.inputs),
        "seed": setup.seed,
        "protocol_kwargs": {},
        "violations": [],
        "schedule": schedule_to_jsonable(report.best_schedule),
        "objective": params["objective"],
        "strategy": params["strategy"],
        "score": _score_to_stored(report.best_score),
        "generation": report.best_generation,
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True,
                  allow_nan=False)
        handle.write("\n")


def run_search_campaign(params: Dict[str, Any],
                        workers: Optional[int] = None,
                        store: Optional[RunStore] = None,
                        policy: Optional[Any] = None,
                        health: Optional[Any] = None,
                        backend: Optional[str] = None,
                        telemetry: Optional[Any] = None) -> SearchReport:
    """Run (or resume) a search campaign.

    Args:
        params: resolved parameters from :func:`resolve_search_params`.
        workers: worker processes for the per-generation evaluation
            fan-out (0 = serial).
        store: an open results store; evaluations whose rows it already
            holds are skipped (their scores feed the strategy from cache),
            and the best-schedule artifact is written into it.
        policy: execution policy for the supervising executor (retries,
            watchdog, chaos); default: retries on, no watchdog, no chaos.
        health: the run-health ledger recovery actions are recorded into.
        backend: execution backend (``trial`` / ``batched`` / ``auto``);
            ``batched`` vectorizes each generation's candidate
            evaluations, with bit-identical scores by contract.
        telemetry: an optional :class:`~repro.telemetry.Telemetry`
            recorder; each generation becomes a ``generation`` span and
            the expected evaluation total is gauged up front.  Scores
            are bit-identical with or without it.
    """
    from repro.experiments.base import cell_key_id
    from repro.runner.health import RunHealth, TrialFailure
    from repro.runner.supervisor import ExecutionPolicy

    if policy is None:
        policy = ExecutionPolicy()
    if health is None:
        health = RunHealth()
    strategy = campaign_strategy(params)
    objective = campaign_objective(params)
    checker = InvariantChecker()
    completed: Dict[str, Dict[str, Any]] = \
        store.completed_rows() if store is not None else {}
    report = SearchReport(
        params=params,
        run_dir=store.path if store is not None else None)
    best_so_far = -math.inf
    if telemetry is not None:
        telemetry.gauge("trials_total",
                        params["generations"] * params["population"])
    for generation in range(params["generations"]):
        genomes = strategy.propose(generation)
        assert all(is_admissible(genome, params["n"], params["t"])
                   for genome in genomes), \
            "strategy proposed an inadmissible schedule"
        keys = [(SEARCH_EXPERIMENT, generation, candidate)
                for candidate in range(len(genomes))]
        pending = [candidate for candidate, key in enumerate(keys)
                   if cell_key_id(key) not in completed]
        fresh: Dict[int, Dict[str, Any]] = {}
        with ExitStack() as span_scope:
            if telemetry is not None:
                span_scope.enter_context(telemetry.span(
                    "generation", generation=generation,
                    candidates=len(pending)))
            stream = iter_trials(
                [candidate_spec(params, objective, genomes[candidate],
                                generation, candidate)
                 for candidate in pending],
                workers=workers, policy=policy, health=health,
                backend=backend, telemetry=telemetry)
            for candidate in pending:
                result = next(stream)
                if isinstance(result, TrialFailure):
                    # The failure is in the health ledger; the candidate
                    # gets a synthesized in-memory row (never persisted,
                    # so a resumed campaign retries it) scoring -inf
                    # below.
                    report.failed_evaluations += 1
                    fresh[candidate] = {
                        "generation": generation, "candidate": candidate,
                        "score": None, "undecided_windows": 0,
                        "decided": False, "windows": 0, "total_resets": 0,
                        "ok": None, "violations": "-",
                        "best_score": _score_to_stored(best_so_far),
                        "counterexample": None, "failed": True}
                    continue
                row = _evaluation_row(params, objective, checker,
                                      generation, candidate, result,
                                      best_so_far)
                if row["ok"] is False and store is not None:
                    row["counterexample"] = _shrink_finding(
                        params, genomes[candidate], store, generation,
                        candidate)
                fresh[candidate] = row
                report.computed_evaluations += 1
                if store is not None:
                    index = generation * params["population"] + candidate
                    store.write_row(index, keys[candidate], row)
        rows = [completed.get(cell_key_id(key), fresh.get(candidate))
                for candidate, key in enumerate(keys)]
        # A failed candidate scores -inf: it never becomes the best, and
        # strategies treat it exactly like a maximally bad schedule.
        scores = [-math.inf if row.get("failed")
                  else _score_from_stored(row["score"]) for row in rows]
        frontiers = [int(row["undecided_windows"]) for row in rows]
        best_so_far = max(best_so_far, max(scores))
        strategy.observe(generation, genomes, scores, frontiers)
        report.rows.extend(row for row in rows if not row.get("failed"))
        target = params.get("target_score")
        if target is not None and best_so_far >= target:
            break  # target hit: stop spending the remaining budget
    if store is not None:
        store.record_health(health)
    report.best_score = strategy.best_score
    report.best_schedule = strategy.best_schedule
    report.best_generation = strategy.best_generation
    if store is not None and report.best_schedule is not None:
        path = store.artifact_path(BEST_ARTIFACT)
        save_best_artifact(path, params, report)
        report.best_artifact = path
    return report


def load_schedule_artifact(path: str) -> Tuple[ReplaySetup, Schedule,
                                               Dict[str, Any]]:
    """Load any schedule artifact: (setup, schedule, full metadata).

    Handles both fuzz counterexamples and search best-schedule files —
    they share the core format; extra keys come back in the metadata
    dict.
    """
    with open(path) as handle:
        artifact = json.load(handle)
    setup, schedule = parse_schedule_artifact(artifact)
    return setup, schedule, artifact


__all__ = [
    "SEARCH_EXPERIMENT",
    "BEST_ARTIFACT",
    "COUNTEREXAMPLE_DIR",
    "ROW_SCHEMA",
    "resolve_search_params",
    "campaign_sampler",
    "campaign_strategy",
    "campaign_objective",
    "campaign_setup",
    "candidate_spec",
    "SearchReport",
    "run_search_campaign",
    "save_best_artifact",
    "load_schedule_artifact",
]
