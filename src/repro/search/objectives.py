"""Pluggable search objectives scored from recorded executions.

An :class:`Objective` turns one evaluated candidate — an
:class:`~repro.simulation.trace.ExecutionResult` with its recorded
:class:`~repro.simulation.trace.ExecutionTrace` — into a scalar score,
higher meaning *harder for the protocol* (the direction Theorem 5's
adversary optimizes).  Objectives also tell the campaign how to run the
evaluation (``stop_when``, whether configuration snapshots are needed) and
where a candidate's *failure frontier* lies, which is where the guided
mutation operators of :mod:`repro.search.mutations` concentrate.

Registered objectives:

``undecided-rounds``
    Acceptable windows fully elapsed before the first decision — the
    paper's running-time measure, and the default.
``undecided-fraction``
    The fraction of processors still undecided at window ``k`` (default:
    the horizon), from the trace's decision events.
``vote-margin``
    Minimizes the mean vote margin ``|#estimate=1 - #estimate=0|`` across
    the recorded per-window configurations — the balanced-vote knife edge
    the split-vote adversary of Section 3 maintains.  Requires a protocol
    that exposes its estimate via
    :meth:`~repro.protocols.base.Protocol.estimate_from_fingerprint`.
``invariant-violation``
    Infinite score for any candidate whose trace fails the independent
    :class:`~repro.verification.invariants.InvariantChecker` — the
    shortcut that turns a search campaign into a guided bug hunt (the
    campaign shrinks such candidates into counterexample artifacts).
    Scores clean candidates with a base objective so the search still has
    a gradient toward long, adversarial executions.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Type

from repro.protocols.registry import get_protocol
from repro.runner import undecided_windows
from repro.simulation.trace import ExecutionResult
from repro.verification.invariants import InvariantChecker


class Objective:
    """Interface every search objective implements."""

    name: str = ""
    stop_when: str = "first"
    needs_trace: bool = False
    needs_configurations: bool = False

    def score(self, result: ExecutionResult) -> float:
        """The candidate's score; higher is harder for the protocol."""
        raise NotImplementedError

    def score_checked(self, result: ExecutionResult,
                      report=None) -> float:
        """Score with an already-computed invariant report, if available.

        The campaign checks every trace once for its rows; objectives
        that consume the verdict (invariant-violation) override this to
        reuse that report instead of re-deriving it.
        """
        return self.score(result)

    def frontier(self, result: ExecutionResult) -> int:
        """The window index where the candidate failed (mutation target)."""
        return int(undecided_windows(result))


class UndecidedRoundsObjective(Objective):
    """Windows fully elapsed with no processor decided (the default)."""

    name = "undecided-rounds"

    def score(self, result: ExecutionResult) -> float:
        return undecided_windows(result)


class UndecidedFractionObjective(Objective):
    """Fraction of processors still undecided at window ``k``.

    Args:
        k: the window the fraction is measured at; ``None`` measures at
            the end of the evaluated execution (the horizon, for
            executions that never decided).
    """

    name = "undecided-fraction"
    stop_when = "all"
    needs_trace = True

    def __init__(self, k: Optional[int] = None) -> None:
        if k is not None and k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k

    def score(self, result: ExecutionResult) -> float:
        if result.trace is None:
            raise ValueError(
                "undecided-fraction needs a recorded trace; evaluate "
                "candidates with record_trace=True")
        cutoff = self.k if self.k is not None else result.windows_elapsed
        decided = {event.pid for event in result.trace.events
                   if event.kind == "decide" and event.window is not None
                   and event.window < cutoff}
        return 1.0 - len(decided) / result.n


class VoteMarginObjective(Objective):
    """Minimizes the mean per-window vote margin (balanced-vote pressure).

    The score is ``-mean(|ones - zeros|) / n`` over the recorded
    configuration snapshots, so a schedule that pins the protocol to the
    split-vote knife edge scores near 0 and lopsided executions score
    toward -1.

    Args:
        protocol: protocol registry name, used to resolve the
            estimate-extraction hook.
    """

    name = "vote-margin"
    needs_configurations = True

    def __init__(self, protocol: str) -> None:
        from repro.protocols.base import Protocol

        self.protocol = protocol
        self._protocol_cls = get_protocol(protocol).protocol_cls
        hook = self._protocol_cls.estimate_from_fingerprint
        if hook.__func__ is Protocol.estimate_from_fingerprint.__func__:
            raise ValueError(
                f"protocol {protocol!r} does not expose its estimate via "
                f"estimate_from_fingerprint; the vote-margin objective "
                f"cannot score it")

    def score(self, result: ExecutionResult) -> float:
        if not result.configurations:
            raise ValueError(
                "vote-margin needs configuration snapshots; evaluate "
                "candidates with record_configurations=True")
        extract = self._protocol_cls.estimate_from_fingerprint
        margins = []
        for configuration in result.configurations:
            estimates = [extract(state) for state in configuration.states]
            ones = sum(1 for estimate in estimates if estimate == 1)
            zeros = sum(1 for estimate in estimates if estimate == 0)
            margins.append(abs(ones - zeros) / result.n)
        return -sum(margins) / len(margins)


class InvariantViolationObjective(Objective):
    """Infinite score on invariant violations, base gradient otherwise.

    Args:
        checker: the invariant checker defining "violation"; defaults to
            a fresh :class:`InvariantChecker` with no corrupted set.
        base: objective scoring the violation-free candidates (defaults
            to :class:`UndecidedRoundsObjective`, whose long undecided
            executions give violations the most windows to surface in).
    """

    name = "invariant-violation"
    needs_trace = True

    def __init__(self, checker: Optional[InvariantChecker] = None,
                 base: Optional[Objective] = None) -> None:
        self.checker = checker or InvariantChecker()
        self.base = base or UndecidedRoundsObjective()
        self.stop_when = self.base.stop_when
        self.needs_configurations = self.base.needs_configurations

    def score(self, result: ExecutionResult) -> float:
        return self.score_checked(result)

    def score_checked(self, result: ExecutionResult,
                      report=None) -> float:
        if report is None:
            report = self.checker.check_result(result)
        if not report.ok:
            return math.inf
        return self.base.score(result)


OBJECTIVES: Dict[str, Type[Objective]] = {
    UndecidedRoundsObjective.name: UndecidedRoundsObjective,
    UndecidedFractionObjective.name: UndecidedFractionObjective,
    VoteMarginObjective.name: VoteMarginObjective,
    InvariantViolationObjective.name: InvariantViolationObjective,
}
"""Registered objective classes, keyed by name."""


def build_objective(name: str, protocol: str,
                    **kwargs: Any) -> Objective:
    """Instantiate a registered objective.

    Args:
        name: objective registry name.
        protocol: the campaign's protocol (consumed by objectives that
            need protocol introspection; ignored by the others).
        kwargs: extra objective-specific arguments (e.g. ``k`` for
            ``undecided-fraction``).

    Raises:
        KeyError: with the list of known names, when the name is unknown.
    """
    try:
        objective_cls = OBJECTIVES[name]
    except KeyError:
        known = ", ".join(sorted(OBJECTIVES))
        raise KeyError(
            f"unknown objective {name!r}; known objectives: {known}")
    if objective_cls is VoteMarginObjective:
        return VoteMarginObjective(protocol=protocol, **kwargs)
    return objective_cls(**kwargs)


__all__ = [
    "Objective",
    "UndecidedRoundsObjective",
    "UndecidedFractionObjective",
    "VoteMarginObjective",
    "InvariantViolationObjective",
    "OBJECTIVES",
    "build_objective",
]
