"""Admissibility-preserving mutation and crossover operators on schedules.

A search genome is a window schedule: a list of
:class:`~repro.simulation.windows.WindowSpec` objects of fixed length (the
campaign horizon).  Every operator in this module maps *admissible*
schedules to *admissible* schedules — Definition 1 per window (sender sets
of size at least ``n - t``, at most ``t`` resets), plus the cumulative
crash budget of at most ``t`` distinct victims across the whole schedule —
so the search never proposes a candidate the engine would reject.
``tests/test_search_mutations.py`` holds this contract under hypothesis.

The operators mirror the adversary's levers in the paper's model:

* *delivery perturbation* — resample sender sets ``S_i`` (which votes a
  processor hears);
* *reset relocation* — move/add/clear the resetting step set ``R``;
* *crash relocation* — move crash placements between windows within the
  cumulative ``t``-victim budget (crash-model protocols);
* *deliver-last flips* — toggle which senders are pushed to the back of
  the within-window delivery order, hiding their votes from the first
  ``T1`` messages a processor acts on (the window-model analogue of
  equivocation-by-scheduling);
* *window splice* — crossover: a prefix of one parent with the suffix of
  another;
* *tail regrowth* — truncate at an index and regrow the rest with fresh
  windows.  Replayed executions are deterministic, so regrowing the tail
  *at the failure frontier* keeps the known-good undecided prefix and
  re-rolls only the doomed suffix — empirically the strongest operator by
  far, and the one the guided strategies lean on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Set

from repro.adversaries.base import random_subset
from repro.simulation.windows import WindowSpec

Schedule = List[WindowSpec]


@dataclass(frozen=True)
class WindowSampler:
    """The (n, t) system plus the window-sampling distribution.

    Mirrors the :class:`~repro.adversaries.fuzzing.ScheduleFuzzer`
    *shape* — independent sender sets of size in ``[n - t, n]``,
    probabilistic resets / crashes / deliver-last — with the crash draw
    bounded so schedule-level sampling respects the cumulative budget.
    The probabilities differ from the fuzzer's defaults; comparisons
    against fuzzer baselines (E9, the acceptance test) pass the
    sampler's probabilities to the fuzzer explicitly so both draw from
    the same distribution.
    Campaigns set ``crash_probability`` positive (and
    ``reset_probability`` to 0) for crash-model protocols, mirroring how
    fuzz campaigns follow the fault model under test.
    """

    n: int
    t: int
    reset_probability: float = 0.35
    crash_probability: float = 0.0
    deliver_last_probability: float = 0.3

    def window(self, rng: random.Random,
               crashes_left: int = 0) -> WindowSpec:
        """One freshly sampled admissible window."""
        n, t = self.n, self.t
        senders_for = tuple(
            random_subset(range(n), rng.randint(n - t, n), rng)
            for _ in range(n))
        resets: FrozenSet[int] = frozenset()
        if t > 0 and rng.random() < self.reset_probability:
            resets = random_subset(range(n), rng.randint(1, t), rng)
        crashes: FrozenSet[int] = frozenset()
        if crashes_left > 0 and rng.random() < self.crash_probability:
            crashes = random_subset(range(n),
                                    rng.randint(1, crashes_left), rng)
        deliver_last: FrozenSet[int] = frozenset()
        if rng.random() < self.deliver_last_probability:
            deliver_last = random_subset(range(n), rng.randint(1, n), rng)
        return WindowSpec(senders_for=senders_for, resets=resets,
                          crashes=crashes, deliver_last=deliver_last)

    def schedule(self, length: int, rng: random.Random) -> Schedule:
        """A freshly sampled admissible schedule of ``length`` windows."""
        schedule: Schedule = []
        victims: Set[int] = set()
        for _ in range(length):
            spec = self.window(rng, crashes_left=self.t - len(victims))
            victims |= spec.crashes
            schedule.append(spec)
        return schedule


def crashed_victims(schedule: Sequence[WindowSpec]) -> Set[int]:
    """The distinct processors crashed anywhere in the schedule."""
    victims: Set[int] = set()
    for spec in schedule:
        victims |= spec.crashes
    return victims


def is_admissible(schedule: Sequence[WindowSpec], n: int, t: int) -> bool:
    """Whether every window satisfies Definition 1 and crashes fit ``t``."""
    from repro.simulation.errors import InvalidWindowError

    for spec in schedule:
        try:
            spec.validate(n, t)
        except InvalidWindowError:
            return False
    return len(crashed_victims(schedule)) <= t


def _repair_crashes(schedule: Sequence[WindowSpec], t: int) -> Schedule:
    """Drop crash placements (latest first) until at most ``t`` victims.

    Crossovers can combine prefixes and suffixes whose crash sets are
    individually within budget but jointly over it; dropping the *later*
    extra victims keeps the (usually optimized) prefix intact.
    """
    victims: Set[int] = set()
    repaired: Schedule = []
    for spec in schedule:
        fresh = spec.crashes - victims
        allowed = t - len(victims)
        if len(fresh) > allowed:
            keep = frozenset(sorted(fresh)[:allowed]) | \
                (spec.crashes & victims)
            spec = WindowSpec(senders_for=spec.senders_for,
                              resets=spec.resets, crashes=keep,
                              deliver_last=spec.deliver_last)
        victims |= spec.crashes
        repaired.append(spec)
    return repaired


# ----------------------------------------------------------------------
# Point mutations (one window).
# ----------------------------------------------------------------------
def perturb_delivery(schedule: Sequence[WindowSpec], index: int,
                     sampler: WindowSampler,
                     rng: random.Random) -> Schedule:
    """Resample the sender sets of a few receivers in one window."""
    n, t = sampler.n, sampler.t
    child = list(schedule)
    spec = child[index]
    senders = list(spec.senders_for)
    for _ in range(rng.randint(1, max(1, n // 3))):
        pid = rng.randrange(n)
        senders[pid] = random_subset(range(n), rng.randint(n - t, n), rng)
    child[index] = WindowSpec(senders_for=tuple(senders), resets=spec.resets,
                              crashes=spec.crashes,
                              deliver_last=spec.deliver_last)
    return child


def relocate_resets(schedule: Sequence[WindowSpec], index: int,
                    sampler: WindowSampler,
                    rng: random.Random) -> Schedule:
    """Move, add or clear the reset set of one window (size at most t).

    Resets are only *added* when the sampler's fault model uses them
    (``reset_probability > 0``); crash-model campaigns may clear stray
    resets but never gain new ones.
    """
    n, t = sampler.n, sampler.t
    child = list(schedule)
    spec = child[index]
    # repro: allow[D4] -- 0.0 is the fault model's exact off-switch sentinel
    if t == 0 or sampler.reset_probability == 0.0 or \
            (spec.resets and rng.random() < 0.4):
        resets: FrozenSet[int] = frozenset()
    else:
        resets = random_subset(range(n), rng.randint(1, t), rng)
    child[index] = WindowSpec(senders_for=spec.senders_for, resets=resets,
                              crashes=spec.crashes,
                              deliver_last=spec.deliver_last)
    return child


def relocate_crashes(schedule: Sequence[WindowSpec], index: int,
                     sampler: WindowSampler,
                     rng: random.Random) -> Schedule:
    """Move a crash placement into (or out of) one window, within budget.

    The new victim is drawn from the already-crashed set when the budget
    is exhausted, so the distinct-victim count never grows past ``t``.
    Crashes are only *added* when the sampler's fault model uses them
    (``crash_probability > 0``); reset-model campaigns may drop stray
    crashes but never gain new ones — the searched adversary must not
    exceed the powers of the model under test.
    """
    n, t = sampler.n, sampler.t
    child = list(schedule)
    spec = child[index]
    if spec.crashes and rng.random() < 0.5:
        crashes: FrozenSet[int] = frozenset(sorted(spec.crashes)[1:])
    else:
        # repro: allow[D4] -- 0.0 is the fault model's exact off-switch sentinel
        if t == 0 or sampler.crash_probability == 0.0:
            return child
        victims = crashed_victims(child)
        pool = sorted(victims) if len(victims) >= t else list(range(n))
        crashes = spec.crashes | {rng.choice(pool)}
    child[index] = WindowSpec(senders_for=spec.senders_for,
                              resets=spec.resets, crashes=crashes,
                              deliver_last=spec.deliver_last)
    return _repair_crashes(child, t)


def flip_deliver_last(schedule: Sequence[WindowSpec], index: int,
                      sampler: WindowSampler,
                      rng: random.Random) -> Schedule:
    """Toggle or resample the deprioritised-sender set of one window."""
    n = sampler.n
    child = list(schedule)
    spec = child[index]
    if spec.deliver_last and rng.random() < 0.4:
        deliver_last: FrozenSet[int] = frozenset()
    else:
        deliver_last = random_subset(range(n), rng.randint(1, n), rng)
    child[index] = WindowSpec(senders_for=spec.senders_for,
                              resets=spec.resets, crashes=spec.crashes,
                              deliver_last=deliver_last)
    return child


# ----------------------------------------------------------------------
# Structural operators.
# ----------------------------------------------------------------------
def splice(first: Sequence[WindowSpec], second: Sequence[WindowSpec],
           index: int, t: int) -> Schedule:
    """Crossover: ``first[:index]`` spliced onto ``second[index:]``.

    The combined crash placements are repaired back into the cumulative
    ``t``-victim budget.
    """
    return _repair_crashes(list(first[:index]) + list(second[index:]), t)


def regrow_tail(schedule: Sequence[WindowSpec], index: int,
                sampler: WindowSampler, rng: random.Random) -> Schedule:
    """Keep ``schedule[:index]`` and regrow the rest with fresh windows.

    Replayed executions are deterministic, so regrowing at (a few windows
    before) the failure frontier preserves the undecided prefix while
    re-rolling the collapse that ended it.
    """
    child = list(schedule[:index])
    victims = crashed_victims(child)
    for _ in range(len(schedule) - index):
        spec = sampler.window(rng, crashes_left=sampler.t - len(victims))
        victims |= spec.crashes
        child.append(spec)
    return child


POINT_MUTATIONS = (perturb_delivery, relocate_resets, relocate_crashes,
                   flip_deliver_last)
"""The single-window operators, in a stable order for seeded choice."""


def mutate(schedule: Sequence[WindowSpec], frontier: int,
           sampler: WindowSampler, rng: random.Random,
           reach: int = 8) -> Schedule:
    """One guided mutation of ``schedule``.

    Args:
        schedule: the parent genome (admissible).
        frontier: the parent's failure frontier — the window index where
            its execution went wrong (for window-count objectives, its
            score).  Mutations concentrate just *before* this point:
            single-window edits inside the already-collapsed suffix are
            almost always inconsequential.
        sampler: the window-sampling distribution (and the (n, t) system).
        rng: the strategy's seeded stream.
        reach: how far before the frontier mutation points are drawn.
    """
    last = len(schedule) - 1
    anchor = min(max(0, frontier), last)
    index = max(0, anchor - rng.randint(0, reach))
    if rng.random() < 0.7:
        return regrow_tail(schedule, index, sampler, rng)
    operator = POINT_MUTATIONS[rng.randrange(len(POINT_MUTATIONS))]
    return operator(schedule, index, sampler, rng)


__all__ = [
    "Schedule",
    "WindowSampler",
    "crashed_victims",
    "is_admissible",
    "perturb_delivery",
    "relocate_resets",
    "relocate_crashes",
    "flip_deliver_last",
    "splice",
    "regrow_tail",
    "POINT_MUTATIONS",
    "mutate",
]
