"""Agreement protocols: the paper's algorithm and the baselines it builds on."""

from repro.protocols.base import Protocol, ProtocolFactory
from repro.protocols.ben_or import BenOrAgreement
from repro.protocols.bracha import BrachaAgreement
from repro.protocols.committee import (CommitteeElectionProtocol,
                                       CommitteeRunResult, failure_rate)
from repro.protocols.registry import (ProtocolInfo, available_protocols,
                                      get_protocol)

__all__ = [
    "Protocol",
    "ProtocolFactory",
    "BenOrAgreement",
    "BrachaAgreement",
    "CommitteeElectionProtocol",
    "CommitteeRunResult",
    "failure_rate",
    "ProtocolInfo",
    "available_protocols",
    "get_protocol",
]
