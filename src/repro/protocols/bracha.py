"""Bracha's asynchronous Byzantine agreement protocol (PODC 1984).

Bracha's protocol achieves the optimal resilience ``t < n/3`` against
Byzantine failures, terminating with probability one.  It is the second of
the two classic exponential-time algorithms the paper generalises (the
other being Ben-Or's), and the building block of the committee-election
algorithms (Kapron et al.) that the paper contrasts against.

Every value is disseminated through Bracha's *reliable broadcast*
(:mod:`repro.broadcast`), which prevents a Byzantine sender from making two
honest processors accept different values from the same broadcast.  On top
of that, each round has three phases:

1. broadcast the current value; await ``n - t`` accepted phase-1 values and
   adopt the majority;
2. broadcast the result; await ``n - t`` accepted phase-2 values; if more
   than ``n/2`` of them agree on ``v``, adopt the *decided candidate*
   marker ``(D, v)``;
3. broadcast again; await ``n - t`` accepted phase-3 values; with at least
   ``2t + 1`` decided-candidate markers for ``v`` decide ``v``; with at
   least ``t + 1`` adopt ``v``; otherwise adopt a fresh coin flip.

On top of reliable broadcast the protocol applies Bracha's *validation*
filter: a phase-``s`` value is only counted if it could have been produced
by a correct processor applying the phase-``(s-1)`` rule to some admissible
set of ``n - t`` phase-``(s-1)`` values.  We implement the filter
conservatively with respect to the receiver's current knowledge: a claim is
discarded only when the receiver's own accepted phase-``(s-1)`` values
already rule it out even if every not-yet-accepted broadcast were to support
it.  Honest claims always pass (reliable broadcast makes the receiver's
knowledge consistent with the sender's), so liveness is preserved, while
fabricated decided-candidate claims are filtered out once enough genuine
phase values have been accepted.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.broadcast.bracha_broadcast import ReliableBroadcastLayer
from repro.protocols.base import Protocol
from repro.simulation.message import Message, broadcast

DECIDED_MARKER = "D"
"""First element of a decided-candidate phase value ``(D, v)``."""


class BrachaAgreement(Protocol):
    """One processor's instance of Bracha's agreement protocol.

    Args:
        pid: processor identity.
        n: number of processors.
        t: Byzantine-fault bound; the protocol requires ``t < n/3``.
        input_bit: the processor's input.
        rng: local randomness source.
    """

    forgetful: ClassVar[bool] = False
    fully_communicative: ClassVar[bool] = True

    def __init__(self, pid: int, n: int, t: int, input_bit: int,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(pid=pid, n=n, t=t, input_bit=input_bit, rng=rng)
        if not t < n / 3:
            raise ValueError(f"Bracha requires t < n/3, got t={t}, n={n}")
        self.round = 1
        self.phase = 1
        self.value: object = input_bit
        self.rbc = ReliableBroadcastLayer(pid=pid, n=n, t=t)
        self._accepted: Dict[Tuple[int, int], Dict[int, object]] = \
            defaultdict(dict)
        self._processed: set = set()
        self._initiated: set = set()

    # ------------------------------------------------------------------
    # Protocol hooks.
    # ------------------------------------------------------------------
    def _compose_messages(self) -> List[Message]:
        tag = (self.round, self.phase)
        if tag not in self._initiated and not self.decided:
            self._initiated.add(tag)
            self.rbc.broadcast(tag, self.value)
        outgoing = []
        for payload in self.rbc.take_outgoing():
            outgoing.extend(broadcast(self.pid, self.n, payload))
        return outgoing

    def _handle_message(self, message: Message) -> None:
        acceptances = self.rbc.handle(message.sender, message.payload)
        for acceptance in acceptances:
            tag = acceptance.tag
            if not (isinstance(tag, tuple) and len(tag) == 2):
                continue
            self._accepted[tag][acceptance.originator] = acceptance.value
        self._maybe_advance()

    def _maybe_advance(self) -> None:
        advanced = True
        while advanced and not self.decided:
            advanced = False
            tag = (self.round, self.phase)
            accepted = self._valid_accepted(self.round, self.phase)
            if len(accepted) >= self.n - self.t and tag not in self._processed:
                self._processed.add(tag)
                self._finish_phase(accepted)
                advanced = True

    # ------------------------------------------------------------------
    # Bracha's validation filter.
    # ------------------------------------------------------------------
    def _valid_accepted(self, round_number: int, phase: int
                        ) -> Dict[int, object]:
        """Accepted values for (round, phase) that pass validation.

        Phase-1 values are always admissible (they may legitimately come
        from a coin flip).  A phase-2 or phase-3 claim is discarded only if
        the receiver's accepted previous-phase values already make the claim
        impossible, even when every not-yet-accepted broadcast is counted in
        the claim's favour.
        """
        accepted = self._accepted.get((round_number, phase), {})
        if phase == 1:
            return dict(accepted)
        previous = self._accepted.get((round_number, phase - 1), {})
        unknown = self.n - len(previous)
        valid: Dict[int, object] = {}
        for originator, value in accepted.items():
            if self._claim_possible(value, previous, unknown, phase):
                valid[originator] = value
        return valid

    def _claim_possible(self, value: object, previous: Dict[int, object],
                        unknown: int, phase: int) -> bool:
        """Whether ``value`` could arise from a correct previous-phase view."""
        if isinstance(value, tuple) and len(value) == 2 and \
                value[0] == DECIDED_MARKER and value[1] in (0, 1):
            # A decided-candidate claim asserts that more than n/2 of the
            # claimer's accepted phase-2 values equalled the bit.
            bit = value[1]
            support = self._support_count(previous, bit) + unknown
            return support > self.n / 2
        if value in (0, 1):
            # A plain value asserts it was the majority of n - t accepted
            # previous-phase values.
            support = self._support_count(previous, value) + unknown
            return 2 * support >= self.n - self.t
        return False

    @staticmethod
    def _support_count(values: Dict[int, object], bit: int) -> int:
        """How many previous-phase values support ``bit``."""
        count = 0
        for value in values.values():
            if value == bit:
                count += 1
            elif isinstance(value, tuple) and len(value) == 2 and \
                    value[0] == DECIDED_MARKER and value[1] == bit:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Phase logic.
    # ------------------------------------------------------------------
    def _finish_phase(self, accepted: Dict[int, object]) -> None:
        values = list(accepted.values())
        if self.phase == 1:
            self.value = self._majority_bit(values)
            self.phase = 2
        elif self.phase == 2:
            counts = Counter(value for value in values if value in (0, 1))
            self.value = self._majority_bit(values)
            for bit in (0, 1):
                if counts.get(bit, 0) > self.n / 2:
                    self.value = (DECIDED_MARKER, bit)
            self.phase = 3
        else:
            decided_counts: Counter = Counter()
            for value in values:
                if isinstance(value, tuple) and len(value) == 2 and \
                        value[0] == DECIDED_MARKER and value[1] in (0, 1):
                    decided_counts[value[1]] += 1
            best_bit, best_count = None, 0
            for bit in (0, 1):
                if decided_counts.get(bit, 0) > best_count:
                    best_bit, best_count = bit, decided_counts[bit]
            if best_bit is not None and best_count >= 2 * self.t + 1:
                self.decide(best_bit)
                self.value = best_bit
            elif best_bit is not None and best_count >= self.t + 1:
                self.value = best_bit
            else:
                self.value = self.coin_flip()
            self.round += 1
            self.phase = 1

    def _majority_bit(self, values: List[object]) -> int:
        """The majority bit among plain-bit values (ties toward 0)."""
        counts = Counter()
        for value in values:
            if value in (0, 1):
                counts[value] += 1
            elif isinstance(value, tuple) and len(value) == 2 and \
                    value[0] == DECIDED_MARKER and value[1] in (0, 1):
                counts[value[1]] += 1
        if counts.get(1, 0) > counts.get(0, 0):
            return 1
        return 0

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def current_estimate(self) -> Optional[int]:
        if self.value in (0, 1):
            return self.value
        if isinstance(self.value, tuple) and len(self.value) == 2:
            return self.value[1]
        return None

    def current_round(self) -> int:
        """The protocol's internal round number."""
        return self.round

    def volatile_state(self) -> Tuple:
        accepted_view = tuple(sorted(
            ((tag, originator, value)
             for tag, entries in self._accepted.items()
             for originator, value in entries.items()),
            key=repr))
        return (self.round, self.phase, self.value, accepted_view,
                self.rbc.state_view())

    def _on_reset(self) -> None:
        # Bracha's protocol predates resetting failures; a reset restarts
        # the processor from its input bit.  Only used by boundary tests.
        self.round = 1
        self.phase = 1
        self.value = self.input_bit
        self.rbc = ReliableBroadcastLayer(pid=self.pid, n=self.n, t=self.t)
        self._accepted = defaultdict(dict)
        self._processed = set()
        self._initiated = set()


__all__ = ["BrachaAgreement", "DECIDED_MARKER"]
