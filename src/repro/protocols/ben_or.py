"""Ben-Or's randomized asynchronous agreement protocol (PODC 1983).

This is the classic two-phase, coin-flipping protocol the paper builds on:
it tolerates ``t < n/2`` crash failures in the asynchronous full-information
model, terminates with probability one (Aguilera & Toueg's correctness
proof), and — when the inputs are split and ``t = Omega(n)`` — runs for an
expected exponential number of rounds, which is exactly the behaviour the
lower bounds of Sections 4 and 5 show to be unavoidable for its class
(forgetful, fully communicative algorithms).

Per round ``r``:

* *Report phase.*  Broadcast ``(REPORT, r, x)``; wait for ``n - t`` reports
  of round ``r``.  If more than ``n/2`` of all received reports carry the
  same value ``v``, propose ``v``; otherwise propose ``⊥``.
* *Proposal phase.*  Broadcast ``(PROPOSE, r, proposal)``; wait for
  ``n - t`` proposals of round ``r``.  If at least ``t + 1`` carry the same
  value ``v ≠ ⊥``, decide ``v`` (and keep ``x = v``); else if at least one
  carries ``v ≠ ⊥``, set ``x = v``; otherwise set ``x`` to a fresh coin
  flip.  Then move to round ``r + 1``.
"""

from __future__ import annotations

import random
from collections import Counter, defaultdict
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.protocols.base import Protocol
from repro.simulation.message import Message, broadcast

REPORT = "REPORT"
"""Tag of first-phase (report) messages."""

PROPOSE = "PROPOSE"
"""Tag of second-phase (proposal) messages; the value ``None`` encodes ⊥."""


class BenOrAgreement(Protocol):
    """One processor's instance of Ben-Or's protocol.

    Args:
        pid: processor identity.
        n: number of processors.
        t: crash-fault bound; the protocol requires ``t < n/2``.
        input_bit: the processor's input.
        rng: local randomness source.
    """

    forgetful: ClassVar[bool] = True
    fully_communicative: ClassVar[bool] = True

    def __init__(self, pid: int, n: int, t: int, input_bit: int,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(pid=pid, n=n, t=t, input_bit=input_bit, rng=rng)
        if not t < n / 2:
            raise ValueError(
                f"Ben-Or requires t < n/2, got t={t}, n={n}")
        self.round = 1
        self.phase = REPORT
        self.estimate = input_bit
        self.proposal: Optional[int] = None
        # Received messages, keyed by (round, phase) then sender.
        self._received: Dict[Tuple[int, str], Dict[int, Optional[int]]] = \
            defaultdict(dict)
        self._processed: set = set()

    # ------------------------------------------------------------------
    # Protocol hooks.
    # ------------------------------------------------------------------
    def _compose_messages(self) -> List[Message]:
        if self.phase == REPORT:
            payload = (REPORT, self.round, self.estimate)
        else:
            payload = (PROPOSE, self.round, self.proposal)
        return broadcast(self.pid, self.n, payload)

    def _handle_message(self, message: Message) -> None:
        payload = message.payload
        if not (isinstance(payload, tuple) and len(payload) == 3
                and payload[0] in (REPORT, PROPOSE)):
            return
        tag, msg_round, value = payload
        if not isinstance(msg_round, int):
            return
        if tag == REPORT and value not in (0, 1):
            return
        if tag == PROPOSE and value not in (0, 1, None):
            return
        key = (msg_round, tag)
        if key in self._processed or msg_round < self.round:
            return
        self._received[key][message.sender] = value
        self._maybe_advance()

    def _maybe_advance(self) -> None:
        """Advance through phases as long as quorums are available."""
        advanced = True
        while advanced:
            advanced = False
            key = (self.round, self.phase)
            received = self._received.get(key, {})
            if len(received) >= self.n - self.t and key not in self._processed:
                self._processed.add(key)
                if self.phase == REPORT:
                    self._finish_report_phase(received)
                else:
                    self._finish_proposal_phase(received)
                advanced = True

    def _finish_report_phase(self, received: Dict[int, Optional[int]]
                             ) -> None:
        counts = Counter(value for value in received.values()
                         if value in (0, 1))
        self.proposal = None
        for value in (0, 1):
            if counts.get(value, 0) > self.n / 2:
                self.proposal = value
        self.phase = PROPOSE

    def _finish_proposal_phase(self, received: Dict[int, Optional[int]]
                               ) -> None:
        counts = Counter(value for value in received.values()
                         if value in (0, 1))
        strongest: Optional[int] = None
        strongest_count = 0
        for value in (0, 1):
            if counts.get(value, 0) > strongest_count:
                strongest = value
                strongest_count = counts[value]
        if strongest is not None and strongest_count >= self.t + 1:
            if not self.decided:
                self.decide(strongest)
            self.estimate = strongest
        elif strongest is not None:
            self.estimate = strongest
        else:
            self.estimate = self.coin_flip()
        self.round += 1
        self.phase = REPORT

    def _on_reset(self) -> None:
        # Ben-Or was not designed for resetting failures; a reset simply
        # restarts the processor from its input (used only by tests that
        # probe behaviour outside the protocol's design envelope).
        self.round = 1
        self.phase = REPORT
        self.estimate = self.input_bit
        self.proposal = None
        self._received = defaultdict(dict)
        self._processed = set()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def current_estimate(self) -> Optional[int]:
        """The value the next outgoing message will carry (``None`` for ⊥)."""
        if self.phase == REPORT:
            return self.estimate
        return self.proposal

    def waiting_threshold(self) -> int:
        """The protocol acts on the first ``n - t`` same-phase messages."""
        return self.n - self.t

    def majority_threshold(self) -> int:
        """Vote count the split-vote adversary must keep receivers below.

        In the report phase a processor acts deterministically once some
        value exceeds ``n/2`` among its received reports; in the proposal
        phase *any* non-⊥ proposal seen steers the estimate, so the
        adversary must hide proposals entirely.
        """
        if self.phase == REPORT:
            return self.n // 2 + 1
        return 1

    def volatile_state(self) -> Tuple:
        received_view = tuple(sorted(
            (msg_round, tag, sender, value)
            for (msg_round, tag), votes in self._received.items()
            for sender, value in votes.items()))
        return (self.round, self.phase, self.estimate, self.proposal,
                received_view)

    @classmethod
    def estimate_from_fingerprint(cls, fingerprint: Tuple) -> Optional[int]:
        # fingerprint = (input, output, reset_count, volatile_state());
        # the estimate is the third volatile field (see volatile_state).
        return fingerprint[3][2]


__all__ = ["BenOrAgreement", "REPORT", "PROPOSE"]
