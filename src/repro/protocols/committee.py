"""Committee-election agreement in the style of Kapron et al. (SODA 2008).

The paper contrasts its exponential lower bounds with the fast
(polylogarithmic-round) protocol of Kapron, Kempe, King, Saia and Sanwalani,
which tolerates ``t < (1/3 - eps) n`` *non-adaptive* Byzantine failures but
gives up two things the paper's setting insists on: it has a non-zero
probability of non-termination or invalid output, and it collapses against
an *adaptive* adversary, who can simply wait until the final committee is
known and then corrupt it.

This module implements a structured simulation of that committee-election
approach so experiment E5 can measure the contrast quantitatively:

* processors are iteratively partitioned into committees of polylogarithmic
  size; each committee elects a random half of its members to continue,
  which preserves the corrupted fraction with high probability as long as
  the committee is less than one-third corrupted, and is assumed to be fully
  controlled by the adversary otherwise (a conservative abstraction of the
  committee's internal Byzantine agreement);
* the single final committee runs an agreement protocol among its members
  and announces the result;
* a *non-adaptive* adversary must commit to its corrupted set before the
  election starts; an *adaptive* adversary corrupts the final committee
  after it has been determined.

The simulation abstracts each committee's internal agreement to a constant
number of communication rounds per layer (the committees have
polylogarithmic size, so their internal cost is polylogarithmic in ``n``);
the quantities the experiment reports — round counts growing
polylogarithmically versus exponentially, and failure probabilities under
non-adaptive versus adaptive corruption — do not depend on that constant.
This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.determinism import seeded_rng


@dataclass
class CommitteeRunResult:
    """Outcome of one committee-election execution.

    Attributes:
        decided: whether the protocol announced a decision.
        decision: the announced value (``None`` when undecided).
        correct: whether the outcome satisfies agreement and validity for
            the honest processors (a corrupted final committee may announce
            an invalid value or nothing at all).
        layers: number of election layers executed.
        communication_rounds: estimated communication rounds
            (``layers + final-committee agreement``), the quantity compared
            against the exponential window counts of the adaptive-safe
            algorithms.
        final_committee: identities of the final committee.
        final_corrupted_fraction: fraction of the final committee that was
            corrupted when the final agreement ran.
        failure_reason: short description of why the run failed, if it did.
    """

    decided: bool
    decision: Optional[int]
    correct: bool
    layers: int
    communication_rounds: int
    final_committee: List[int]
    final_corrupted_fraction: float
    failure_reason: Optional[str] = None


class CommitteeElectionProtocol:
    """Simulates the layered committee-election agreement protocol.

    Args:
        n: number of processors.
        t: Byzantine-fault budget; must satisfy ``t < n/3`` for the
            protocol's guarantees to be meaningful.
        committee_size: target committee size; defaults to
            ``max(4, 3 * ceil(log2 n))``, the polylogarithmic size the
            construction requires.
        rounds_per_layer: abstract communication-round cost of one layer's
            committee-internal elections.
    """

    def __init__(self, n: int, t: int, committee_size: Optional[int] = None,
                 rounds_per_layer: int = 3) -> None:
        if n < 4:
            raise ValueError("committee election needs at least 4 processors")
        if not 0 <= t < n:
            raise ValueError(f"invalid fault bound t={t} for n={n}")
        self.n = n
        self.t = t
        if committee_size is None:
            committee_size = max(4, 3 * math.ceil(math.log2(max(n, 2))))
        self.committee_size = committee_size
        self.rounds_per_layer = rounds_per_layer

    # ------------------------------------------------------------------
    def _partition(self, pool: List[int], rng: random.Random
                   ) -> List[List[int]]:
        """Randomly partition the pool into groups of roughly committee size."""
        shuffled = list(pool)
        rng.shuffle(shuffled)
        group_count = max(1, len(shuffled) // self.committee_size)
        groups: List[List[int]] = [[] for _ in range(group_count)]
        for index, pid in enumerate(shuffled):
            groups[index % group_count].append(pid)
        return [group for group in groups if group]

    def _elect(self, group: List[int], corrupted: Set[int],
               rng: random.Random) -> List[int]:
        """One committee's election of the members advancing to the next layer.

        If fewer than one third of the group is corrupted, the group's
        internal Byzantine agreement succeeds and the elected subset is a
        uniformly random half of the group.  Otherwise the adversary
        controls the election and advances as many corrupted members as
        possible.
        """
        advance = max(1, len(group) // 2)
        bad = [pid for pid in group if pid in corrupted]
        good = [pid for pid in group if pid not in corrupted]
        if len(bad) * 3 < len(group):
            return rng.sample(group, advance)
        elected = bad[:advance]
        remaining = advance - len(elected)
        if remaining > 0:
            elected.extend(rng.sample(good, min(remaining, len(good))))
        return elected

    # ------------------------------------------------------------------
    def run(self, inputs: Sequence[int], adaptive: bool = False,
            corrupted: Optional[Set[int]] = None,
            seed: Optional[int] = None) -> CommitteeRunResult:
        """Execute one committee-election agreement.

        Args:
            inputs: the ``n`` input bits.
            adaptive: if True, the adversary chooses its corrupted set
                *after* the final committee is known (the attack the paper
                points out); if False the corrupted set is fixed up front.
            corrupted: explicit non-adaptive corrupted set (ignored when
                ``adaptive`` is True); defaults to a uniformly random set of
                size ``t``.
            seed: randomness seed for partitioning and elections.
        """
        if len(inputs) != self.n:
            raise ValueError(f"expected {self.n} inputs, got {len(inputs)}")
        rng = seeded_rng(seed)
        if adaptive:
            corrupted_set: Set[int] = set()
        elif corrupted is not None:
            corrupted_set = set(corrupted)
            if len(corrupted_set) > self.t:
                raise ValueError("corrupted set exceeds fault budget")
        else:
            corrupted_set = set(rng.sample(range(self.n), self.t))

        pool = list(range(self.n))
        layers = 0
        while len(pool) > self.committee_size:
            groups = self._partition(pool, rng)
            next_pool: List[int] = []
            for group in groups:
                next_pool.extend(self._elect(group, corrupted_set, rng))
            # Guard against degenerate shrinkage on tiny pools.
            if not next_pool:
                next_pool = pool[:self.committee_size]
            pool = sorted(set(next_pool))
            layers += 1
            if layers > 10 * max(1, int(math.log2(self.n)) + 1):
                break

        final_committee = sorted(pool)
        if adaptive:
            # The adaptive adversary corrupts the final committee itself.
            corrupted_set = set(final_committee[:self.t])

        bad_in_final = [pid for pid in final_committee
                        if pid in corrupted_set]
        fraction = len(bad_in_final) / max(1, len(final_committee))
        final_rounds = max(2, int(math.ceil(math.log2(max(self.n, 2)))))
        communication_rounds = layers * self.rounds_per_layer + final_rounds

        honest_inputs = [inputs[pid] for pid in range(self.n)
                         if pid not in corrupted_set]
        if fraction * 3 < 1:
            # Honest-majority (in the Byzantine sense) final committee: its
            # internal agreement succeeds and announces a valid value.
            committee_inputs = [inputs[pid] for pid in final_committee
                                if pid not in corrupted_set]
            ones = sum(committee_inputs)
            decision = 1 if ones * 2 > len(committee_inputs) else 0
            if decision not in honest_inputs and honest_inputs:
                decision = honest_inputs[0]
            return CommitteeRunResult(
                decided=True, decision=decision, correct=True,
                layers=layers, communication_rounds=communication_rounds,
                final_committee=final_committee,
                final_corrupted_fraction=fraction)
        # Corrupted final committee: the adversary decides the outcome.  We
        # model the worst case for validity — announcing the complement of
        # the honest processors' common input when they are unanimous, and
        # an arbitrary value otherwise.
        if honest_inputs and len(set(honest_inputs)) == 1:
            decision = 1 - honest_inputs[0]
            reason = "corrupted final committee announced an invalid value"
            correct = False
        else:
            decision = rng.getrandbits(1)
            reason = "corrupted final committee controlled the outcome"
            correct = False
        return CommitteeRunResult(
            decided=True, decision=decision, correct=correct,
            layers=layers, communication_rounds=communication_rounds,
            final_committee=final_committee,
            final_corrupted_fraction=fraction,
            failure_reason=reason)


def failure_rate(protocol: CommitteeElectionProtocol, inputs: Sequence[int],
                 trials: int, adaptive: bool,
                 seed: Optional[int] = None) -> float:
    """Fraction of runs in which the committee protocol fails.

    Used by experiment E5 to contrast non-adaptive (small failure rate) with
    adaptive (near-certain failure) corruption.
    """
    rng = seeded_rng(seed)
    failures = 0
    for _ in range(trials):
        result = protocol.run(inputs, adaptive=adaptive,
                              seed=rng.getrandbits(32))
        if not result.correct:
            failures += 1
    return failures / trials


__all__ = ["CommitteeRunResult", "CommitteeElectionProtocol", "failure_rate"]
