"""A small registry mapping protocol names to classes.

Experiments, examples and the benchmark harness refer to protocols by name
("reset-tolerant", "ben-or", "bracha"); this registry centralises the
mapping together with each protocol's resilience requirement, so sweeps can
derive the maximum admissible ``t`` for a given ``n`` uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Type

from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.protocols.base import Protocol
from repro.protocols.ben_or import BenOrAgreement
from repro.protocols.bracha import BrachaAgreement


@dataclass(frozen=True)
class ProtocolInfo:
    """Registry entry for a message-passing agreement protocol.

    Attributes:
        name: registry key.
        protocol_cls: the protocol class.
        max_faults: function mapping ``n`` to the largest tolerated ``t``.
        fault_model: short description of the failure model.
    """

    name: str
    protocol_cls: Type[Protocol]
    max_faults: Callable[[int], int]
    fault_model: str


_REGISTRY: Dict[str, ProtocolInfo] = {
    "reset-tolerant": ProtocolInfo(
        name="reset-tolerant",
        protocol_cls=ResetTolerantAgreement,
        max_faults=lambda n: max(0, (n - 1) // 6),
        fault_model="strongly adaptive resetting failures (t < n/6)",
    ),
    "ben-or": ProtocolInfo(
        name="ben-or",
        protocol_cls=BenOrAgreement,
        max_faults=lambda n: max(0, (n - 1) // 2),
        fault_model="asynchronous crash failures (t < n/2)",
    ),
    "bracha": ProtocolInfo(
        name="bracha",
        protocol_cls=BrachaAgreement,
        max_faults=lambda n: max(0, (n - 1) // 3),
        fault_model="asynchronous Byzantine failures (t < n/3)",
    ),
}


def get_protocol(name: str) -> ProtocolInfo:
    """Look up a protocol by name.

    Raises:
        KeyError: with the list of known names, when the name is unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown protocol {name!r}; known protocols: {known}")


def available_protocols() -> Dict[str, ProtocolInfo]:
    """All registered protocols, keyed by name."""
    return dict(_REGISTRY)


__all__ = ["ProtocolInfo", "get_protocol", "available_protocols"]
