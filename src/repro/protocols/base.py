"""Protocol interface: the per-processor algorithm abstraction.

The paper models an algorithm as a collection of probability distributions on
(new state, outgoing messages) parameterized by (current state, received
message).  Concretely we express an algorithm as a class whose instances hold
the volatile per-processor state and expose the three kinds of steps the
execution model distinguishes (Section 2):

* a *sending step* (:meth:`Protocol.send_step`) — the processor places a set
  of messages into the message buffer.  A sending step is a *complete
  response to prior events*: two consecutive sending steps with no receive or
  reset in between leave the state unchanged and send nothing the second
  time.  The base class enforces this via a dirty flag.
* a *receiving step* (:meth:`Protocol.receive_step`) — the only step that may
  consume local randomness.
* a *resetting step* (:meth:`Protocol.reset`) — erases the volatile memory,
  preserving only the identity, the input bit, the (write-once) output bit
  and the reset counter, exactly as in the paper's resetting-failure model.

Two structural properties from Section 5 are exposed as class attributes so
that experiments can check which lower bound applies to a protocol:
``forgetful`` (Definition 15) and ``fully_communicative`` (Definition 16).
"""

from __future__ import annotations

import abc
import random
from typing import Any, ClassVar, Dict, List, Optional, Tuple

from repro.determinism import seeded_rng
from repro.simulation.errors import ProtocolViolationError
from repro.simulation.message import Message


class Protocol(abc.ABC):
    """Base class for per-processor agreement protocol logic.

    Subclasses implement :meth:`_compose_messages` (what to send on a sending
    step) and :meth:`_handle_message` (how to react to a delivered message),
    and mutate their volatile state freely.  The write-once output bit is
    managed through :meth:`decide`, which enforces the paper's write-once
    semantics.

    Attributes:
        forgetful: True if each sent message depends only on the input bit
            and on messages received (and randomness sampled) since the
            previous sending event (Definition 15).
        fully_communicative: True if the protocol sends a message to all
            ``n`` processors whenever it has received the most recently sent
            messages from ``n - t`` processors (Definition 16).
    """

    forgetful: ClassVar[bool] = False
    fully_communicative: ClassVar[bool] = False

    def __init__(self, pid: int, n: int, t: int, input_bit: int,
                 rng: Optional[random.Random] = None) -> None:
        if not 0 <= pid < n:
            raise ValueError(f"pid {pid} out of range for n={n}")
        if input_bit not in (0, 1):
            raise ValueError(f"input bit must be 0 or 1, got {input_bit!r}")
        if not 0 <= t < n:
            raise ValueError(f"fault bound t={t} must satisfy 0 <= t < n")
        self.pid = pid
        self.n = n
        self.t = t
        self.input_bit = input_bit
        self.rng = rng if rng is not None else seeded_rng()
        self._output: Optional[int] = None
        self._reset_count = 0
        self._pending_send = True
        self._coin_flips = 0

    # ------------------------------------------------------------------
    # Output-bit management (write-once semantics).
    # ------------------------------------------------------------------
    @property
    def output(self) -> Optional[int]:
        """The write-once output bit, or ``None`` while undecided."""
        return self._output

    @property
    def decided(self) -> bool:
        """Whether this processor has written its output bit."""
        return self._output is not None

    def decide(self, value: int) -> None:
        """Write the output bit.

        Writing the same value twice is a no-op; writing a conflicting value
        raises :class:`ProtocolViolationError` because the output bit is
        write-once in the model.
        """
        if value not in (0, 1):
            raise ProtocolViolationError(
                f"processor {self.pid} attempted to decide {value!r}")
        if self._output is None:
            self._output = value
        elif self._output != value:
            raise ProtocolViolationError(
                f"processor {self.pid} attempted to overwrite output "
                f"{self._output} with {value}")

    # ------------------------------------------------------------------
    # Randomness accounting.
    # ------------------------------------------------------------------
    def coin_flip(self) -> int:
        """Sample a fresh unbiased random bit from the local source."""
        self._coin_flips += 1
        return self.rng.getrandbits(1)

    @property
    def coin_flips(self) -> int:
        """Total number of local coin flips sampled so far."""
        return self._coin_flips

    # ------------------------------------------------------------------
    # The three step types.
    # ------------------------------------------------------------------
    def send_step(self) -> List[Message]:
        """Take a sending step and return the messages placed in the buffer.

        Enforces the "complete response" semantics: if no receiving or
        resetting step has occurred since the previous sending step, the
        state is unchanged and no messages are sent.
        """
        if not self._pending_send:
            return []
        self._pending_send = False
        return list(self._compose_messages())

    def receive_step(self, message: Message) -> None:
        """Take a receiving step: consume a delivered message."""
        self._pending_send = True
        self._handle_message(message)

    def reset(self) -> None:
        """Take a resetting step: erase volatile memory.

        The identity, input bit, output bit and reset counter survive; the
        counter is incremented so that the reset is internally detectable,
        matching the paper's book-keeping device.
        """
        self._reset_count += 1
        self._pending_send = True
        self._on_reset()

    @property
    def reset_count(self) -> int:
        """Number of resetting failures suffered so far."""
        return self._reset_count

    # ------------------------------------------------------------------
    # Hooks for subclasses.
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _compose_messages(self) -> List[Message]:
        """Return the messages to send for the current sending step."""

    @abc.abstractmethod
    def _handle_message(self, message: Message) -> None:
        """React to a delivered message (may sample local randomness)."""

    def _on_reset(self) -> None:
        """Erase volatile state.  Subclasses override to clear their fields."""

    # ------------------------------------------------------------------
    # Introspection used by adversaries and by configuration snapshots.
    # ------------------------------------------------------------------
    def volatile_state(self) -> Tuple:
        """A hashable snapshot of the volatile memory.

        Subclasses should override to expose their full state; the default
        exposes only the bookkeeping fields.  Snapshots feed the Hamming
        distance computations of the lower-bound machinery, so they must be
        deterministic functions of the memory contents.
        """
        return ()

    def state_fingerprint(self) -> Tuple:
        """Full per-processor state used in configuration snapshots.

        Includes the persistent fields the model says survive a reset (input
        bit, output bit, reset counter) plus the volatile state.
        """
        return (self.input_bit, self._output, self._reset_count,
                self.volatile_state())

    @classmethod
    def estimate_from_fingerprint(cls, fingerprint: Tuple) -> Optional[int]:
        """The current estimate encoded in a state fingerprint, if any.

        Configuration snapshots carry state *fingerprints*, not live
        protocol objects, so post-hoc analyses (e.g. the vote-margin
        objective of :mod:`repro.search.objectives`) need the protocol
        class to say where in its volatile state the estimate lives.
        The default returns ``None`` ("not exposed"); protocols with a
        single current estimate should override.
        """
        return None

    def current_estimate(self) -> Optional[int]:
        """The protocol's current preferred bit, if it has one.

        Full-information adversaries (e.g. the split-vote adversary) use this
        hook to inspect what a processor is about to vote for.  Protocols
        without a single current estimate may return ``None``.
        """
        return None

    def waiting_threshold(self) -> Optional[int]:
        """How many same-phase messages the protocol waits for before acting.

        The threshold-voting protocols act on the *first* ``T1`` (or
        ``n - t``) messages they receive for the current round; a
        full-information adversary exploits this by choosing the order of
        the receiving steps inside a window.  Protocols return the waiting
        quorum here so such adversaries can compute what the processor will
        actually see; ``None`` means the quorum is unknown.
        """
        return None

    def will_send(self) -> bool:
        """Whether the processor will send anything at its next sending step.

        A freshly reset processor of the Section 3 algorithm stays silent
        until it has resynchronised; adversaries use this hook to know how
        many messages will actually compete for a receiver's waiting quorum.
        """
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(pid={self.pid}, input={self.input_bit}, "
                f"output={self._output}, resets={self._reset_count})")


class ProtocolFactory:
    """Builds one protocol instance per processor with deterministic seeding.

    Args:
        protocol_cls: the :class:`Protocol` subclass to instantiate.
        n: number of processors.
        t: fault bound handed to each protocol instance.
        kwargs: extra keyword arguments forwarded to the protocol constructor
            (e.g. a :class:`~repro.core.thresholds.ThresholdConfig`).
    """

    def __init__(self, protocol_cls, n: int, t: int, **kwargs: Any) -> None:
        self.protocol_cls = protocol_cls
        self.n = n
        self.t = t
        self.kwargs = dict(kwargs)

    def build(self, inputs: List[int], seed: Optional[int] = None
              ) -> List[Protocol]:
        """Instantiate all ``n`` protocol instances.

        Args:
            inputs: list of ``n`` input bits.
            seed: master seed; each processor gets an independent stream
                derived from it, so executions are reproducible.
        """
        if len(inputs) != self.n:
            raise ValueError(
                f"expected {self.n} input bits, got {len(inputs)}")
        master = seeded_rng(seed)
        protocols = []
        for pid, input_bit in enumerate(inputs):
            rng = random.Random(master.getrandbits(64))
            protocols.append(
                self.protocol_cls(pid=pid, n=self.n, t=self.t,
                                  input_bit=input_bit, rng=rng,
                                  **self.kwargs))
        return protocols

    def properties(self) -> Dict[str, bool]:
        """Structural properties of the protocol class (Definitions 15-16)."""
        return {
            "forgetful": bool(self.protocol_cls.forgetful),
            "fully_communicative": bool(self.protocol_cls.fully_communicative),
        }


__all__ = ["Protocol", "ProtocolFactory"]
