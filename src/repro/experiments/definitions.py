"""The eight registered experiments (E1–E8) of EXPERIMENTS.md.

Each ``_eN_cells`` builder expands a resolved parameter grid into
:class:`~repro.experiments.base.Cell` objects.  **Seed-draw order is part
of the contract**: every call into the master-seeded ``rng`` happens in the
exact order the pre-registry serial loops in
:mod:`repro.analysis.experiments` made it (adversary kwargs before engine
seed, trial by trial), so the legacy wrappers return rows bit-identical to
their historical output at the same master seed.  Do not reorder the
draws.  New experiments are free of this constraint and should prefer
:func:`repro.runner.derive_seed`.
"""

from __future__ import annotations

import random
from functools import partial
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.product_measure import (ProductDistribution,
                                            verify_talagrand)
from repro.analysis.statistics import fit_exponential, summarize_trials
from repro.core.analysis import split_vote_analysis
from repro.core.lower_bound import lower_bound_report
from repro.core.reset_tolerant import ResetTolerantAgreement
from repro.core.talagrand import lower_bound_constants
from repro.core.thresholds import (default_thresholds, max_tolerable_t,
                                   threshold_grid)
from repro.experiments.base import Cell, Experiment, Row
from repro.protocols.ben_or import BenOrAgreement
from repro.protocols.committee import CommitteeElectionProtocol, failure_rate
from repro.runner import (TrialSpec, correctness_flags, measure,
                          message_chain_length, undecided_windows,
                          windows_to_first_decision)
from repro.simulation.trace import ExecutionResult
from repro.workloads.inputs import split, standard_workloads, unanimous


def _seeded_kwargs(rng: random.Random,
                   extra: Optional[Dict] = None) -> Dict:
    """Adversary kwargs with a freshly drawn 32-bit seed."""
    kwargs: Dict[str, Any] = {"seed": rng.getrandbits(32)}
    if extra:
        kwargs.update(extra)
    return kwargs


# ----------------------------------------------------------------------
# E1: Theorem 4 feasibility — correctness and termination sweep.
# ----------------------------------------------------------------------
# The strongly adaptive adversary battery of E1: display name ->
# (registry name, kwargs builder).  Builders draw from the experiment's
# master-seeded stream exactly when a trial is described, preserving the
# historical draw order.
_E1_ADVERSARIES: Tuple[Tuple[str, str, Any], ...] = (
    ("benign", "benign", None),
    ("random", "random-scheduler",
     lambda rng: _seeded_kwargs(rng, {"reset_probability": 0.5})),
    ("silencing", "silencing", None),
    ("split-vote", "split-vote", _seeded_kwargs),
    ("adaptive-resetting", "adaptive-resetting", _seeded_kwargs),
)


def _e1_row(results: Sequence[ExecutionResult], *, n: int, t: int,
            workload: str, adversary: str) -> Row:
    agreement_ok, validity_ok, terminated = correctness_flags(results)
    windows_used = [result.windows_elapsed for result in results]
    return {
        "experiment": "E1",
        "n": n,
        "t": t,
        "workload": workload,
        "adversary": adversary,
        "agreement_ok": agreement_ok,
        "validity_ok": validity_ok,
        "terminated": terminated,
        "mean_windows": sum(windows_used) / len(windows_used),
        "max_windows_observed": max(windows_used),
    }


def _e1_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    cells: List[Cell] = []
    for n in params["ns"]:
        t = max_tolerable_t(n)
        for workload_name, inputs in standard_workloads(
                n, seed=rng.getrandbits(32)).items():
            for display_name, adversary, kwargs_builder in _E1_ADVERSARIES:
                tag = ("E1", n, workload_name, display_name)
                specs = tuple(TrialSpec(
                    protocol="reset-tolerant", adversary=adversary,
                    n=n, t=t, inputs=tuple(inputs),
                    adversary_kwargs=(kwargs_builder(rng)
                                      if kwargs_builder else {}),
                    seed=rng.getrandbits(32),
                    max_windows=params["max_windows"],
                    stop_when="all", tag=tag)
                    for _ in range(params["trials"]))
                cells.append(Cell(
                    key=tag, specs=specs,
                    build_row=partial(_e1_row, n=n, t=t,
                                      workload=workload_name,
                                      adversary=display_name)))
    return cells


# ----------------------------------------------------------------------
# E2: exponential running time against the split-vote adversary.
# ----------------------------------------------------------------------
def _e2_row(results: Sequence[ExecutionResult], *, n: int, t: int,
            trials: int, analytic_windows: float) -> Row:
    # Specs interleave (split, unanimous) per trial; un-interleave them.
    windows = measure(results[0::2], windows_to_first_decision)
    unanimous_windows = measure(results[1::2], windows_to_first_decision)
    summary = summarize_trials(windows)
    return {
        "experiment": "E2",
        "n": n,
        "t": t,
        "inputs": "split",
        "trials": trials,
        "mean_windows": summary.mean,
        "median_windows": summary.median,
        "max_windows": summary.maximum,
        "analytic_expected_windows": analytic_windows,
        "unanimous_mean_windows":
            sum(unanimous_windows) / len(unanimous_windows),
        "fit_growth_rate_per_processor": None,
        "fit_r_squared": None,
    }


def _e2_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    adversary = ("adaptive-resetting" if params["use_resets"]
                 else "split-vote")
    cells: List[Cell] = []
    for n in params["ns"]:
        t = max_tolerable_t(n)
        if t == 0:
            continue
        thresholds = default_thresholds(n, t)
        analytic = split_vote_analysis(thresholds)
        inputs = split(n)
        specs: List[TrialSpec] = []
        for _ in range(params["trials"]):
            specs.append(TrialSpec(
                protocol="reset-tolerant", adversary=adversary,
                n=n, t=t, inputs=tuple(inputs),
                adversary_kwargs=_seeded_kwargs(rng),
                seed=rng.getrandbits(32),
                max_windows=params["max_windows"],
                stop_when="first", tag=("E2", n, "split")))
            specs.append(TrialSpec(
                protocol="reset-tolerant", adversary="split-vote",
                n=n, t=t, inputs=tuple(unanimous(n, 1)),
                adversary_kwargs=_seeded_kwargs(rng),
                seed=rng.getrandbits(32),
                max_windows=params["max_windows"],
                stop_when="first", tag=("E2", n, "unanimous")))
        cells.append(Cell(
            key=("E2", n), specs=tuple(specs),
            build_row=partial(_e2_row, n=n, t=t, trials=params["trials"],
                              analytic_windows=analytic.expected_windows)))
    return cells


def _fit_row(template: Row, xs: Sequence[int],
             ys: Sequence[float]) -> List[Row]:
    """The synthetic exponential-fit row shared by E2 and E4."""
    if len(ys) < 2:
        return []
    fit = fit_exponential(xs, ys)
    row = dict(template)
    row["fit_growth_rate_per_processor"] = fit.b
    row["fit_r_squared"] = fit.r_squared
    return [row]


def _e2_finalize(rows: List[Row], params: Dict[str, Any]) -> List[Row]:
    return _fit_row(
        {"experiment": "E2-fit", "n": None, "t": None, "inputs": "split",
         "trials": params["trials"], "mean_windows": None,
         "median_windows": None, "max_windows": None,
         "analytic_expected_windows": None, "unanimous_mean_windows": None,
         "fit_growth_rate_per_processor": None, "fit_r_squared": None},
        [row["n"] for row in rows], [row["mean_windows"] for row in rows])


# ----------------------------------------------------------------------
# E3: lower-bound machinery checks (Lemmas 9, 11, 14 and Theorem 5 inputs).
# ----------------------------------------------------------------------
def _e3_row(results: Sequence[ExecutionResult], *, n: int, t: int,
            samples: int, separation_trials: int, seed: int) -> Row:
    report = lower_bound_report(
        ResetTolerantAgreement, n=n, t=t, samples=samples,
        separation_trials=separation_trials, seed=seed)
    return {
        "experiment": "E3",
        "n": n,
        "t": t,
        "decision_set_min_distance": report.separation.min_distance,
        "required_separation": report.separation.required,
        "separation_holds": report.separation.satisfied,
        "tau": report.tau,
        "hybrid_best_j": report.hybrid_best.j,
        "hybrid_best_worst_probability": report.hybrid_best.worst,
        "endpoint_worst_probability": report.endpoint_worst,
        "balanced_inputs_ones": sum(report.balanced_inputs.inputs),
        "balanced_zero_probability":
            report.balanced_inputs.zero_probability,
        "balanced_one_probability":
            report.balanced_inputs.one_probability,
    }


def _e3_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    cells: List[Cell] = []
    for n in params["ns"]:
        t = max_tolerable_t(n)
        if t == 0:
            continue
        cells.append(Cell(
            key=("E3", n), specs=(),
            build_row=partial(
                _e3_row, n=n, t=t, samples=params["samples"],
                separation_trials=params["separation_trials"],
                seed=rng.getrandbits(32))))
    return cells


# ----------------------------------------------------------------------
# E4: crash-model lower bound on forgetful, fully communicative algorithms.
# ----------------------------------------------------------------------
def _e4_row(results: Sequence[ExecutionResult], *, n: int, t: int,
            trials: int) -> Row:
    chains = measure(results, message_chain_length)
    windows = measure(results, windows_to_first_decision)
    chain_summary = summarize_trials(chains)
    return {
        "experiment": "E4",
        "protocol": "ben-or",
        "n": n,
        "t": t,
        "trials": trials,
        "mean_message_chain": chain_summary.mean,
        "max_message_chain": chain_summary.maximum,
        "mean_windows": sum(windows) / len(windows),
        "forgetful": BenOrAgreement.forgetful,
        "fully_communicative": BenOrAgreement.fully_communicative,
        "fit_growth_rate_per_processor": None,
        "fit_r_squared": None,
    }


def _e4_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    cells: List[Cell] = []
    for n in params["ns"]:
        t = max(1, int(params["fault_fraction"] * n))
        if t >= n / 2:
            t = (n - 1) // 2
        inputs = split(n)
        specs = tuple(TrialSpec(
            protocol="ben-or", adversary="crash-split-vote",
            n=n, t=t, inputs=tuple(inputs),
            adversary_kwargs=_seeded_kwargs(rng),
            seed=rng.getrandbits(32), max_windows=params["max_windows"],
            stop_when="first", tag=("E4", n))
            for _ in range(params["trials"]))
        cells.append(Cell(
            key=("E4", n), specs=specs,
            build_row=partial(_e4_row, n=n, t=t,
                              trials=params["trials"])))
    return cells


def _e4_finalize(rows: List[Row], params: Dict[str, Any]) -> List[Row]:
    return _fit_row(
        {"experiment": "E4-fit", "protocol": "ben-or", "n": None, "t": None,
         "trials": params["trials"], "mean_message_chain": None,
         "max_message_chain": None, "mean_windows": None, "forgetful": True,
         "fully_communicative": True,
         "fit_growth_rate_per_processor": None, "fit_r_squared": None},
        [row["n"] for row in rows],
        [row["mean_message_chain"] for row in rows])


# ----------------------------------------------------------------------
# E5: contrast with committee election (fast but non-adaptive, fallible).
# ----------------------------------------------------------------------
def _e5_row(results: Sequence[ExecutionResult], *, n: int, t: int,
            trials: int, nonadaptive_seed: int, adaptive_seed: int,
            sample_seed: int) -> Row:
    protocol = CommitteeElectionProtocol(n=n, t=t)
    inputs = split(n)
    nonadaptive_failures = failure_rate(protocol, inputs, trials=trials,
                                        adaptive=False,
                                        seed=nonadaptive_seed)
    adaptive_failures = failure_rate(protocol, inputs, trials=trials,
                                     adaptive=True, seed=adaptive_seed)
    sample = protocol.run(inputs, adaptive=False, seed=sample_seed)
    # The adaptive-safe alternative: the reset-tolerant algorithm's
    # analytic expected windows at the Theorem 4 fault bound.
    rt_t = max_tolerable_t(n)
    analytic_windows = (split_vote_analysis(default_thresholds(n, rt_t))
                        .expected_windows if rt_t > 0 else float("nan"))
    return {
        "experiment": "E5",
        "n": n,
        "t": t,
        "committee_size": protocol.committee_size,
        "committee_rounds": sample.communication_rounds,
        "committee_layers": sample.layers,
        "nonadaptive_failure_rate": nonadaptive_failures,
        "adaptive_failure_rate": adaptive_failures,
        "adaptive_safe_expected_windows": analytic_windows,
    }


def _e5_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    cells: List[Cell] = []
    for n in params["ns"]:
        t = max(1, int(params["fault_fraction"] * n))
        cells.append(Cell(
            key=("E5", n), specs=(),
            build_row=partial(
                _e5_row, n=n, t=t, trials=params["trials"],
                nonadaptive_seed=rng.getrandbits(32),
                adaptive_seed=rng.getrandbits(32),
                sample_seed=rng.getrandbits(32))))
    return cells


# ----------------------------------------------------------------------
# E6: baseline protocols at their classical resilience bounds.
# ----------------------------------------------------------------------
def _e6_ben_or_row(results: Sequence[ExecutionResult], *, n: int, t: int,
                   workload: str, adversary: str) -> Row:
    agreement_ok, validity_ok, terminated = correctness_flags(results)
    windows_used = [result.windows_elapsed for result in results]
    return {
        "experiment": "E6",
        "protocol": "ben-or",
        "n": n,
        "t": t,
        "workload": workload,
        "adversary": adversary,
        "agreement_ok": agreement_ok,
        "validity_ok": validity_ok,
        "terminated": terminated,
        "mean_windows": sum(windows_used) / len(windows_used),
    }


def _e6_bracha_row(results: Sequence[ExecutionResult], *, n: int, t: int,
                   workload: str, adversary: str) -> Row:
    # Byzantine runs judge correctness over the honest processors only:
    # corrupted ones may "decide" anything.
    agreement_ok = validity_ok = terminated = True
    for result in results:
        honest = range(t, result.n)
        honest_outputs = {result.outputs[pid] for pid in honest}
        honest_values = {value for value in honest_outputs
                         if value is not None}
        honest_inputs = {result.inputs[pid] for pid in honest}
        agreement_ok &= len(honest_values) <= 1
        validity_ok &= honest_values.issubset(honest_inputs) \
            or not honest_values
        terminated &= None not in honest_outputs
    return {
        "experiment": "E6",
        "protocol": "bracha",
        "n": n,
        "t": t,
        "workload": workload,
        "adversary": adversary,
        "agreement_ok": agreement_ok,
        "validity_ok": validity_ok,
        "terminated": terminated,
        "mean_windows": None,
    }


def _e6_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    cells: List[Cell] = []
    for n in params["ben_or_ns"]:
        t = (n - 1) // 2
        adversaries = (
            ("benign", "benign", None),
            ("crash-at-start", "static-crash",
             lambda rng, t=t: {"crash_schedule": {0: tuple(range(t))}}),
            ("crash-at-decision", "crash-at-decision", None),
            ("random", "random-scheduler", _seeded_kwargs),
        )
        for workload_name, inputs in (("split", split(n)),
                                      ("unanimous-1", unanimous(n, 1))):
            for display_name, adversary, kwargs_builder in adversaries:
                tag = ("E6", "ben-or", n, workload_name, display_name)
                specs = tuple(TrialSpec(
                    protocol="ben-or", adversary=adversary,
                    n=n, t=t, inputs=tuple(inputs),
                    adversary_kwargs=(kwargs_builder(rng)
                                      if kwargs_builder else {}),
                    seed=rng.getrandbits(32),
                    max_windows=params["max_windows"],
                    stop_when="all", tag=tag)
                    for _ in range(params["trials"]))
                cells.append(Cell(
                    key=tag, specs=specs,
                    build_row=partial(_e6_ben_or_row, n=n, t=t,
                                      workload=workload_name,
                                      adversary=display_name)))
    for n in params["bracha_ns"]:
        t = (n - 1) // 3
        for workload_name, inputs in (("split", split(n)),
                                      ("unanimous-0", unanimous(n, 0))):
            for strategy_name in ("silent", "flip", "equivocate",
                                  "random-values"):
                tag = ("E6", "bracha", n, workload_name, strategy_name)
                specs = []
                for _ in range(params["trials"]):
                    engine_seed = rng.getrandbits(32)
                    specs.append(TrialSpec(
                        protocol="bracha", adversary="byzantine",
                        n=n, t=t, inputs=tuple(inputs), seed=engine_seed,
                        adversary_kwargs={"corrupted": tuple(range(t)),
                                          "strategy": strategy_name,
                                          "seed": rng.getrandbits(32)},
                        engine="step", max_steps=params["max_steps"],
                        stop_when="all", tag=tag))
                cells.append(Cell(
                    key=tag, specs=tuple(specs),
                    build_row=partial(_e6_bracha_row, n=n, t=t,
                                      workload=workload_name,
                                      adversary=strategy_name)))
    return cells


# ----------------------------------------------------------------------
# E7: threshold ablation.
# ----------------------------------------------------------------------
def _e7_row(results: Sequence[ExecutionResult], *, n: int, t: int, config,
            adversary: str, trials: int) -> Row:
    violations = config.violations()
    agreement_ok, validity_ok, _ = correctness_flags(results)
    windows_used = [result.windows_elapsed for result in results]
    return {
        "experiment": "E7",
        "n": n,
        "t": t,
        "T1": config.t1,
        "T2": config.t2,
        "T3": config.t3,
        "constraints_ok": config.valid,
        "violated": "; ".join(violations) if violations else "-",
        "adversary": adversary,
        "agreement_ok": agreement_ok,
        "validity_ok": validity_ok,
        "decided_runs": sum(int(result.decided) for result in results),
        "trials": trials,
        "mean_windows": sum(windows_used) / len(windows_used),
    }


def _e7_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    n = params["n"]
    t = max_tolerable_t(n)
    cells: List[Cell] = []
    # The grid can contain duplicate (T1, T2, T3) configurations, so the
    # cell key carries the grid index to keep the cells separate.
    for config_index, config in enumerate(threshold_grid(n, t)):
        for adversary in ("split-vote", "polarizing", "adaptive-resetting"):
            tag = ("E7", config_index, adversary)
            specs = tuple(TrialSpec(
                protocol="reset-tolerant", adversary=adversary,
                n=n, t=t, inputs=tuple(split(n)),
                adversary_kwargs=_seeded_kwargs(rng),
                protocol_kwargs={"thresholds": config,
                                 "validate_thresholds": False},
                seed=rng.getrandbits(32),
                max_windows=params["max_windows"],
                stop_when="all", tag=tag)
                for _ in range(params["trials"]))
            cells.append(Cell(
                key=tag, specs=specs,
                build_row=partial(_e7_row, n=n, t=t, config=config,
                                  adversary=adversary,
                                  trials=params["trials"])))
    return cells


# ----------------------------------------------------------------------
# E8: lower-bound constants and Talagrand spot checks.
# ----------------------------------------------------------------------
def _e8_curve_row(results: Sequence[ExecutionResult], *, c: float,
                  n: int) -> Row:
    constants = lower_bound_constants(c)
    return {
        "experiment": "E8",
        "c": round(c, 4),
        "n": n,
        "alpha": constants.alpha,
        "C": constants.big_c,
        "predicted_windows": constants.predicted_windows(n),
        "success_probability": constants.success_probability(n),
        "set": None,
        "radius": None,
        "P[A]*(1-P[B(A,d)])": None,
        "talagrand_bound": None,
        "inequality_holds": None,
    }


def _e8_talagrand_row(results: Sequence[ExecutionResult], *, n: int,
                      k: int, d: int) -> Row:
    distribution = ProductDistribution.uniform_bits(n)
    points = [point for point, _ in distribution.enumerate_support()
              if sum(point) <= k]
    check = verify_talagrand(distribution, points, radius=d, exact=True)
    return {
        "experiment": "E8-talagrand",
        "c": None,
        "n": n,
        "alpha": None,
        "C": None,
        "predicted_windows": None,
        "success_probability": None,
        "set": f"at most {k} ones",
        "radius": d,
        "P[A]*(1-P[B(A,d)])": check.product,
        "talagrand_bound": check.bound,
        "inequality_holds": check.satisfied,
    }


def _e8_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    cells: List[Cell] = []
    for c in params["cs"]:
        for n in params["ns"]:
            cells.append(Cell(
                key=("E8", round(c, 4), n), specs=(),
                build_row=partial(_e8_curve_row, c=c, n=n)))
    # Talagrand spot check on a concrete product space: n fair coins, the
    # set A of points with at most k ones, radius d.
    for n, k, d in ((10, 2, 3), (11, 3, 4), (12, 3, 4)):
        cells.append(Cell(
            key=("E8-talagrand", n, k, d), specs=(),
            build_row=partial(_e8_talagrand_row, n=n, k=k, d=d)))
    return cells


# ----------------------------------------------------------------------
# E9: guided adversary search vs sampled and hand-written adversaries.
# ----------------------------------------------------------------------
# The randomized/adaptive adversaries the searched schedule is compared
# against, at a matched evaluation budget and on the same fixed engine
# seed, so every row answers "how undecided can this adversary keep the
# protocol on this execution context".
_E9_BASELINES: Tuple[str, ...] = ("schedule-fuzzer", "random-scheduler",
                                  "split-vote", "adaptive-resetting",
                                  "polarizing")


def _e9_search_params(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.search import resolve_search_params

    # verify=False: E9 measures hardness, not invariants, and skipping
    # trace recording roughly halves the searched cell's cost.
    return resolve_search_params(
        protocol="reset-tolerant", strategy=params["strategy"],
        objective="undecided-rounds", generations=params["generations"],
        population=params["population"], windows=params["windows"],
        seed=params["seed"], n=params["n"], verify=False)


def _e9_row_template(params: Dict[str, Any], adversary: str,
                     n: int, t: int) -> Row:
    return {
        "experiment": "E9",
        "n": n,
        "t": t,
        "adversary": adversary,
        "evaluations": params["generations"] * params["population"],
        "best_undecided_windows": None,
        "mean_undecided_windows": None,
        "decided_fraction": None,
        "analytic_expected_windows": None,
    }


def _e9_searched_row(results: Sequence[ExecutionResult], *,
                     params: Dict[str, Any], n: int, t: int) -> Row:
    # The search campaign's adaptive generations cannot be pre-declared
    # as specs, so this cell is analytic-style (no runner specs) and the
    # campaign fans its own generations out instead.  Campaign rows are
    # bit-identical across worker counts, so using the default worker
    # pool here never changes the row.
    from repro.search import run_search_campaign

    report = run_search_campaign(_e9_search_params(params), workers=None)
    scores = [row["score"] for row in report.rows]
    row = _e9_row_template(params, "searched", n, t)
    row["best_undecided_windows"] = report.best_score
    row["mean_undecided_windows"] = sum(scores) / len(scores)
    row["decided_fraction"] = \
        sum(1 for r in report.rows if r["decided"]) / len(report.rows)
    return row


def _e9_baseline_row(results: Sequence[ExecutionResult], *,
                     params: Dict[str, Any], adversary: str, n: int,
                     t: int) -> Row:
    scores = measure(results, undecided_windows)
    row = _e9_row_template(params, adversary, n, t)
    row["best_undecided_windows"] = max(scores)
    row["mean_undecided_windows"] = sum(scores) / len(scores)
    row["decided_fraction"] = \
        sum(1 for result in results if result.decided) / len(results)
    return row


def _e9_analytic_row(results: Sequence[ExecutionResult], *,
                     params: Dict[str, Any], n: int, t: int) -> Row:
    row = _e9_row_template(params, "analytic (split-vote)", n, t)
    row["evaluations"] = None
    row["analytic_expected_windows"] = split_vote_analysis(
        default_thresholds(n, t)).expected_windows
    return row


def _e9_cells(params: Dict[str, Any], rng: random.Random) -> List[Cell]:
    from repro.search import campaign_sampler, campaign_setup

    n = params["n"]
    t = max_tolerable_t(n)
    search_params = _e9_search_params(params)
    setup = campaign_setup(search_params)
    budget = params["generations"] * params["population"]
    cells: List[Cell] = [Cell(
        key=("E9", "searched"), specs=(),
        build_row=partial(_e9_searched_row, params=params, n=n, t=t))]
    sampler = campaign_sampler(search_params)
    for adversary in _E9_BASELINES:
        # The fuzzer baseline must sample from the same window
        # distribution the search mutates with, or the searched-vs-
        # sampled gap would partly measure a distribution mismatch.
        fuzz_kwargs = (
            {"reset_probability": sampler.reset_probability,
             "deliver_last_probability": sampler.deliver_last_probability}
            if adversary == "schedule-fuzzer" else {})
        specs = tuple(TrialSpec(
            protocol="reset-tolerant", adversary=adversary,
            n=n, t=t, inputs=setup.inputs,
            adversary_kwargs={"seed": rng.getrandbits(32), **fuzz_kwargs},
            seed=setup.seed, max_windows=params["windows"],
            stop_when="first", tag=("E9", adversary))
            for _ in range(budget))
        cells.append(Cell(
            key=("E9", adversary), specs=specs,
            build_row=partial(_e9_baseline_row, params=params,
                              adversary=adversary, n=n, t=t)))
    cells.append(Cell(
        key=("E9", "analytic"), specs=(),
        build_row=partial(_e9_analytic_row, params=params, n=n, t=t)))
    return cells


# ----------------------------------------------------------------------
# The experiment objects.
# ----------------------------------------------------------------------
EXPERIMENTS: Tuple[Experiment, ...] = (
    Experiment(
        name="E1", slug="feasibility",
        title="Theorem 4 feasibility sweep",
        description=(
            "Correctness and termination of the reset-tolerant algorithm "
            "(Theorem 4) for every n at the largest admissible t, every "
            "standard workload, and a battery of strongly adaptive "
            "adversaries (benign, random, silencing, split-vote, "
            "adaptive-resetting)."),
        defaults={"ns": (12, 18, 24), "trials": 3, "max_windows": 60000,
                  "seed": 0},
        quick_overrides={"ns": (12,), "trials": 1, "max_windows": 3000},
        build_cells=_e1_cells,
        row_schema=("experiment", "n", "t", "workload", "adversary",
                    "agreement_ok", "validity_ok", "terminated",
                    "mean_windows", "max_windows_observed"),
    ),
    Experiment(
        name="E2", slug="exponential-rounds",
        title="Exponential windows vs n (split inputs)",
        description=(
            "Acceptable windows until the first decision under the "
            "vote-splitting strongly adaptive adversary, against the "
            "analytic prediction of split_vote_analysis and an "
            "exponential fit across n — the Section 3 slowdown."),
        defaults={"ns": (12, 16, 20, 24), "trials": 5,
                  "max_windows": 200000, "use_resets": True, "seed": 0},
        quick_overrides={"ns": (12, 16), "trials": 3},
        build_cells=_e2_cells,
        finalize=_e2_finalize,
        row_schema=("experiment", "n", "t", "inputs", "trials",
                    "mean_windows", "median_windows", "max_windows",
                    "analytic_expected_windows", "unanimous_mean_windows",
                    "fit_growth_rate_per_processor", "fit_r_squared"),
    ),
    Experiment(
        name="E3", slug="lower-bound",
        title="Lower-bound machinery checks",
        description=(
            "Numerical checks of the Theorem 5 ingredients at small n: "
            "Hamming separation of the decision sets (Lemma 11), the "
            "Talagrand threshold tau, the hybrid-window interpolation "
            "(Lemma 14) and the balanced-input interpolation."),
        defaults={"ns": (8, 12), "samples": 6, "separation_trials": 8,
                  "seed": 0},
        quick_overrides={"ns": (8,), "samples": 4, "separation_trials": 6},
        build_cells=_e3_cells,
        parallel=False,
        row_schema=("experiment", "n", "t", "decision_set_min_distance",
                    "required_separation", "separation_holds", "tau",
                    "hybrid_best_j", "hybrid_best_worst_probability",
                    "endpoint_worst_probability", "balanced_inputs_ones",
                    "balanced_zero_probability",
                    "balanced_one_probability"),
    ),
    Experiment(
        name="E4", slug="crash-forgetful",
        title="Crash-model message chains (Ben-Or)",
        description=(
            "Message-chain length until the first decision of Ben-Or (a "
            "forgetful, fully communicative algorithm) under the "
            "vote-splitting crash-model adversary, with an exponential "
            "fit across n — Theorem 17."),
        defaults={"ns": (9, 13, 17, 21), "trials": 10,
                  "fault_fraction": 0.25, "max_windows": 200000, "seed": 0},
        quick_overrides={"ns": (9, 13), "trials": 4},
        build_cells=_e4_cells,
        finalize=_e4_finalize,
        row_schema=("experiment", "protocol", "n", "t", "trials",
                    "mean_message_chain", "max_message_chain",
                    "mean_windows", "forgetful", "fully_communicative",
                    "fit_growth_rate_per_processor", "fit_r_squared"),
    ),
    Experiment(
        name="E5", slug="committee",
        title="Committee election contrast",
        description=(
            "Kapron-style committee election: fast (polylog rounds) and "
            "correct against a non-adaptive adversary, but defeated "
            "almost surely by an adaptive one — versus the adaptive-safe "
            "algorithm's analytic exponential window count."),
        defaults={"ns": (32, 64, 128), "trials": 40, "fault_fraction": 0.2,
                  "seed": 0},
        quick_overrides={"ns": (32, 64), "trials": 25},
        build_cells=_e5_cells,
        parallel=False,
        row_schema=("experiment", "n", "t", "committee_size",
                    "committee_rounds", "committee_layers",
                    "nonadaptive_failure_rate", "adaptive_failure_rate",
                    "adaptive_safe_expected_windows"),
    ),
    Experiment(
        name="E6", slug="baselines",
        title="Baselines (Ben-Or crash, Bracha Byzantine)",
        description=(
            "Correctness of the baseline protocols at their classical "
            "resilience bounds: Ben-Or under crash failures (t < n/2) on "
            "the window engine, Bracha under Byzantine strategies "
            "(t < n/3) on the step engine."),
        defaults={"ben_or_ns": (9, 15), "bracha_ns": (7, 10), "trials": 3,
                  "max_windows": 5000, "max_steps": 400000, "seed": 0},
        quick_overrides={"ben_or_ns": (9,), "bracha_ns": (7,),
                         "trials": 1},
        build_cells=_e6_cells,
        row_schema=("experiment", "protocol", "n", "t", "workload",
                    "adversary", "agreement_ok", "validity_ok",
                    "terminated", "mean_windows"),
    ),
    Experiment(
        name="E7", slug="threshold-ablation",
        title="Threshold ablation",
        description=(
            "Effect of violating each Theorem 4 threshold constraint: "
            "valid (T1, T2, T3) settings never break agreement or "
            "validity, while selected violations lead to disagreement or "
            "non-termination within the window budget."),
        defaults={"n": 24, "trials": 4, "max_windows": 3000, "seed": 0},
        quick_overrides={"n": 18, "trials": 2, "max_windows": 1200},
        build_cells=_e7_cells,
        row_schema=("experiment", "n", "t", "T1", "T2", "T3",
                    "constraints_ok", "violated", "adversary",
                    "agreement_ok", "validity_ok", "decided_runs",
                    "trials", "mean_windows"),
    ),
    Experiment(
        name="E8", slug="constants",
        title="Theorem 5 constants + Talagrand checks",
        description=(
            "The Theorem 5 constants alpha = c^2/9 and C, the predicted "
            "window curves C * exp(alpha * n) with the adversary's "
            "success probability, plus exact Talagrand (Lemma 9) "
            "verifications on concrete product spaces."),
        defaults={"cs": (0.05, 0.1, 1.0 / 6.0), "ns": (50, 100, 200, 400),
                  "seed": 0},
        quick_overrides={"cs": (0.1, 1.0 / 6.0), "ns": (50, 100)},
        build_cells=_e8_cells,
        parallel=False,
        row_schema=("experiment", "c", "n", "alpha", "C",
                    "predicted_windows", "success_probability", "set",
                    "radius", "P[A]*(1-P[B(A,d)])", "talagrand_bound",
                    "inequality_holds"),
    ),
    Experiment(
        name="E9", slug="adversary-search",
        title="Guided adversary search vs sampled/hand-written adversaries",
        description=(
            "How undecided each adversary keeps the reset-tolerant "
            "protocol on one fixed execution context at a matched "
            "evaluation budget: a guided `repro.search` campaign "
            "(hill-climbing over admissible schedules, undecided-rounds "
            "objective) against equal-budget schedule-fuzzer sampling, "
            "the hand-written strongly adaptive adversaries, and the "
            "analytic exponential-window prediction of "
            "split_vote_analysis."),
        defaults={"n": 12, "generations": 25, "population": 8,
                  "windows": 240, "strategy": "hill-climb", "seed": 0},
        quick_overrides={"generations": 5, "population": 4, "windows": 60},
        build_cells=_e9_cells,
        row_schema=("experiment", "n", "t", "adversary", "evaluations",
                    "best_undecided_windows", "mean_undecided_windows",
                    "decided_fraction", "analytic_expected_windows"),
    ),
)


__all__ = ["EXPERIMENTS"]
