"""The declarative experiment model: cells, experiments, and the run loop.

An :class:`Experiment` describes one table of EXPERIMENTS.md as data: a
name, a parameter grid (full-size defaults plus quick-mode overrides), a
cell builder that expands the grid into :class:`Cell` objects, a row
schema, and an optional finalizer for synthetic rows (the exponential-fit
rows of E2/E4).  The registry in :mod:`repro.experiments.registry` mirrors
the protocol and adversary registries, so every front end — the
``python -m repro`` CLI, the benchmark suite, the examples and the legacy
wrappers in :mod:`repro.analysis.experiments` — runs experiments through
the single code path implemented here.

A :class:`Cell` is one output row: a stable identity key, the
:class:`~repro.runner.spec.TrialSpec` batch backing the row (empty for
analytic experiments such as E3/E5/E8), and a ``build_row`` callback that
turns the cell's execution results into the row dict.  Because every seed
is drawn while cells are *built* (in the exact order the pre-registry
serial loops drew them), which cells later *execute* never perturbs any
other cell — that is what makes both the bit-identical legacy wrappers and
the results store's cell-level resume possible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.runner import TrialSpec, iter_trials, run_trials
from repro.runner.health import RunHealth, TrialFailure
from repro.simulation.trace import ExecutionResult

Row = Dict[str, Any]
CellBuilder = Callable[[Dict[str, Any], random.Random], List["Cell"]]
Finalizer = Callable[[List[Row], Dict[str, Any]], List[Row]]


@dataclass
class Cell:
    """One experiment cell: the trials behind one output row.

    Attributes:
        key: stable, JSON-serialisable identity of the cell within its run
            (e.g. ``("E2", 16)``); the results store uses it to recognise
            already-completed cells on resume.
        specs: the trial specs backing the row, in submission order.
            Analytic cells carry no specs and compute their row directly.
        build_row: maps the cell's results (aligned with ``specs``) to the
            row dict.  All randomness must come from seeds drawn at
            cell-build time, never at row-build time.
    """

    key: Tuple[Any, ...]
    specs: Tuple[TrialSpec, ...]
    build_row: Callable[[Sequence[ExecutionResult]], Row]


class RowStore:
    """The storage interface :meth:`Experiment.run` writes through.

    :class:`repro.results.RunStore` is the real implementation; the base
    class documents the contract and doubles as an in-memory null store.
    """

    def completed_rows(self) -> Dict[str, Row]:
        """Rows already on disk, keyed by :func:`cell_key_id`."""
        return {}

    def write_row(self, index: int, key: Tuple[Any, ...], row: Row) -> None:
        """Persist one freshly computed row."""

    def record_health(self, health: Optional["RunHealth"]) -> None:
        """Persist one execution's run-health ledger (no-op by default)."""


def cell_key_id(key: Sequence[Any]) -> str:
    """The canonical string identity of a cell key (JSON list syntax)."""
    import json

    return json.dumps(list(key))


@dataclass(frozen=True)
class Experiment:
    """A declarative experiment: parameter grid, cell expansion, schema.

    Attributes:
        name: canonical registry key ("E1" ... "E8").
        slug: human-readable alias ("feasibility", "exponential-rounds"...).
        title: one-line table title.
        description: what the experiment reproduces, for EXPERIMENTS.md.
        defaults: the full-size (paper-scale) parameter grid.  Always
            includes ``seed``, the master seed.
        quick_overrides: parameter overrides for ``--quick`` smoke runs.
        build_cells: expands resolved parameters into cells, drawing every
            per-trial seed from the master-seeded stream as it goes.
        row_schema: the exact key set of every row the experiment emits.
        finalize: optional synthesiser of extra rows (fits) computed from
            the data rows; re-applied when rendering stored runs, so
            synthetic rows are never persisted.
        parallel: whether the experiment fans trials out through
            :mod:`repro.runner` (False for the analytic experiments).
    """

    name: str
    slug: str
    title: str
    description: str
    defaults: Mapping[str, Any]
    quick_overrides: Mapping[str, Any]
    build_cells: CellBuilder
    row_schema: Tuple[str, ...]
    finalize: Optional[Finalizer] = None
    parallel: bool = True

    def resolve_params(self, params: Optional[Mapping[str, Any]] = None,
                       quick: bool = False) -> Dict[str, Any]:
        """Merge defaults, quick overrides and explicit parameters."""
        merged: Dict[str, Any] = dict(self.defaults)
        if quick:
            merged.update(self.quick_overrides)
        if params:
            unknown = set(params) - set(merged)
            if unknown:
                known = ", ".join(sorted(merged))
                raise ValueError(
                    f"unknown parameter(s) {sorted(unknown)} for "
                    f"{self.name}; known parameters: {known}")
            merged.update(params)
        return merged

    def cells(self, params: Optional[Mapping[str, Any]] = None,
              quick: bool = False) -> List[Cell]:
        """Expand the (resolved) parameter grid into cells."""
        merged = self.resolve_params(params, quick=quick)
        rng = random.Random(merged["seed"])
        return self.build_cells(merged, rng)

    def run(self, params: Optional[Mapping[str, Any]] = None, *,
            quick: bool = False, workers: Optional[int] = None,
            store: Optional[RowStore] = None,
            policy: Optional[Any] = None,
            health: Optional[RunHealth] = None,
            backend: Optional[str] = None,
            telemetry: Optional[Any] = None) -> List[Row]:
        """Run the experiment and return its rows.

        Without a ``store`` the whole spec batch goes through one
        :func:`repro.runner.run_trials` call.  With a ``store``, cells
        whose rows the store already holds are skipped entirely (the
        resume path) and the remaining cells' specs are submitted as one
        streamed batch — full worker fan-out, with each row written to
        disk the moment its cell's results arrive.  Both paths produce
        identical rows because every seed is fixed at cell-build time.

        Execution always goes through the supervising executor
        (:class:`~repro.runner.supervisor.SupervisedRunner`): retries and
        broken-pool recovery are on by default, tunable via ``policy``.
        A cell whose trials exhausted every recovery rung yields no row —
        its failure is recorded in ``health`` (and, with a store, in the
        manifest's ``run_health`` block) instead of killing the run; a
        later resume retries exactly the missing cells.

        ``backend`` selects the execution backend: ``"batched"`` (or
        ``"auto"`` with numpy present) routes vectorizable spec groups
        through :class:`~repro.batched.runner.BatchedRunner`, with
        bit-identical results by contract.

        ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry`
        recorder: each pending cell's consumption becomes a ``cell``
        span and the expected trial total is gauged up front.  Rows are
        bit-identical with or without it.
        """
        from repro.runner.supervisor import ExecutionPolicy

        merged = self.resolve_params(params, quick=quick)
        rng = random.Random(merged["seed"])
        cells = self.build_cells(merged, rng)
        if policy is None:
            policy = ExecutionPolicy()
        if health is None:
            health = RunHealth()
        rows: List[Row] = []
        if store is None:
            batch = [spec for cell in cells for spec in cell.specs]
            if telemetry is not None:
                telemetry.gauge("trials_total", len(batch))
            results = run_trials(batch, workers=workers, policy=policy,
                                 health=health, backend=backend,
                                 telemetry=telemetry)
            offset = 0
            for cell in cells:
                chunk = results[offset:offset + len(cell.specs)]
                offset += len(cell.specs)
                if not _cell_failed(chunk):
                    rows.append(cell.build_row(chunk))
        else:
            completed = store.completed_rows()
            pending = [(index, cell) for index, cell in enumerate(cells)
                       if cell_key_id(cell.key) not in completed]
            if telemetry is not None:
                telemetry.gauge("cells_total", len(cells))
                telemetry.gauge("trials_total", sum(
                    len(cell.specs) for _, cell in pending))
            stream = iter_trials(
                [spec for _, cell in pending for spec in cell.specs],
                workers=workers, policy=policy, health=health,
                backend=backend, telemetry=telemetry)
            fresh: Dict[int, Row] = {}
            for index, cell in pending:
                if telemetry is not None:
                    # Chunk/trial spans recorded while this cell's
                    # results are consumed nest under its span; a chunk
                    # crossing cell boundaries books under the cell that
                    # consumed it (documented in PERFORMANCE.md).
                    with telemetry.span("cell", cell=list(cell.key)):
                        chunk = [next(stream) for _ in cell.specs]
                else:
                    chunk = [next(stream) for _ in cell.specs]
                if _cell_failed(chunk):
                    # The failure is already in the health ledger; the
                    # cell stays unwritten so a resume retries it.
                    continue
                row = cell.build_row(chunk)
                store.write_row(index, cell.key, row)
                fresh[index] = row
            for index, cell in enumerate(cells):
                stored = completed.get(cell_key_id(cell.key))
                row = fresh.get(index) if stored is None else stored
                if row is not None:
                    rows.append(row)
            store.record_health(health)
        if self.finalize is not None:
            rows = rows + self.finalize(rows, merged)
        return rows


def _cell_failed(chunk: Sequence[Any]) -> bool:
    """Whether any trial in a cell's result chunk failed for good."""
    return any(isinstance(item, TrialFailure) for item in chunk)


__all__ = ["Cell", "Experiment", "Row", "RowStore", "cell_key_id"]
