"""Declarative experiment registry for the EXPERIMENTS.md tables.

Every experiment of the reproduction (E1–E8) is described as data — an
:class:`~repro.experiments.base.Experiment` with a parameter grid, a cell
builder over :mod:`repro.runner` trial specs, a row schema and an optional
finalizer — and registered by name, mirroring the protocol registry
(:mod:`repro.protocols.registry`) and the adversary registry
(:mod:`repro.adversaries.registry`).  The ``python -m repro`` CLI, the
benchmark suite, the examples and the legacy wrappers in
:mod:`repro.analysis.experiments` all run experiments through
:meth:`Experiment.run`, the one grid-expansion path.

Quickstart::

    from repro.experiments import get_experiment

    rows = get_experiment("E2").run(quick=True)   # or params={...}
"""

from repro.experiments.base import (Cell, Experiment, Row, RowStore,
                                    cell_key_id)
from repro.experiments.registry import (available_experiments,
                                        get_experiment, register)

__all__ = [
    "Cell",
    "Experiment",
    "Row",
    "RowStore",
    "cell_key_id",
    "available_experiments",
    "get_experiment",
    "register",
]
