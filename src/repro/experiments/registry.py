"""The experiment registry, mirroring the protocol/adversary registries.

Experiments are registered under their canonical EXPERIMENTS.md name
("E1" ... "E8") and additionally resolvable by slug ("feasibility",
"exponential-rounds", ...).  Lookups are case-insensitive, so
``repro run e2`` works from the CLI.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.base import Experiment
from repro.experiments.definitions import EXPERIMENTS

_REGISTRY: Dict[str, Experiment] = {}
_ALIASES: Dict[str, str] = {}


def register(experiment: Experiment) -> None:
    """Add an experiment to the registry (name and slug must be free)."""
    for key in (experiment.name.lower(), experiment.slug.lower()):
        if key in _REGISTRY or key in _ALIASES:
            raise ValueError(f"experiment key {key!r} already registered")
    _REGISTRY[experiment.name.lower()] = experiment
    _ALIASES[experiment.slug.lower()] = experiment.name.lower()


def get_experiment(name: str) -> Experiment:
    """Look up an experiment by canonical name or slug.

    Raises:
        KeyError: with the list of known names, when the name is unknown.
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(experiment.name
                          for experiment in available_experiments())
        raise KeyError(
            f"unknown experiment {name!r}; known experiments: {known}")


def available_experiments() -> List[Experiment]:
    """All registered experiments, in registration (E1..E8) order."""
    return list(_REGISTRY.values())


for _experiment in EXPERIMENTS:
    register(_experiment)


__all__ = ["register", "get_experiment", "available_experiments"]
