"""Persistent, resumable experiment results — plus the query layer.

One run = one content-addressed directory holding a ``manifest.json``
(experiment name, parameters, master seed, workers, wall time, package
version) and a ``rows.jsonl`` of streamed data rows.  Rerunning the same
configuration reopens the same directory and skips every cell whose row is
already on disk.

On completion each run is *compacted*: the jsonl rows are rewritten into
a verified-lossless columnar copy (Parquet with pyarrow, a pure-JSON
column layout otherwise — :mod:`repro.results.columnar`), which is what
``repro query`` (:mod:`repro.results.query`, SQL over every run through
DuckDB or the built-in fallback engine) and ``repro report``
(:mod:`repro.results.report`, percentile tables per cell plus recomputed
finalizer rows) scan.  ``rows.jsonl`` stays the append-only write path
and the ground truth — see PERFORMANCE.md ("The results workflow" and
"Query & report").
"""

from repro.results.columnar import (ColumnarInfo, columnar_info,
                                    compact_run, read_records)
from repro.results.store import (MANIFEST_NAME, ROWS_NAME, RunStore,
                                 latest_run, list_runs, load_run,
                                 params_digest, read_manifest,
                                 run_directory, scan_runs)

__all__ = [
    "MANIFEST_NAME",
    "ROWS_NAME",
    "ColumnarInfo",
    "RunStore",
    "columnar_info",
    "compact_run",
    "latest_run",
    "list_runs",
    "load_run",
    "params_digest",
    "read_manifest",
    "read_records",
    "run_directory",
    "scan_runs",
]
