"""Persistent, resumable experiment results.

One run = one content-addressed directory holding a ``manifest.json``
(experiment name, parameters, master seed, workers, wall time, package
version) and a ``rows.jsonl`` of streamed data rows.  Rerunning the same
configuration reopens the same directory and skips every cell whose row is
already on disk.  See PERFORMANCE.md ("The results workflow") for how the
CLI and the benchmark tooling consume stored runs.
"""

from repro.results.store import (MANIFEST_NAME, ROWS_NAME, RunStore,
                                 latest_run, list_runs, load_run,
                                 params_digest, run_directory)

__all__ = [
    "MANIFEST_NAME",
    "ROWS_NAME",
    "RunStore",
    "latest_run",
    "list_runs",
    "load_run",
    "params_digest",
    "run_directory",
]
