"""Percentile reports over an experiment's stored runs: ``repro report``.

A report aggregates *every* loadable run of one experiment under the
results root (different seeds and parameter overrides land in different
content-addressed run directories) into three sections:

* ``runs`` — one line per stored run: completion, row count (counted
  from the rows actually on disk), backend, wall time, health failures.
* ``cells`` — the percentile table: for every cell key and every numeric
  row column, the distribution of that metric across the stored runs
  (count / min / p50 / p90 / p99 / max by default).  With a single run
  per cell the percentiles collapse onto the stored value — the table
  is then simply a long-format view of the run.
* ``finalizers`` — the synthetic rows (the E2/E4 exponential fits)
  recomputed from the latest completed run's data rows through the
  experiment registry's ``finalize`` hook, exactly as ``repro show``
  renders them.  They are never stored, so the report re-derives them.
* ``timing`` — per-cell trial-duration percentiles aggregated from the
  ``telemetry.jsonl`` event logs of every run that has one (runs
  executed without telemetry simply contribute nothing).

Percentiles use linear interpolation between closest ranks (numpy's
default), implemented here without numpy so the report works on the
pure-fallback install.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.results.columnar import records_to_rows
from repro.results.store import latest_run, read_manifest, scan_runs
from repro.telemetry import TELEMETRY_NAME, read_events

DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)


class ReportError(ValueError):
    """No stored runs (or no usable rows) to report on."""


@dataclass
class Report:
    """One experiment's aggregated report."""

    experiment: str
    root: str
    runs: List[Dict[str, Any]]
    cells: List[Dict[str, Any]]
    finalizers: List[Dict[str, Any]]
    percentiles: Tuple[float, ...] = DEFAULT_PERCENTILES
    skipped_columns: List[str] = field(default_factory=list)
    timing: List[Dict[str, Any]] = field(default_factory=list)

    def as_json(self) -> str:
        payload = {
            "experiment": self.experiment,
            "root": self.root,
            "percentiles": list(self.percentiles),
            "runs": self.runs,
            "cells": self.cells,
            "finalizers": self.finalizers,
            "skipped_columns": self.skipped_columns,
            "timing": self.timing,
        }
        return json.dumps(payload, indent=2, sort_keys=True,
                          allow_nan=False) + "\n"


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (linear interpolation, numpy-compatible)."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * (q / 100.0)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] + (ordered[high] - ordered[low]) * fraction)


def _percentile_label(q: float) -> str:
    return f"p{q:g}"


def _is_metric(value: Any) -> bool:
    # bool is an int subclass; flags are not metrics.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def build_report(root: str, experiment: str,
                 percentiles: Sequence[float] = DEFAULT_PERCENTILES,
                 ) -> Report:
    """Aggregate every stored run of ``experiment`` under ``root``."""
    from repro.experiments import get_experiment

    try:
        registered = get_experiment(experiment)
        name = registered.name
    except KeyError:
        # Fuzz/search campaigns (and unregistered stores) report too —
        # they just have no finalizer to recompute.
        registered, name = None, experiment
    percentiles = tuple(float(q) for q in percentiles)
    for q in percentiles:
        if not 0.0 <= q <= 100.0:
            raise ReportError(f"percentile {q} outside [0, 100]")

    runs_section: List[Dict[str, Any]] = []
    samples: Dict[str, Dict[str, List[float]]] = {}
    cell_order: List[str] = []
    column_order: List[str] = []
    skipped: List[str] = []
    telemetry_events: List[Dict[str, Any]] = []
    for run_dir, manifest, records in scan_runs(root, experiment=name):
        run_id = run_dir.rstrip("/").rsplit("/", 1)[-1]
        telemetry_events.extend(read_events(
            os.path.join(run_dir, TELEMETRY_NAME)))
        health = manifest.get("run_health") or {}
        columnar = manifest.get("columnar") or {}
        runs_section.append({
            "run_id": run_id,
            "seed": manifest.get("seed"),
            "completed": bool(manifest.get("completed")),
            "rows": len(records),
            "backend": manifest.get("backend"),
            "columnar": columnar.get("codec"),
            "wall_time_seconds": manifest.get("wall_time_seconds"),
            "health_failures": len(health.get("failures", []) or []),
        })
        for record in records:
            cell = json.dumps(record["key"], allow_nan=False)
            if cell not in samples:
                samples[cell] = {}
                cell_order.append(cell)
            for column, value in record["row"].items():
                if not _is_metric(value):
                    if value is not None and \
                            not isinstance(value, (str, bool)) and \
                            column not in skipped:
                        skipped.append(column)
                    continue
                if column not in column_order:
                    column_order.append(column)
                samples[cell].setdefault(column, []).append(float(value))
    if not runs_section:
        raise ReportError(
            f"no stored runs of {name} under {root!r}; run "
            f"`python -m repro run {name}` first")

    cells_section: List[Dict[str, Any]] = []
    for cell in cell_order:
        for column in column_order:
            values = samples[cell].get(column)
            if not values:
                continue
            entry: Dict[str, Any] = {
                "cell": cell, "metric": column, "count": len(values),
                "min": min(values),
            }
            for q in percentiles:
                entry[_percentile_label(q)] = percentile(values, q)
            entry["max"] = max(values)
            cells_section.append(entry)

    finalizers: List[Dict[str, Any]] = []
    if registered is not None and registered.finalize is not None:
        newest = latest_run(root, name)
        if newest is not None:
            manifest = read_manifest(newest)
            from repro.results.columnar import read_records

            records, _ = read_records(newest)
            finalizers = registered.finalize(records_to_rows(records),
                                             manifest["params"])
    from repro.telemetry.timing import cell_timing_rows

    timing = cell_timing_rows(telemetry_events, percentiles=percentiles)
    return Report(experiment=name, root=root, runs=runs_section,
                  cells=cells_section, finalizers=finalizers,
                  percentiles=percentiles, skipped_columns=skipped,
                  timing=timing)


def render_report_text(report: Report) -> str:
    """The report as the CLI's text rendering."""
    from repro.analysis.statistics import format_table

    sections = [f"== report: {report.experiment} "
                f"({len(report.runs)} stored run(s) under "
                f"{report.root!r}) =="]
    sections.append("-- runs --")
    sections.append(format_table(report.runs))
    if report.cells:
        sections.append("")
        sections.append("-- per-cell percentiles --")
        sections.append(format_table(report.cells))
    if report.finalizers:
        sections.append("")
        sections.append("-- recomputed finalizer rows (never stored) --")
        sections.append(format_table(report.finalizers))
    if report.timing:
        sections.append("")
        sections.append("-- trial timing (telemetry, ms) --")
        sections.append(format_table(report.timing))
    if report.skipped_columns:
        sections.append("")
        sections.append("non-numeric columns not aggregated: "
                        + ", ".join(report.skipped_columns))
    return "\n".join(sections) + "\n"


__all__ = [
    "DEFAULT_PERCENTILES",
    "Report",
    "ReportError",
    "build_report",
    "percentile",
    "render_report_text",
]
