"""SQL over every stored run: the ``repro query`` backend.

:func:`mount_store` flattens the whole results store into two logical
tables:

* ``rows`` — one record per stored data row, with the owning run's
  manifest fields joined in as columns (``experiment``, ``run_id``,
  ``seed``, ``backend``, ``completed``, ``wall_time_seconds``,
  ``params`` and ``run_health`` as JSON text, ``health_failures``), plus
  the row's cell identity (``cell``, ``row_index``) and every column of
  the row itself.
* ``runs`` — one record per run directory (the manifest summary, with
  ``row_count`` taken from the rows actually readable on disk, not from
  the manifest — a debounced manifest may lag a killed run by a few
  rows).

Runs executed with telemetry additionally contribute two tables mounted
from their ``telemetry.jsonl`` event logs (empty tables when no run has
one):

* ``spans`` — one record per span (``span_id``, ``parent_id``, ``name``,
  ``t0``, ``dur`` plus every span attribute seen — ``tag``, ``scope``,
  ``ok``...), with ``experiment``/``run_id`` joined in.
* ``metrics`` — one record per counter/gauge event (``kind``, ``name``,
  ``t``, ``delta``, ``value``), same join columns.

Reading goes through :func:`repro.results.columnar.read_records`, so a
compacted store scans at columnar speed, and through
:func:`repro.results.store.scan_runs`, so corrupt run directories are
skipped with a warning instead of bricking every query.

:func:`run_query` executes SQL against those tables with DuckDB when it
is importable (each experiment additionally mounted as a view:
``SELECT * FROM E2 ...``), and otherwise through the dependency-free
subset evaluator in :mod:`repro.results.minisql`.  Both engines see the
same mounted data — the engines differ only in SQL coverage.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.results.store import scan_runs
from repro.telemetry import TELEMETRY_NAME, read_events

#: Manifest-derived columns of the ``rows`` table, in order.  A row
#: column with the same name (e.g. the experiments' own ``experiment``
#: field) overwrites the joined value — for real data they agree.
ROW_META_COLUMNS = (
    "experiment", "run_id", "seed", "backend", "completed",
    "wall_time_seconds", "params", "run_health", "health_failures",
    "cell", "row_index",
)

RUNS_COLUMNS = (
    "experiment", "run_id", "seed", "backend", "completed",
    "wall_time_seconds", "row_count", "columnar_codec",
    "health_failures", "params",
)

#: Fixed columns of the ``spans`` table; span attributes follow
#: dynamically in first-seen order.
SPAN_META_COLUMNS = (
    "experiment", "run_id", "span_id", "parent_id", "name", "t0", "dur",
)

METRICS_COLUMNS = (
    "experiment", "run_id", "kind", "name", "t", "delta", "value",
)

#: The fixed event-schema keys of a span event; everything else on the
#: event is a free-form attribute.
_SPAN_EVENT_KEYS = ("kind", "id", "parent", "name", "t0", "dur")

_IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9]*$")
_RESERVED_TABLES = {"rows", "runs", "spans", "metrics"}


class QueryError(ValueError):
    """A query that cannot be executed (bad SQL, unknown table...)."""


@dataclass
class MountedStore:
    """The results store flattened into queryable tables."""

    tables: Dict[str, List[Dict[str, Any]]]
    columns: Dict[str, List[str]]
    experiments: List[str] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return len(self.tables["rows"])


@dataclass(frozen=True)
class QueryResult:
    """One executed query: labelled columns, tuple rows, engine used."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    engine: str

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]


def duckdb_ok() -> bool:
    """Whether the DuckDB engine is available."""
    try:
        import duckdb  # noqa: F401
    except Exception:
        return False
    return True


def _health_failures(manifest: Mapping[str, Any]) -> int:
    block = manifest.get("run_health") or {}
    return len(block.get("failures", []) or [])


def mount_store(root: str,
                experiment: Optional[str] = None) -> MountedStore:
    """Flatten every loadable run under ``root`` into rows/runs tables."""
    rows_table: List[Dict[str, Any]] = []
    runs_table: List[Dict[str, Any]] = []
    spans_table: List[Dict[str, Any]] = []
    metrics_table: List[Dict[str, Any]] = []
    row_columns: List[str] = list(ROW_META_COLUMNS)
    seen_columns = set(row_columns)
    span_columns: List[str] = list(SPAN_META_COLUMNS)
    span_seen = set(span_columns)
    experiments: List[str] = []
    for run_dir, manifest, records in scan_runs(root,
                                                experiment=experiment):
        run_id = run_dir.rstrip("/").rsplit("/", 1)[-1]
        name = manifest["experiment"]
        if name not in experiments:
            experiments.append(name)
        params_json = json.dumps(manifest.get("params"), sort_keys=True,
                                 allow_nan=False)
        health_json = json.dumps(manifest.get("run_health"),
                                 sort_keys=True, allow_nan=False)
        meta = {
            "experiment": name,
            "run_id": run_id,
            "seed": manifest.get("seed"),
            "backend": manifest.get("backend"),
            "completed": bool(manifest.get("completed")),
            "wall_time_seconds": manifest.get("wall_time_seconds"),
            "params": params_json,
            "run_health": health_json,
            "health_failures": _health_failures(manifest),
        }
        columnar = manifest.get("columnar") or {}
        runs_table.append({
            **{key: meta[key] for key in
               ("experiment", "run_id", "seed", "backend", "completed",
                "wall_time_seconds", "params", "health_failures")},
            "row_count": len(records),
            "columnar_codec": columnar.get("codec"),
        })
        for record in records:
            flattened = dict(meta)
            flattened["cell"] = json.dumps(record["key"],
                                           allow_nan=False)
            flattened["row_index"] = record["index"]
            for column, value in record["row"].items():
                if column not in seen_columns:
                    seen_columns.add(column)
                    row_columns.append(column)
                if isinstance(value, (dict, list)):
                    value = json.dumps(value, sort_keys=True,
                                       allow_nan=False)
                flattened[column] = value
            rows_table.append(flattened)
        for event in read_events(os.path.join(run_dir, TELEMETRY_NAME)):
            kind = event.get("kind")
            if kind == "span":
                span_row: Dict[str, Any] = {
                    "experiment": name, "run_id": run_id,
                    "span_id": event.get("id"),
                    "parent_id": event.get("parent"),
                    "name": event.get("name"),
                    "t0": event.get("t0"),
                    "dur": event.get("dur"),
                }
                for key, value in event.items():
                    if key in _SPAN_EVENT_KEYS:
                        continue
                    if key not in span_seen:
                        span_seen.add(key)
                        span_columns.append(key)
                    if isinstance(value, (dict, list)):
                        value = json.dumps(value, sort_keys=True,
                                           allow_nan=False)
                    span_row[key] = value
                spans_table.append(span_row)
            elif kind in ("counter", "gauge"):
                value = event.get("value")
                if isinstance(value, (dict, list)):
                    value = json.dumps(value, sort_keys=True,
                                       allow_nan=False)
                metrics_table.append({
                    "experiment": name, "run_id": run_id,
                    "kind": kind, "name": event.get("name"),
                    "t": event.get("t"),
                    "delta": event.get("delta"), "value": value,
                })
    return MountedStore(
        tables={"rows": rows_table, "runs": runs_table,
                "spans": spans_table, "metrics": metrics_table},
        columns={"rows": row_columns, "runs": list(RUNS_COLUMNS),
                 "spans": span_columns,
                 "metrics": list(METRICS_COLUMNS)},
        experiments=experiments)


# ----------------------------------------------------------------------
# DuckDB engine.
# ----------------------------------------------------------------------
def _duckdb_type(values: Sequence[Any]) -> str:
    kinds = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            kinds.add("BOOLEAN")
        elif isinstance(value, int):
            kinds.add("BIGINT")
        elif isinstance(value, float):
            kinds.add("DOUBLE")
        else:
            return "VARCHAR"
    if not kinds:
        return "VARCHAR"
    if kinds == {"BIGINT", "DOUBLE"}:
        return "DOUBLE"
    if len(kinds) > 1:
        return "VARCHAR"
    return kinds.pop()


def _duckdb_cell(value: Any, declared: str) -> Any:
    if value is None or declared != "VARCHAR" or isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, allow_nan=False)


def _run_duckdb(store: MountedStore, sql: str) -> QueryResult:
    import duckdb

    connection = _duckdb_connection(store)
    try:
        cursor = connection.execute(sql)
        columns = [entry[0] for entry in cursor.description]
        rows = [tuple(row) for row in cursor.fetchall()]
    except duckdb.Error as error:
        raise QueryError(f"duckdb rejected the query: {error}") from error
    finally:
        connection.close()
    return QueryResult(columns=columns, rows=rows, engine="duckdb")


def _duckdb_connection(store: MountedStore):
    import duckdb

    connection = duckdb.connect(":memory:")
    for table, columns in store.columns.items():
        rows = store.tables[table]
        types = {column: _duckdb_type([row.get(column) for row in rows])
                 for column in columns}
        declaration = ", ".join(f'"{column}" {types[column]}'
                                for column in columns)
        connection.execute(f"CREATE TABLE {table} ({declaration})")
        if rows:
            placeholders = ", ".join("?" for _ in columns)
            connection.executemany(
                f"INSERT INTO {table} VALUES ({placeholders})",
                [tuple(_duckdb_cell(row.get(column), types[column])
                       for column in columns) for row in rows])
    for name in store.experiments:
        if _IDENTIFIER_RE.match(name) and \
                name.lower() not in _RESERVED_TABLES:
            connection.execute(
                f'CREATE VIEW "{name}" AS SELECT * FROM rows '
                f"WHERE experiment = '{name}'")  # vetted identifier
    return connection


def _run_fallback(store: MountedStore, sql: str) -> QueryResult:
    from repro.results.minisql import MiniSQLError, execute

    tables = dict(store.tables)
    columns = dict(store.columns)
    for name in store.experiments:
        if _IDENTIFIER_RE.match(name) and \
                name.lower() not in {key.lower() for key in tables}:
            tables[name] = [row for row in store.tables["rows"]
                            if row.get("experiment") == name]
            columns[name] = store.columns["rows"]
    try:
        labels, rows = execute(sql, tables, columns)
    except MiniSQLError as error:
        raise QueryError(str(error)) from error
    return QueryResult(columns=labels, rows=rows, engine="fallback")


def resolve_engine(engine: str = "auto") -> str:
    """Pick the concrete engine for a requested engine name."""
    if engine not in ("auto", "duckdb", "fallback"):
        raise QueryError(f"unknown query engine {engine!r}; "
                         f"choose auto, duckdb or fallback")
    if engine == "duckdb" and not duckdb_ok():
        raise QueryError("duckdb is not installed; install the "
                         "'analytics' extra or use --engine fallback")
    if engine == "auto":
        return "duckdb" if duckdb_ok() else "fallback"
    return engine


def query_store(store: MountedStore, sql: str,
                engine: str = "auto") -> QueryResult:
    """Execute SQL against an already-mounted store."""
    resolved = resolve_engine(engine)
    if resolved == "duckdb":
        return _run_duckdb(store, sql)
    return _run_fallback(store, sql)


def run_query(root: str, sql: str, engine: str = "auto") -> QueryResult:
    """Mount every run under ``root`` and execute one query."""
    return query_store(mount_store(root), sql, engine=engine)


__all__ = [
    "METRICS_COLUMNS",
    "MountedStore",
    "QueryError",
    "QueryResult",
    "ROW_META_COLUMNS",
    "RUNS_COLUMNS",
    "SPAN_META_COLUMNS",
    "duckdb_ok",
    "mount_store",
    "query_store",
    "resolve_engine",
    "run_query",
]
