"""Columnar compaction of run rows: jsonl stays the write path.

``rows.jsonl`` is append-only and flushed per line — perfect for
kill-mid-run durability, terrible for scanning millions of rows.  This
module adds the read-optimized layer behind it:

* :func:`compact_run` rewrites one run's rows into a columnar file —
  Parquet when pyarrow is importable (the ``analytics`` extra), a
  single-pass pure-JSON column layout otherwise — and **proves the copy
  lossless before keeping it**: the freshly written file is decoded and
  compared record by record against the jsonl source; any difference
  discards the file (and a failing Parquet write falls back to the JSON
  codec rather than aborting the run).
* :func:`read_records` is the scan entry point: it serves the columnar
  copy only while it is *fresh* (its recorded source digest matches the
  current ``rows.jsonl`` bytes) and falls back to the line-by-line parse
  otherwise.  A run resumed after compaction therefore reads correctly
  from jsonl until :meth:`~repro.results.store.RunStore.finish`
  recompacts it — cell-level resume never depends on the columnar copy.

A *record* is one jsonl line's payload, ``{"index": int, "key": [...],
"row": {...}}``.  Bit-identity means the decoded records compare equal
**and** canonicalize to the same JSON — including each row dict's key
order, which both codecs preserve explicitly (``shapes``).  Non-finite
floats are canonicalized to ``null`` at the write boundary by the store;
the loaders here refuse ``NaN``/``Infinity`` tokens loudly instead of
letting strict parsers drop those lines as torn.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"

#: Codec names, in preference order when both are writable.
CODEC_PARQUET = "parquet"
CODEC_JSON = "json-columns"

PARQUET_NAME = "rows.parquet"
JSON_COLUMNS_NAME = "rows.columns.json"

_FORMAT = "repro-columnar"
_VERSION = 1

Record = Dict[str, Any]


class NonFiniteRowError(ValueError):
    """A stored row contains ``NaN``/``Infinity`` — the write boundary
    canonicalizes these to ``null``, so their presence means a writer
    bypassed :meth:`RunStore.write_row` (or predates the canonical
    format); refusing beats strict parsers silently dropping the line."""


class CompactionError(RuntimeError):
    """Compaction could not produce a verified-lossless columnar copy."""


@dataclass(frozen=True)
class ColumnarInfo:
    """Metadata of one run's columnar file."""

    codec: str
    filename: str
    rows: int
    source_digest: str

    def as_manifest_block(self) -> Dict[str, Any]:
        return {"codec": self.codec, "file": self.filename,
                "rows": self.rows, "source_digest": self.source_digest}


def pyarrow_ok() -> bool:
    """Whether the Parquet codec is available (pyarrow importable)."""
    try:
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except Exception:
        return False
    return True


def _reject_non_finite(token: str) -> Any:
    raise NonFiniteRowError(
        f"non-finite JSON constant {token!r} in stored rows; the store "
        f"canonicalizes NaN/Infinity to null at the write boundary — "
        f"rewrite the offending line (or recompute the run)")


def parse_record_line(line: str) -> Record:
    """Parse one jsonl record line, refusing non-finite float tokens."""
    return json.loads(line, parse_constant=_reject_non_finite)


def read_jsonl_records(rows_path: str) -> List[Record]:
    """The tolerant line-by-line parse of ``rows.jsonl``.

    Blank and torn (unparseable) lines are skipped — a killed run leaves
    at most one torn *final* line, and the fault injector's torn-write
    model relies on intact recovery lines following torn ones.  Lines
    carrying ``NaN``/``Infinity`` raise :class:`NonFiniteRowError`
    instead of being mistaken for torn lines and dropped.
    """
    records: List[Record] = []
    if not os.path.exists(rows_path):
        return records
    with open(rows_path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = parse_record_line(line)
            except json.JSONDecodeError:
                continue
            records.append(record)
    return records


def records_to_rows(records: Sequence[Record]) -> List[Dict[str, Any]]:
    """Data rows in cell order, last write per cell key winning."""
    from repro.experiments.base import cell_key_id

    by_key: Dict[str, Tuple[int, Dict[str, Any]]] = {}
    for record in records:
        by_key[cell_key_id(record["key"])] = \
            (record["index"], record["row"])
    return [row for _, row in
            sorted(by_key.values(), key=lambda item: item[0])]


def source_digest(rows_path: str) -> Optional[str]:
    """SHA-256 of the raw ``rows.jsonl`` bytes (None when absent).

    Any append — a resume writing new cells, a torn recovery line —
    changes the digest, which is exactly the staleness signal the read
    path needs.
    """
    if not os.path.exists(rows_path):
        return None
    digest = hashlib.sha256()
    with open(rows_path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Column layout shared by both codecs.
# ----------------------------------------------------------------------
def _column_layout(records: Sequence[Record]):
    """(columns, shapes, values) for the records' row dicts.

    ``columns`` is the union of row keys in first-seen order.  ``shapes``
    is ``None`` when every row holds exactly ``columns`` in that order
    (the common case: one experiment, one schema); otherwise it is a
    per-row list of column indices preserving each row's own key order,
    which is what makes the reconstruction bit-identical for
    heterogeneous runs (fuzz campaigns, schema evolutions).
    """
    columns: List[str] = []
    seen: Dict[str, int] = {}
    row_keys: List[List[str]] = []
    for record in records:
        keys = list(record["row"].keys())
        row_keys.append(keys)
        for key in keys:
            if key not in seen:
                seen[key] = len(columns)
                columns.append(key)
    uniform = all(keys == columns for keys in row_keys)
    shapes = None if uniform else \
        [[seen[key] for key in keys] for keys in row_keys]
    values: Dict[str, List[Any]] = {column: [] for column in columns}
    for record in records:
        row = record["row"]
        for column in columns:
            values[column].append(row.get(column))
    return columns, shapes, values


def _rebuild_records(index: List[int], keys: List[List[Any]],
                     columns: List[str], shapes: Optional[List[List[int]]],
                     values: Dict[str, List[Any]]) -> List[Record]:
    records: List[Record] = []
    for i in range(len(index)):
        if shapes is None:
            row = {column: values[column][i] for column in columns}
        else:
            row = {columns[j]: values[columns[j]][i] for j in shapes[i]}
        records.append({"index": index[i], "key": keys[i], "row": row})
    return records


# ----------------------------------------------------------------------
# JSON-columns codec (zero extra dependencies).
# ----------------------------------------------------------------------
def _write_json_columns(run_dir: str, records: Sequence[Record],
                        digest: str) -> str:
    columns, shapes, values = _column_layout(records)
    header = {"format": _FORMAT, "version": _VERSION, "codec": CODEC_JSON,
              "rows": len(records), "source_digest": digest}
    payload = {"index": [record["index"] for record in records],
               "keys": [record["key"] for record in records],
               "columns": columns, "shapes": shapes, "values": values}
    path = os.path.join(run_dir, JSON_COLUMNS_NAME)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        # Two lines: metadata first, so freshness checks never parse the
        # (potentially huge) payload.
        json.dump(header, handle, sort_keys=True, allow_nan=False)
        handle.write("\n")
        json.dump(payload, handle, allow_nan=False)
        handle.write("\n")
    os.replace(tmp_path, path)
    return path


def _read_json_columns_header(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        return json.loads(handle.readline())


def _read_json_columns(path: str) -> List[Record]:
    with open(path) as handle:
        handle.readline()  # metadata line
        payload = json.loads(handle.readline(),
                             parse_constant=_reject_non_finite)
    return _rebuild_records(payload["index"], payload["keys"],
                            payload["columns"], payload["shapes"],
                            payload["values"])


# ----------------------------------------------------------------------
# Parquet codec (pyarrow, optional).
# ----------------------------------------------------------------------
def _parquet_column_type(values: Sequence[Any]) -> str:
    """Native parquet type for a column, or "json" to string-encode it.

    Only *uniformly typed* scalar columns go native — promoting a mixed
    int/float column to double would silently turn ``5`` into ``5.0`` on
    read-back, which the bit-identity contract forbids.
    """
    kinds = set()
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            kinds.add("bool")
        elif isinstance(value, int):
            kinds.add("int")
            if not -(1 << 63) <= value < (1 << 63):
                return "json"
        elif isinstance(value, float):
            kinds.add("float")
        elif isinstance(value, str):
            kinds.add("str")
        else:
            return "json"
        if len(kinds) > 1:
            return "json"
    return kinds.pop() if kinds else "null"


def _write_parquet(run_dir: str, records: Sequence[Record],
                   digest: str) -> str:
    import pyarrow as pa
    import pyarrow.parquet as pq

    columns, shapes, values = _column_layout(records)
    arrow_types = {"bool": pa.bool_(), "int": pa.int64(),
                   "float": pa.float64(), "str": pa.string(),
                   "null": pa.null()}
    json_columns: List[str] = []
    arrays: List[Any] = [
        pa.array([record["index"] for record in records], type=pa.int64()),
        pa.array([json.dumps(record["key"], allow_nan=False)
                  for record in records], type=pa.string()),
    ]
    names = ["__index__", "__key__"]
    for column in columns:
        kind = _parquet_column_type(values[column])
        if kind == "json":
            json_columns.append(column)
            encoded = [None if value is None
                       else json.dumps(value, allow_nan=False)
                       for value in values[column]]
            arrays.append(pa.array(encoded, type=pa.string()))
        else:
            arrays.append(pa.array(values[column],
                                   type=arrow_types[kind]))
        names.append(column)
    metadata = {"format": _FORMAT, "version": _VERSION,
                "codec": CODEC_PARQUET, "rows": len(records),
                "source_digest": digest, "columns": columns,
                "shapes": shapes, "json_columns": json_columns}
    table = pa.Table.from_arrays(arrays, names=names)
    table = table.replace_schema_metadata(
        {b"repro_columnar": json.dumps(metadata,
                                       allow_nan=False).encode("utf-8")})
    path = os.path.join(run_dir, PARQUET_NAME)
    tmp_path = path + ".tmp"
    pq.write_table(table, tmp_path)
    os.replace(tmp_path, path)
    return path


def _read_parquet_header(path: str) -> Optional[Dict[str, Any]]:
    import pyarrow.parquet as pq

    schema = pq.read_schema(path)
    raw = (schema.metadata or {}).get(b"repro_columnar")
    return None if raw is None else json.loads(raw.decode("utf-8"))


def _read_parquet(path: str) -> List[Record]:
    import pyarrow.parquet as pq

    table = pq.read_table(path)
    metadata = _read_parquet_header(path)
    if metadata is None:
        raise CompactionError(f"{path} carries no repro_columnar metadata")
    data = {name: table.column(name).to_pylist()
            for name in table.column_names}
    json_columns = set(metadata["json_columns"])
    values: Dict[str, List[Any]] = {}
    for column in metadata["columns"]:
        cells = data[column]
        if column in json_columns:
            cells = [None if cell is None
                     else json.loads(cell,
                                     parse_constant=_reject_non_finite)
                     for cell in cells]
        values[column] = cells
    keys = [json.loads(cell, parse_constant=_reject_non_finite)
            for cell in data["__key__"]]
    return _rebuild_records(data["__index__"], keys, metadata["columns"],
                            metadata["shapes"], values)


# ----------------------------------------------------------------------
# The compaction entry points.
# ----------------------------------------------------------------------
_CODEC_FILES = {CODEC_PARQUET: PARQUET_NAME, CODEC_JSON: JSON_COLUMNS_NAME}
_WRITERS = {CODEC_PARQUET: _write_parquet, CODEC_JSON: _write_json_columns}
_READERS = {CODEC_PARQUET: _read_parquet, CODEC_JSON: _read_json_columns}


def default_codec() -> str:
    return CODEC_PARQUET if pyarrow_ok() else CODEC_JSON


def canonical_record_dump(record: Record) -> str:
    """The canonical serialized form bit-identity is judged against."""
    return json.dumps(record, sort_keys=True, allow_nan=False)


def _verify_lossless(records: Sequence[Record],
                     decoded: Sequence[Record]) -> Optional[str]:
    """None when decoded reproduces records exactly, else a description."""
    if len(decoded) != len(records):
        return f"row count {len(decoded)} != source {len(records)}"
    for i, (want, got) in enumerate(zip(records, decoded)):
        if want != got or \
                canonical_record_dump(want) != canonical_record_dump(got):
            return (f"record {i} diverged: "
                    f"source={canonical_record_dump(want)[:200]} "
                    f"columnar={canonical_record_dump(got)[:200]}")
    return None


def compact_run(run_dir: str,
                codec: Optional[str] = None) -> Optional[ColumnarInfo]:
    """Compact one run's jsonl rows into a verified columnar copy.

    Returns the resulting :class:`ColumnarInfo`, or ``None`` when the run
    has no ``rows.jsonl`` yet.  The written file is decoded and compared
    against the jsonl records before being accepted; a Parquet write
    whose round-trip is not bit-identical (or whose writer raises) falls
    back to the dependency-free JSON codec.  A JSON-codec failure raises
    :class:`CompactionError` — it has no fallback, and keeping a wrong
    columnar copy is never an option.
    """
    rows_path = os.path.join(run_dir, ROWS_NAME)
    digest = source_digest(rows_path)
    if digest is None:
        return None
    records = read_jsonl_records(rows_path)
    if codec is None:
        codec = default_codec()
    if codec not in _CODEC_FILES:
        raise ValueError(f"unknown columnar codec {codec!r}; "
                         f"known: {sorted(_CODEC_FILES)}")
    attempts = [codec] if codec == CODEC_JSON else [codec, CODEC_JSON]
    last_error: Optional[str] = None
    for attempt in attempts:
        path = os.path.join(run_dir, _CODEC_FILES[attempt])
        try:
            _WRITERS[attempt](run_dir, records, digest)
            mismatch = _verify_lossless(records, _READERS[attempt](path))
        except (CompactionError, NonFiniteRowError):
            raise
        except Exception as error:  # noqa: BLE001 - codec fallback boundary
            mismatch = f"{type(error).__name__}: {error}"
        if mismatch is None:
            _drop_other_codecs(run_dir, keep=attempt)
            return ColumnarInfo(codec=attempt,
                                filename=_CODEC_FILES[attempt],
                                rows=len(records), source_digest=digest)
        if os.path.exists(path):
            os.remove(path)
        last_error = f"{attempt} codec not lossless: {mismatch}"
        if attempt != attempts[-1]:
            warnings.warn(f"{run_dir}: {last_error}; falling back to the "
                          f"{CODEC_JSON} codec", RuntimeWarning,
                          stacklevel=2)
    raise CompactionError(f"{run_dir}: {last_error}")


def _drop_other_codecs(run_dir: str, keep: str) -> None:
    """Remove stale columnar files of the codecs not just written."""
    for codec, filename in _CODEC_FILES.items():
        if codec == keep:
            continue
        path = os.path.join(run_dir, filename)
        if os.path.exists(path):
            os.remove(path)


def columnar_info(run_dir: str) -> Optional[ColumnarInfo]:
    """Metadata of the run's columnar file, reading headers only."""
    parquet_path = os.path.join(run_dir, PARQUET_NAME)
    if os.path.exists(parquet_path) and pyarrow_ok():
        try:
            header = _read_parquet_header(parquet_path)
        except Exception:  # noqa: BLE001 - corrupt file = no columnar copy
            header = None
        if header is not None:
            return ColumnarInfo(codec=CODEC_PARQUET, filename=PARQUET_NAME,
                                rows=header["rows"],
                                source_digest=header["source_digest"])
    json_path = os.path.join(run_dir, JSON_COLUMNS_NAME)
    if os.path.exists(json_path):
        try:
            header = _read_json_columns_header(json_path)
        except (OSError, ValueError):
            return None
        if header.get("format") == _FORMAT:
            return ColumnarInfo(codec=CODEC_JSON,
                                filename=JSON_COLUMNS_NAME,
                                rows=header["rows"],
                                source_digest=header["source_digest"])
    return None


def read_records(run_dir: str) -> Tuple[List[Record], str]:
    """Read a run's records through the fastest *correct* path.

    Returns ``(records, source)`` where ``source`` names the path taken:
    the columnar codec when a fresh copy exists, ``"jsonl"`` otherwise
    (no columnar file, stale after a resume, or a decode failure — the
    jsonl parse is always the ground truth).
    """
    rows_path = os.path.join(run_dir, ROWS_NAME)
    info = columnar_info(run_dir)
    if info is not None:
        digest = source_digest(rows_path)
        if digest == info.source_digest:
            path = os.path.join(run_dir, info.filename)
            try:
                return _READERS[info.codec](path), info.codec
            except NonFiniteRowError:
                raise
            except Exception as error:  # noqa: BLE001 - fall back to truth
                warnings.warn(
                    f"{path}: columnar read failed ({error}); falling "
                    f"back to rows.jsonl", RuntimeWarning, stacklevel=2)
    return read_jsonl_records(rows_path), "jsonl"


__all__ = [
    "CODEC_JSON",
    "CODEC_PARQUET",
    "ColumnarInfo",
    "CompactionError",
    "JSON_COLUMNS_NAME",
    "NonFiniteRowError",
    "PARQUET_NAME",
    "Record",
    "canonical_record_dump",
    "columnar_info",
    "compact_run",
    "default_codec",
    "parse_record_line",
    "pyarrow_ok",
    "read_jsonl_records",
    "read_records",
    "records_to_rows",
    "source_digest",
]
