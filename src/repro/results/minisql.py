"""A dependency-free SQL subset for ``repro query``'s fallback path.

DuckDB is the real query engine (``pip install repro-lewko-podc13
[analytics]``); this module is what keeps ``repro query`` working when it
is absent.  It evaluates a deliberately small, deterministic subset of
SQL over in-memory list-of-dict tables::

    SELECT [DISTINCT] * | expr [AS name], ...
    FROM table
    [WHERE condition]
    [GROUP BY column, ...]
    [ORDER BY expr [ASC|DESC], ...]
    [LIMIT n]

* expressions: column references (optionally ``"quoted"``), literals
  (numbers, ``'strings'``, ``NULL``, ``TRUE``, ``FALSE``) and the
  aggregates ``COUNT(*)``, ``COUNT(col)``, ``SUM``, ``AVG``, ``MIN``,
  ``MAX``.
* conditions: comparisons (``= != <> < <= > >=``), ``IS [NOT] NULL``,
  ``IN (literal, ...)``, ``NOT``, ``AND``, ``OR`` and parentheses.
  Comparisons against ``NULL`` are false (SQL-ish three-valued logic
  collapsed to two).

Anything else raises :class:`MiniSQLError` naming the unsupported
construct and pointing at the duckdb extra — failing loudly beats
quietly mis-evaluating a query.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)


class MiniSQLError(ValueError):
    """An unsupported or malformed query for the fallback engine."""


_HINT = ("; the fallback engine supports SELECT/WHERE/GROUP BY/ORDER BY/"
         "LIMIT with COUNT/SUM/AVG/MIN/MAX — install the 'analytics' "
         "extra (duckdb) for full SQL")

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<number>-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
      | (?P<string>'(?:[^']|'')*')
      | (?P<qident>"(?:[^"]|"")*")
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|\.)
    )""", re.VERBOSE)

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER",
    "LIMIT", "AS", "AND", "OR", "NOT", "IS", "IN", "NULL", "TRUE",
    "FALSE", "ASC", "DESC",
}

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "string" | "ident" | "keyword" | "op" | "end"
    value: Any
    text: str


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    sql = sql.strip().rstrip(";")
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None or match.end() == position:
            raise MiniSQLError(
                f"cannot tokenize query at ...{sql[position:position + 20]!r}"
                + _HINT)
        position = match.end()
        if match.lastgroup == "number":
            text = match.group("number")
            value = float(text) if ("." in text or "e" in text.lower()) \
                else int(text)
            tokens.append(_Token("number", value, text))
        elif match.lastgroup == "string":
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", raw, raw))
        elif match.lastgroup == "qident":
            raw = match.group("qident")[1:-1].replace('""', '"')
            tokens.append(_Token("ident", raw, raw))
        elif match.lastgroup == "ident":
            text = match.group("ident")
            if text.upper() in _KEYWORDS:
                tokens.append(_Token("keyword", text.upper(), text))
            else:
                tokens.append(_Token("ident", text, text))
        else:
            tokens.append(_Token("op", match.group("op"),
                                 match.group("op")))
    tokens.append(_Token("end", None, "<end of query>"))
    return tokens


# ----------------------------------------------------------------------
# Expression model.  Row expressions evaluate per row; aggregate
# expressions evaluate over a group of rows.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Column:
    name: str

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return row.get(self.name)

    def label(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Literal:
    value: Any

    def evaluate(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def label(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class _Aggregate:
    function: str
    argument: Optional[_Column]  # None = COUNT(*)

    def evaluate_group(self, rows: Sequence[Mapping[str, Any]]) -> Any:
        if self.function == "COUNT" and self.argument is None:
            return len(rows)
        values = [self.argument.evaluate(row) for row in rows]
        values = [value for value in values if value is not None]
        if self.function == "COUNT":
            return len(values)
        if not values:
            return None
        if self.function == "SUM":
            return sum(values)
        if self.function == "AVG":
            return sum(values) / len(values)
        if self.function == "MIN":
            return min(values)
        return max(values)

    def label(self) -> str:
        inner = "*" if self.argument is None else self.argument.name
        return f"{self.function.lower()}({inner})"


@dataclass(frozen=True)
class _SelectItem:
    expression: Any  # _Column | _Literal | _Aggregate
    alias: Optional[str]

    def label(self) -> str:
        return self.alias or self.expression.label()


class _Parser:
    def __init__(self, sql: str) -> None:
        self.tokens = _tokenize(sql)
        self.position = 0

    # -- token helpers ------------------------------------------------
    @property
    def current(self) -> _Token:
        return self.tokens[self.position]

    def advance(self) -> _Token:
        token = self.current
        self.position += 1
        return token

    def at_keyword(self, *names: str) -> bool:
        return self.current.kind == "keyword" and self.current.value in names

    def expect_keyword(self, name: str) -> None:
        if not self.at_keyword(name):
            raise MiniSQLError(
                f"expected {name}, got {self.current.text!r}" + _HINT)
        self.advance()

    def accept_op(self, op: str) -> bool:
        if self.current.kind == "op" and self.current.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise MiniSQLError(
                f"expected {op!r}, got {self.current.text!r}" + _HINT)

    # -- grammar ------------------------------------------------------
    def parse(self) -> "_Query":
        self.expect_keyword("SELECT")
        distinct = False
        if self.at_keyword("DISTINCT"):
            distinct = True
            self.advance()
        items = self._select_items()
        self.expect_keyword("FROM")
        if self.current.kind != "ident":
            raise MiniSQLError(
                f"expected a table name after FROM, got "
                f"{self.current.text!r}" + _HINT)
        table = self.advance().value
        where = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self._or_expression()
        group_by: List[_Column] = []
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by = self._column_list()
        order_by: List[Tuple[Any, bool]] = []
        if self.at_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            order_by = self._order_list()
        limit = None
        if self.at_keyword("LIMIT"):
            self.advance()
            if self.current.kind != "number" or \
                    not isinstance(self.current.value, int):
                raise MiniSQLError("LIMIT expects an integer" + _HINT)
            limit = self.advance().value
        if self.current.kind != "end":
            raise MiniSQLError(
                f"unsupported trailing syntax at {self.current.text!r}"
                + _HINT)
        return _Query(items=items, distinct=distinct, table=table,
                      where=where, group_by=group_by, order_by=order_by,
                      limit=limit)

    def _select_items(self) -> List[_SelectItem]:
        if self.accept_op("*"):
            return [_SelectItem(expression=None, alias=None)]  # SELECT *
        items = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> _SelectItem:
        expression = self._value_expression()
        alias = None
        if self.at_keyword("AS"):
            self.advance()
            if self.current.kind != "ident":
                raise MiniSQLError(
                    f"expected an alias after AS, got "
                    f"{self.current.text!r}" + _HINT)
            alias = self.advance().value
        return _SelectItem(expression=expression, alias=alias)

    def _value_expression(self):
        token = self.current
        if token.kind == "ident" and token.value.upper() in _AGGREGATES \
                and self.tokens[self.position + 1].text == "(":
            function = self.advance().value.upper()
            self.expect_op("(")
            if self.accept_op("*"):
                if function != "COUNT":
                    raise MiniSQLError(
                        f"{function}(*) is not a thing; only COUNT(*)"
                        + _HINT)
                argument = None
            else:
                argument = self._column()
            self.expect_op(")")
            return _Aggregate(function=function, argument=argument)
        if token.kind == "ident":
            return self._column()
        if token.kind in ("number", "string"):
            return _Literal(self.advance().value)
        if self.at_keyword("NULL"):
            self.advance()
            return _Literal(None)
        if self.at_keyword("TRUE"):
            self.advance()
            return _Literal(True)
        if self.at_keyword("FALSE"):
            self.advance()
            return _Literal(False)
        raise MiniSQLError(
            f"unsupported expression at {token.text!r}" + _HINT)

    def _column(self) -> _Column:
        if self.current.kind != "ident":
            raise MiniSQLError(
                f"expected a column name, got {self.current.text!r}"
                + _HINT)
        name = self.advance().value
        if self.accept_op("."):  # table.column — table prefix is noise
            if self.current.kind != "ident":
                raise MiniSQLError(
                    f"expected a column after {name}., got "
                    f"{self.current.text!r}" + _HINT)
            name = self.advance().value
        return _Column(name)

    def _column_list(self) -> List[_Column]:
        columns = [self._column()]
        while self.accept_op(","):
            columns.append(self._column())
        return columns

    def _order_list(self) -> List[Tuple[Any, bool]]:
        entries = []
        while True:
            expression = self._value_expression()
            descending = False
            if self.at_keyword("ASC"):
                self.advance()
            elif self.at_keyword("DESC"):
                self.advance()
                descending = True
            entries.append((expression, descending))
            if not self.accept_op(","):
                return entries

    # -- conditions ---------------------------------------------------
    def _or_expression(self):
        terms = [self._and_expression()]
        while self.at_keyword("OR"):
            self.advance()
            terms.append(self._and_expression())
        if len(terms) == 1:
            return terms[0]
        return lambda row: any(term(row) for term in terms)

    def _and_expression(self):
        terms = [self._not_expression()]
        while self.at_keyword("AND"):
            self.advance()
            terms.append(self._not_expression())
        if len(terms) == 1:
            return terms[0]
        return lambda row: all(term(row) for term in terms)

    def _not_expression(self):
        if self.at_keyword("NOT"):
            self.advance()
            inner = self._not_expression()
            return lambda row: not inner(row)
        return self._predicate()

    def _predicate(self):
        if self.accept_op("("):
            inner = self._or_expression()
            self.expect_op(")")
            return inner
        left = self._value_expression()
        if isinstance(left, _Aggregate):
            raise MiniSQLError(
                "aggregates are not allowed in WHERE" + _HINT)
        if self.at_keyword("IS"):
            self.advance()
            negate = False
            if self.at_keyword("NOT"):
                self.advance()
                negate = True
            self.expect_keyword("NULL")
            if negate:
                return lambda row: left.evaluate(row) is not None
            return lambda row: left.evaluate(row) is None
        if self.at_keyword("IN"):
            self.advance()
            self.expect_op("(")
            members = [self._value_expression()]
            while self.accept_op(","):
                members.append(self._value_expression())
            self.expect_op(")")
            literals = {member.value for member in members
                        if isinstance(member, _Literal)}
            if len(literals) != len(members):
                raise MiniSQLError(
                    "IN expects a literal list" + _HINT)
            return lambda row: left.evaluate(row) in literals
        if self.current.kind != "op" or self.current.value not in (
                "=", "!=", "<>", "<", "<=", ">", ">="):
            raise MiniSQLError(
                f"expected a comparison, got {self.current.text!r}"
                + _HINT)
        op = self.advance().value
        right = self._value_expression()
        if isinstance(right, _Aggregate):
            raise MiniSQLError(
                "aggregates are not allowed in WHERE" + _HINT)
        return _comparison(left, op, right)


def _comparison(left, op: str, right) -> Callable[[Mapping[str, Any]], bool]:
    def check(row: Mapping[str, Any]) -> bool:
        a, b = left.evaluate(row), right.evaluate(row)
        if op in ("=", "!=", "<>"):
            equal = a == b and (a is None) == (b is None)
            return equal if op == "=" else not equal
        if a is None or b is None:
            return False
        try:
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            return a >= b
        except TypeError:
            return False
    return check


@dataclass(frozen=True)
class _Query:
    items: List[_SelectItem]
    distinct: bool
    table: str
    where: Optional[Callable[[Mapping[str, Any]], bool]]
    group_by: List[_Column]
    order_by: List[Tuple[Any, bool]]
    limit: Optional[int]


def _sort_key(value: Any) -> Tuple[int, Any]:
    """A total order over heterogeneous cells: NULLs last, then by type."""
    if value is None:
        return (3, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (2, str(value))


def execute(sql: str,
            tables: Mapping[str, Sequence[Mapping[str, Any]]],
            columns: Optional[Mapping[str, Sequence[str]]] = None,
            ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    """Evaluate one query; returns ``(column labels, result tuples)``.

    ``tables`` maps case-insensitive table names to row dicts;
    ``columns`` optionally pins each table's column order for
    ``SELECT *`` (defaulting to first-seen order across its rows).
    """
    query = _Parser(sql).parse()
    lookup = {name.lower(): name for name in tables}
    actual = lookup.get(query.table.lower())
    if actual is None:
        raise MiniSQLError(
            f"unknown table {query.table!r}; available: "
            f"{', '.join(sorted(tables))}")
    rows = [row for row in tables[actual]
            if query.where is None or query.where(row)]

    select_star = any(item.expression is None for item in query.items)
    if select_star:
        if columns and actual in columns:
            star_columns = list(columns[actual])
        else:
            star_columns = _first_seen_columns(tables[actual])
        items = [_SelectItem(expression=_Column(name), alias=None)
                 for name in star_columns]
    else:
        items = query.items
    aggregated = any(isinstance(item.expression, _Aggregate)
                     for item in items)

    labels = [item.label() for item in items]
    if query.group_by or aggregated:
        if select_star:
            raise MiniSQLError("SELECT * cannot be aggregated" + _HINT)
        result = _evaluate_groups(items, rows, query.group_by)
    else:
        result = [tuple(item.expression.evaluate(row) for item in items)
                  for row in rows]

    if query.distinct:
        seen = set()
        deduped = []
        for row in result:
            marker = tuple(_sort_key(cell) for cell in row)
            if marker not in seen:
                seen.add(marker)
                deduped.append(row)
        result = deduped

    for expression, descending in reversed(query.order_by):
        index = _order_index(expression, items, labels)
        result.sort(key=lambda row: _sort_key(row[index]),
                    reverse=descending)
    if query.limit is not None:
        result = result[:query.limit]
    return labels, result


def _first_seen_columns(rows: Iterable[Mapping[str, Any]]) -> List[str]:
    columns: List[str] = []
    seen = set()
    for row in rows:
        for name in row:
            if name not in seen:
                seen.add(name)
                columns.append(name)
    return columns


def _order_index(expression, items: List[_SelectItem],
                 labels: List[str]) -> int:
    if isinstance(expression, _Column) and expression.name in labels:
        return labels.index(expression.name)
    for index, item in enumerate(items):
        if item.expression == expression:
            return index
    raise MiniSQLError(
        f"ORDER BY must name a selected column; got "
        f"{expression.label()!r} not in {labels}" + _HINT)


def _evaluate_groups(items: List[_SelectItem],
                     rows: List[Mapping[str, Any]],
                     group_by: List[_Column]) -> List[Tuple[Any, ...]]:
    for item in items:
        if isinstance(item.expression, _Aggregate):
            continue
        if isinstance(item.expression, _Literal):
            continue
        if not any(column.name == item.expression.name
                   for column in group_by):
            raise MiniSQLError(
                f"column {item.expression.name!r} must appear in GROUP BY "
                f"or inside an aggregate" + _HINT)
    groups: Dict[Tuple[Tuple[int, Any], ...],
                 Tuple[Tuple[Any, ...], List[Mapping[str, Any]]]] = {}
    if not group_by:  # a global aggregate: one group over everything
        groups[()] = ((), list(rows))
    for row in rows if group_by else []:
        key_values = tuple(column.evaluate(row) for column in group_by)
        marker = tuple(_sort_key(value) for value in key_values)
        groups.setdefault(marker, (key_values, []))[1].append(row)
    result = []
    for _, (key_values, members) in sorted(groups.items()):
        record = dict(zip((column.name for column in group_by),
                          key_values))
        out = []
        for item in items:
            if isinstance(item.expression, _Aggregate):
                out.append(item.expression.evaluate_group(members))
            else:
                out.append(item.expression.evaluate(record)
                           if isinstance(item.expression, _Column)
                           else item.expression.evaluate({}))
        result.append(tuple(out))
    return result


__all__ = ["MiniSQLError", "execute"]
