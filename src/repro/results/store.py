"""The persistent results store: one directory per run, JSONL rows.

A *run* is one (experiment, parameters) execution.  Its directory is
content-addressed — ``<root>/<experiment>/<digest>`` where the digest
hashes the experiment name and the canonical JSON of its resolved
parameters — so rerunning the same configuration lands in the same
directory and resumes instead of recomputing.

Layout::

    results/E2/1a2b3c4d5e6f/
        manifest.json   # experiment, params, seed, workers, wall time, ...
        rows.jsonl      # one {"index", "key", "row"} object per data row
        rows.parquet    # columnar copy (or rows.columns.json), written
                        # by finish() and verified lossless — see
                        # repro.results.columnar

Rows stream to ``rows.jsonl`` the moment their cell completes (the file is
flushed per line), so a killed run keeps everything it finished.  On
rerun, :meth:`RunStore.completed_rows` feeds the already-stored rows back
to :meth:`repro.experiments.base.Experiment.run`, which skips those cells.
Synthetic finalizer rows (the E2/E4 exponential fits) are *never* stored;
they are recomputed from the data rows when a run is rendered.

Two write-boundary guarantees hold for every stored line: values are
canonical strict JSON (non-finite floats become ``null`` — ``NaN`` in a
line would be rejected as torn by strict readers, silently dropping the
row on resume), and the manifest rewrite that keeps ``row_count`` fresh
is *debounced* (at most once per :data:`MANIFEST_EVERY_ROWS` rows or
:data:`MANIFEST_MIN_INTERVAL` seconds) so ingest is not dominated by
O(rows) whole-manifest rewrites.  Reopening a run always rewrites an
exact manifest, so a killed run's count is corrected the moment anything
looks at it through the store.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
import warnings
from typing import (Any, Dict, Iterator, List, Mapping, Optional, Sequence,
                    Tuple)

from repro.experiments.base import Row, RowStore, cell_key_id
from repro.results.columnar import (ColumnarInfo, CompactionError,
                                    columnar_info, compact_run,
                                    read_jsonl_records, read_records,
                                    records_to_rows)
from repro.runner.health import (RunHealth, empty_health_block,
                                 merge_health_block)

MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"
_DIGEST_LENGTH = 12

#: Manifest-rewrite debounce: flush the row count at most once per this
#: many rows...
MANIFEST_EVERY_ROWS = 64
#: ...or once this many seconds have passed since the last rewrite,
#: whichever comes first.  finish()/record_health()/open() always write.
MANIFEST_MIN_INTERVAL = 1.0


def params_digest(experiment: str, params: Mapping[str, Any]) -> str:
    """Content digest identifying one (experiment, params) configuration."""
    canonical = json.dumps({"experiment": experiment,
                            "params": _jsonable(params)},
                           sort_keys=True, allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")) \
        .hexdigest()[:_DIGEST_LENGTH]


def run_directory(root: str, experiment: str,
                  params: Mapping[str, Any]) -> str:
    """The content-addressed directory of a run under ``root``."""
    return os.path.join(root, experiment, params_digest(experiment, params))


def _jsonable(value: Any) -> Any:
    """Canonical strict-JSON data: tuples become lists, non-finite
    floats become None (strict parsers reject ``NaN``/``Infinity``
    tokens, so they must never reach a stored line)."""
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class RunStore(RowStore):
    """One run directory: the manifest plus streaming JSONL row writes."""

    def __init__(self, path: str, experiment: str,
                 params: Mapping[str, Any],
                 workers: Optional[int] = None,
                 fault_injector: Optional[Any] = None,
                 health: Optional[RunHealth] = None,
                 backend: Optional[str] = None) -> None:
        self.path = path
        self.experiment = experiment
        self.params = _jsonable(params)
        self.workers = workers
        self.backend = backend
        self._fault_injector = fault_injector
        self._health = health
        self._rows: Dict[str, Tuple[int, Row]] = {}
        os.makedirs(self.path, exist_ok=True)
        self._created_at: Optional[str] = None
        self._health_block: Optional[Dict[str, Any]] = None
        self._columnar_block: Optional[Dict[str, Any]] = None
        self._telemetry: Optional[Any] = None
        self._telemetry_block: Optional[Dict[str, Any]] = None
        self._rows_since_manifest = 0
        self._last_manifest_write = 0.0
        if os.path.exists(self._manifest_path):
            manifest = self.manifest
            self._created_at = manifest.get("created_at")
            self._health_block = manifest.get("run_health")
            self._columnar_block = manifest.get("columnar")
            self._telemetry_block = manifest.get("telemetry")
            stored_backend = manifest.get("backend")
            if backend is None:
                # A read-only open keeps whatever the run recorded.
                self.backend = stored_backend
            elif stored_backend is not None and stored_backend != backend:
                # A resume under a different backend is recorded as
                # "mixed" so readers never mistake the run's rows for a
                # single backend's output.
                self.backend = "mixed"
        self._load_existing()
        # Constructing a store only *reads*; the manifest is (re)written
        # by open(), write_row() and finish(), never on the load path.

    # -- opening ------------------------------------------------------
    @classmethod
    def open(cls, root: str, experiment: str, params: Mapping[str, Any],
             workers: Optional[int] = None,
             fault_injector: Optional[Any] = None,
             health: Optional[RunHealth] = None,
             backend: Optional[str] = None) -> "RunStore":
        """Open (creating or resuming) the run for this configuration."""
        store = cls(run_directory(root, experiment, params), experiment,
                    params, workers=workers, fault_injector=fault_injector,
                    health=health, backend=backend)
        store._write_manifest(completed=store._manifest_completed(),
                              wall_time=store._manifest_wall_time())
        return store

    # -- telemetry ----------------------------------------------------
    def attach_telemetry(self, telemetry: Optional[Any]) -> None:
        """Point a telemetry recorder's sink at this run's event log.

        From here on the recorder appends to ``telemetry.jsonl`` in the
        run directory, the store mirrors its row/manifest writes into
        its counters, and every manifest rewrite summarizes it into the
        ``telemetry`` block (merged over previous segments exactly like
        ``run_health``).  Duck-typed: anything with ``sink`` /
        ``count`` / ``summary`` works.
        """
        self._telemetry = telemetry
        if telemetry is not None and getattr(telemetry, "sink", 0) is None:
            from repro.telemetry import TELEMETRY_NAME
            telemetry.sink = os.path.join(self.path, TELEMETRY_NAME)

    def _count(self, name: str, delta: int = 1) -> None:
        if self._telemetry is not None:
            self._telemetry.count(name, delta)

    # -- the RowStore contract ---------------------------------------
    def completed_rows(self) -> Dict[str, Row]:
        return {key: row for key, (_, row) in self._rows.items()}

    def write_row(self, index: int, key: Sequence[Any], row: Row) -> None:
        key_id = cell_key_id(key)
        record = {"index": index, "key": _jsonable(list(key)),
                  "row": _jsonable(row)}
        payload = json.dumps(record, allow_nan=False)
        with open(self._rows_path, "a") as handle:
            if self._fault_injector is not None and \
                    self._fault_injector.decide_torn(key_id):
                # Injected torn write: a truncated (unparseable) copy of
                # the record on its own line, modelling a kill mid-write.
                # The loader skips torn lines, and the intact record
                # below is the recovery write.
                handle.write(payload[:max(1, len(payload) // 2)] + "\n")
                if self._health is not None:
                    self._health.torn_writes += 1
            handle.write(payload + "\n")
            handle.flush()
        self._rows[key_id] = (record["index"], record["row"])
        self._count("rows_written")
        # Keep row_count reasonably current for a killed run without an
        # O(rows) whole-manifest rewrite per row: debounced, and exact
        # again at the next open()/finish().
        self._rows_since_manifest += 1
        if self._rows_since_manifest >= MANIFEST_EVERY_ROWS or \
                time.monotonic() - self._last_manifest_write \
                >= MANIFEST_MIN_INTERVAL:
            self._write_manifest(completed=False, wall_time=None)

    def record_health(self, health: Optional[RunHealth]) -> None:
        """Fold one execution's health ledger into the manifest.

        Counters accumulate across resumed runs; a clean ledger is a
        no-op (the manifest keeps its existing block untouched).  The
        store's own live ledger (``health=`` at construction) is already
        folded in by every manifest rewrite — mid-run manifests of a
        killed run carry it too, not just finished ones — so recording
        it here only forces an immediate rewrite.
        """
        if health is None or health.clean:
            return
        if health is not self._health:
            self._health_block = merge_health_block(self._health_block,
                                                    health)
        self._write_manifest(completed=self._manifest_completed(),
                             wall_time=self._manifest_wall_time())

    # -- completion ---------------------------------------------------
    def finish(self, wall_time: float, compact: bool = True) -> None:
        """Mark the run complete, record its wall time, and compact.

        Compaction (:func:`repro.results.columnar.compact_run`) rewrites
        the jsonl rows into a verified-lossless columnar copy for the
        query layer; a compaction failure is reported as a warning and
        never fails the run — ``rows.jsonl`` remains the ground truth.
        """
        if compact:
            try:
                info = compact_run(self.path)
            except (CompactionError, OSError) as error:
                warnings.warn(f"{self.path}: columnar compaction failed "
                              f"({error}); queries will scan rows.jsonl",
                              RuntimeWarning, stacklevel=2)
                info = None
            self._columnar_block = \
                info.as_manifest_block() if info else None
        self._write_manifest(completed=True, wall_time=wall_time)

    # -- artifacts ----------------------------------------------------
    def artifact_path(self, *parts: str) -> str:
        """An absolute path for an artifact file inside the run directory.

        Creates the parent directory, so callers (the fuzz campaign's
        minimized counterexamples, the search campaign's best-schedule
        files) can write straight to the returned path.
        """
        path = os.path.join(self.path, *parts)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    # -- reading back -------------------------------------------------
    @property
    def manifest(self) -> Dict[str, Any]:
        with open(self._manifest_path) as handle:
            return json.load(handle)

    def rows(self) -> List[Row]:
        """The stored data rows, in cell order."""
        return [row for _, row in
                sorted(self._rows.values(), key=lambda item: item[0])]

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def columnar(self) -> Optional[ColumnarInfo]:
        """The run's columnar copy, when one exists on disk."""
        return columnar_info(self.path)

    # -- internals ----------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    @property
    def _rows_path(self) -> str:
        return os.path.join(self.path, ROWS_NAME)

    def _manifest_completed(self) -> bool:
        if not os.path.exists(self._manifest_path):
            return False
        return bool(self.manifest.get("completed"))

    def _manifest_wall_time(self) -> Optional[float]:
        if not os.path.exists(self._manifest_path):
            return None
        return self.manifest.get("wall_time_seconds")

    def _load_existing(self) -> None:
        # The write-side load always parses rows.jsonl (the append-only
        # ground truth) — resume must see rows written *after* the last
        # compaction, so the columnar copy is only a read-path artifact.
        for record in read_jsonl_records(self._rows_path):
            self._rows[cell_key_id(record["key"])] = \
                (record["index"], record["row"])

    def _current_health_block(self) -> Dict[str, Any]:
        """The manifest's ``run_health`` block as of right now.

        The baseline (previous segments, plus legacy ledgers recorded
        explicitly) is folded with the *live* ledger at write time; the
        baseline itself is never mutated in-process, so repeated
        rewrites of a still-running segment cannot double-count it.
        """
        block = self._health_block
        if self._health is not None and not self._health.clean:
            block = merge_health_block(block, self._health)
        return block if block is not None else empty_health_block()

    def _current_telemetry_block(self) -> Optional[Dict[str, Any]]:
        """The ``telemetry`` block: prior segments + the live recorder."""
        if self._telemetry is None:
            return self._telemetry_block
        from repro.telemetry import merge_telemetry_block
        return merge_telemetry_block(self._telemetry_block,
                                     self._telemetry.summary())

    def _write_manifest(self, completed: bool,
                        wall_time: Optional[float]) -> None:
        from repro import __version__

        if self._created_at is None:
            self._created_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        self._count("manifest_flushes")
        manifest = {
            "experiment": self.experiment,
            "params": self.params,
            "seed": self.params.get("seed"),
            "workers": self.workers,
            "backend": self.backend,
            "package_version": __version__,
            "created_at": self._created_at,
            "completed": completed,
            "wall_time_seconds": wall_time,
            "row_count": len(self._rows),
            "columnar": self._columnar_block,
            "run_health": self._current_health_block(),
        }
        telemetry_block = self._current_telemetry_block()
        if telemetry_block is not None:
            manifest["telemetry"] = telemetry_block
        tmp_path = self._manifest_path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True,
                      allow_nan=False)
            handle.write("\n")
        os.replace(tmp_path, self._manifest_path)
        self._rows_since_manifest = 0
        self._last_manifest_write = time.monotonic()


def read_manifest(run_dir: str) -> Dict[str, Any]:
    """A run directory's manifest, validated just enough to be usable.

    Raises:
        FileNotFoundError: no ``manifest.json`` in ``run_dir`` (also the
            verdict for a stray *file* posing as a run directory — no
            raw ``NotADirectoryError`` escapes).
        ValueError: the manifest is unparseable or has no ``experiment``
            field.
    """
    manifest_path = os.path.join(run_dir, MANIFEST_NAME)
    if not os.path.isfile(manifest_path):
        raise FileNotFoundError(
            f"{run_dir!r} is not a run directory (no {MANIFEST_NAME})")
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"unreadable manifest at {manifest_path}: {error}") from error
    if not isinstance(manifest, dict) or "experiment" not in manifest:
        raise ValueError(
            f"manifest at {manifest_path} has no 'experiment' field")
    return manifest


def load_run(path: str) -> Tuple[Dict[str, Any], List[Row]]:
    """Load a stored run: (manifest, data rows in cell order).

    Reads through the columnar copy when a fresh one exists (see
    :func:`repro.results.columnar.read_records`), so rendering large
    stored runs does not pay the line-by-line jsonl parse.
    """
    manifest = read_manifest(path)
    records, _ = read_records(path)
    return manifest, records_to_rows(records)


def list_runs(root: str,
              experiment: Optional[str] = None) -> List[str]:
    """Run directories under ``root`` (optionally one experiment's),
    newest manifest first.

    Stray files and unreadable directories under the results root are
    skipped (with a warning for the unreadable ones) — one piece of
    debris must never brick every reader of the store.
    """
    if experiment:
        experiment_dirs = [os.path.join(root, experiment)]
    elif os.path.isdir(root):
        experiment_dirs = [os.path.join(root, name)
                           for name in sorted(os.listdir(root))]
    else:
        experiment_dirs = []
    runs: List[Tuple[float, str, str]] = []
    for experiment_dir in experiment_dirs:
        if not os.path.isdir(experiment_dir):
            continue
        try:
            digests = sorted(os.listdir(experiment_dir))
        except OSError as error:
            warnings.warn(f"skipping unreadable results directory "
                          f"{experiment_dir}: {error}", RuntimeWarning,
                          stacklevel=2)
            continue
        for digest in digests:
            run_dir = os.path.join(experiment_dir, digest)
            manifest = os.path.join(run_dir, MANIFEST_NAME)
            try:
                if not os.path.isfile(manifest):
                    continue
                # Filesystem mtimes have coarse resolution, so two runs
                # written back-to-back can tie; the digest breaks the tie
                # deterministically instead of leaving the order to
                # directory-listing accidents.
                runs.append((os.path.getmtime(manifest), digest, run_dir))
            except OSError as error:
                warnings.warn(f"skipping unreadable run directory "
                              f"{run_dir}: {error}", RuntimeWarning,
                              stacklevel=2)
    runs.sort(reverse=True)
    return [run_dir for _, _, run_dir in runs]


def scan_runs(root: str, experiment: Optional[str] = None
              ) -> Iterator[Tuple[str, Dict[str, Any], List[Dict[str, Any]]]]:
    """Iterate every loadable run: ``(run_dir, manifest, records)``.

    The query/report layer's mount path: corrupt manifests, stray files
    and unreadable rows are skipped with a warning instead of raising,
    so one damaged run directory cannot take ``repro query`` down for
    the whole store.
    """
    for run_dir in list_runs(root, experiment=experiment):
        try:
            manifest = read_manifest(run_dir)
            records, _ = read_records(run_dir)
        except (OSError, ValueError, KeyError) as error:
            warnings.warn(f"skipping unloadable run {run_dir}: {error}",
                          RuntimeWarning, stacklevel=2)
            continue
        yield run_dir, manifest, records


def latest_run(root: str, experiment: str) -> Optional[str]:
    """The most recent *completed* run directory for one experiment.

    Falls back to the newest partial run when nothing has completed, so
    an interrupted rerun never shadows a finished table.
    """
    runs = list_runs(root, experiment=experiment)
    for run_dir in runs:
        try:
            with open(os.path.join(run_dir, MANIFEST_NAME)) as handle:
                if json.load(handle).get("completed"):
                    return run_dir
        except (OSError, json.JSONDecodeError):
            continue
    return runs[0] if runs else None


__all__ = [
    "MANIFEST_EVERY_ROWS",
    "MANIFEST_MIN_INTERVAL",
    "MANIFEST_NAME",
    "ROWS_NAME",
    "RunStore",
    "params_digest",
    "run_directory",
    "read_manifest",
    "load_run",
    "list_runs",
    "latest_run",
    "scan_runs",
]
