"""The persistent results store: one directory per run, JSONL rows.

A *run* is one (experiment, parameters) execution.  Its directory is
content-addressed — ``<root>/<experiment>/<digest>`` where the digest
hashes the experiment name and the canonical JSON of its resolved
parameters — so rerunning the same configuration lands in the same
directory and resumes instead of recomputing.

Layout::

    results/E2/1a2b3c4d5e6f/
        manifest.json   # experiment, params, seed, workers, wall time, ...
        rows.jsonl      # one {"index", "key", "row"} object per data row

Rows stream to ``rows.jsonl`` the moment their cell completes (the file is
flushed per line), so a killed run keeps everything it finished.  On
rerun, :meth:`RunStore.completed_rows` feeds the already-stored rows back
to :meth:`repro.experiments.base.Experiment.run`, which skips those cells.
Synthetic finalizer rows (the E2/E4 exponential fits) are *never* stored;
they are recomputed from the data rows when a run is rendered.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.base import Row, RowStore, cell_key_id
from repro.runner.health import (RunHealth, empty_health_block,
                                 merge_health_block)

MANIFEST_NAME = "manifest.json"
ROWS_NAME = "rows.jsonl"
_DIGEST_LENGTH = 12


def params_digest(experiment: str, params: Mapping[str, Any]) -> str:
    """Content digest identifying one (experiment, params) configuration."""
    canonical = json.dumps({"experiment": experiment,
                            "params": _jsonable(params)},
                           sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")) \
        .hexdigest()[:_DIGEST_LENGTH]


def run_directory(root: str, experiment: str,
                  params: Mapping[str, Any]) -> str:
    """The content-addressed directory of a run under ``root``."""
    return os.path.join(root, experiment, params_digest(experiment, params))


def _jsonable(value: Any) -> Any:
    """Params as plain JSON data (tuples become lists)."""
    if isinstance(value, Mapping):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


class RunStore(RowStore):
    """One run directory: the manifest plus streaming JSONL row writes."""

    def __init__(self, path: str, experiment: str,
                 params: Mapping[str, Any],
                 workers: Optional[int] = None,
                 fault_injector: Optional[Any] = None,
                 health: Optional[RunHealth] = None,
                 backend: Optional[str] = None) -> None:
        self.path = path
        self.experiment = experiment
        self.params = _jsonable(params)
        self.workers = workers
        self.backend = backend
        self._fault_injector = fault_injector
        self._health = health
        self._rows: Dict[str, Tuple[int, Row]] = {}
        os.makedirs(self.path, exist_ok=True)
        self._created_at: Optional[str] = None
        self._health_block: Optional[Dict[str, Any]] = None
        if os.path.exists(self._manifest_path):
            manifest = self.manifest
            self._created_at = manifest.get("created_at")
            self._health_block = manifest.get("run_health")
            stored_backend = manifest.get("backend")
            if backend is None:
                # A read-only open keeps whatever the run recorded.
                self.backend = stored_backend
            elif stored_backend is not None and stored_backend != backend:
                # A resume under a different backend is recorded as
                # "mixed" so readers never mistake the run's rows for a
                # single backend's output.
                self.backend = "mixed"
        self._load_existing()
        # Constructing a store only *reads*; the manifest is (re)written
        # by open(), write_row() and finish(), never on the load path.

    # -- opening ------------------------------------------------------
    @classmethod
    def open(cls, root: str, experiment: str, params: Mapping[str, Any],
             workers: Optional[int] = None,
             fault_injector: Optional[Any] = None,
             health: Optional[RunHealth] = None,
             backend: Optional[str] = None) -> "RunStore":
        """Open (creating or resuming) the run for this configuration."""
        store = cls(run_directory(root, experiment, params), experiment,
                    params, workers=workers, fault_injector=fault_injector,
                    health=health, backend=backend)
        store._write_manifest(completed=store._manifest_completed(),
                              wall_time=store._manifest_wall_time())
        return store

    # -- the RowStore contract ---------------------------------------
    def completed_rows(self) -> Dict[str, Row]:
        return {key: row for key, (_, row) in self._rows.items()}

    def write_row(self, index: int, key: Sequence[Any], row: Row) -> None:
        key_id = cell_key_id(key)
        payload = json.dumps({"index": index, "key": list(key), "row": row})
        with open(self._rows_path, "a") as handle:
            if self._fault_injector is not None and \
                    self._fault_injector.decide_torn(key_id):
                # Injected torn write: a truncated (unparseable) copy of
                # the record on its own line, modelling a kill mid-write.
                # The loader skips torn lines, and the intact record
                # below is the recovery write.
                handle.write(payload[:max(1, len(payload) // 2)] + "\n")
                if self._health is not None:
                    self._health.torn_writes += 1
            handle.write(payload + "\n")
            handle.flush()
        self._rows[key_id] = (index, row)
        # Keep row_count current so a killed run's manifest is accurate.
        self._write_manifest(completed=False, wall_time=None)

    def record_health(self, health: Optional[RunHealth]) -> None:
        """Fold one execution's health ledger into the manifest.

        Counters accumulate across resumed runs; a clean ledger is a
        no-op (the manifest keeps its existing block untouched).
        """
        if health is None or health.clean:
            return
        self._health_block = merge_health_block(self._health_block, health)
        self._write_manifest(completed=self._manifest_completed(),
                             wall_time=self._manifest_wall_time())

    # -- completion ---------------------------------------------------
    def finish(self, wall_time: float) -> None:
        """Mark the run complete and record its wall time."""
        self._write_manifest(completed=True, wall_time=wall_time)

    # -- artifacts ----------------------------------------------------
    def artifact_path(self, *parts: str) -> str:
        """An absolute path for an artifact file inside the run directory.

        Creates the parent directory, so callers (the fuzz campaign's
        minimized counterexamples, the search campaign's best-schedule
        files) can write straight to the returned path.
        """
        path = os.path.join(self.path, *parts)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    # -- reading back -------------------------------------------------
    @property
    def manifest(self) -> Dict[str, Any]:
        with open(self._manifest_path) as handle:
            return json.load(handle)

    def rows(self) -> List[Row]:
        """The stored data rows, in cell order."""
        return [row for _, row in
                sorted(self._rows.values(), key=lambda item: item[0])]

    @property
    def row_count(self) -> int:
        return len(self._rows)

    # -- internals ----------------------------------------------------
    @property
    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    @property
    def _rows_path(self) -> str:
        return os.path.join(self.path, ROWS_NAME)

    def _manifest_completed(self) -> bool:
        if not os.path.exists(self._manifest_path):
            return False
        return bool(self.manifest.get("completed"))

    def _manifest_wall_time(self) -> Optional[float]:
        if not os.path.exists(self._manifest_path):
            return None
        return self.manifest.get("wall_time_seconds")

    def _load_existing(self) -> None:
        if not os.path.exists(self._rows_path):
            return
        with open(self._rows_path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A run killed mid-write leaves a torn final line;
                    # everything before it is still good.
                    continue
                self._rows[cell_key_id(record["key"])] = \
                    (record["index"], record["row"])

    def _write_manifest(self, completed: bool,
                        wall_time: Optional[float]) -> None:
        from repro import __version__

        if self._created_at is None:
            self._created_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")
        manifest = {
            "experiment": self.experiment,
            "params": self.params,
            "seed": self.params.get("seed"),
            "workers": self.workers,
            "backend": self.backend,
            "package_version": __version__,
            "created_at": self._created_at,
            "completed": completed,
            "wall_time_seconds": wall_time,
            "row_count": len(self._rows),
            "run_health": self._health_block if self._health_block
            is not None else empty_health_block(),
        }
        tmp_path = self._manifest_path + ".tmp"
        with open(tmp_path, "w") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self._manifest_path)


def load_run(path: str) -> Tuple[Dict[str, Any], List[Row]]:
    """Load a stored run: (manifest, data rows in cell order)."""
    manifest_path = os.path.join(path, MANIFEST_NAME)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    store = RunStore(path, manifest["experiment"], manifest["params"],
                     workers=manifest.get("workers"))
    return store.manifest, store.rows()


def list_runs(root: str,
              experiment: Optional[str] = None) -> List[str]:
    """Run directories under ``root`` (optionally one experiment's),
    newest manifest first."""
    if experiment:
        experiment_dirs = [os.path.join(root, experiment)]
    elif os.path.isdir(root):
        experiment_dirs = [os.path.join(root, name)
                           for name in sorted(os.listdir(root))]
    else:
        experiment_dirs = []
    runs: List[Tuple[float, str, str]] = []
    for experiment_dir in experiment_dirs:
        if not os.path.isdir(experiment_dir):
            continue
        for digest in sorted(os.listdir(experiment_dir)):
            run_dir = os.path.join(experiment_dir, digest)
            manifest = os.path.join(run_dir, MANIFEST_NAME)
            if os.path.isfile(manifest):
                # Filesystem mtimes have coarse resolution, so two runs
                # written back-to-back can tie; the digest breaks the tie
                # deterministically instead of leaving the order to
                # directory-listing accidents.
                runs.append((os.path.getmtime(manifest), digest, run_dir))
    runs.sort(reverse=True)
    return [run_dir for _, _, run_dir in runs]


def latest_run(root: str, experiment: str) -> Optional[str]:
    """The most recent *completed* run directory for one experiment.

    Falls back to the newest partial run when nothing has completed, so
    an interrupted rerun never shadows a finished table.
    """
    runs = list_runs(root, experiment=experiment)
    for run_dir in runs:
        try:
            with open(os.path.join(run_dir, MANIFEST_NAME)) as handle:
                if json.load(handle).get("completed"):
                    return run_dir
        except (OSError, json.JSONDecodeError):
            continue
    return runs[0] if runs else None


__all__ = [
    "MANIFEST_NAME",
    "ROWS_NAME",
    "RunStore",
    "params_digest",
    "run_directory",
    "load_run",
    "list_runs",
    "latest_run",
]
