"""``repro.telemetry`` — structured observability for the execution stack.

One :class:`Telemetry` recorder rides along a campaign and is threaded
(as a single optional ``telemetry=`` parameter) through every execution
layer: the CLI opens the root ``campaign`` span, experiment/fuzz/search
loops open ``cell``/``generation`` spans, the runner and supervisor
record ``chunk``/``trial`` spans from worker-reported timings, and the
batched backend records one ``batch`` span per vectorized group.
Counters and gauges (trials completed, retries, rows written, worker
utilization...) ride the same event stream, which persists as a per-run
``telemetry.jsonl`` next to ``rows.jsonl`` and is summarized into the
manifest's ``telemetry`` block.

The **observer-effect guarantee** is the design constraint everything
here obeys: result rows are bit-identical with telemetry on, off, or
resumed mid-run, across any worker count and both backends.  Telemetry
consumes wall-clock time and nothing else — it never reads the seeded
entropy streams (lint check T2) and simulation/protocol/adversary code
never imports it (lint check T1).

See the "Telemetry & profiling" section of PERFORMANCE.md for the event
schema, span vocabulary, query recipes and the overhead budget.
"""

from repro.telemetry.profiler import (PROFILE_DIR, ProfileSession,
                                      profile_session)
from repro.telemetry.progress import ProgressRenderer
from repro.telemetry.recorder import (TELEMETRY_NAME, Telemetry,
                                      merge_telemetry_block, read_events)

__all__ = [
    "PROFILE_DIR",
    "ProfileSession",
    "ProgressRenderer",
    "TELEMETRY_NAME",
    "Telemetry",
    "merge_telemetry_block",
    "profile_session",
    "read_events",
]
