"""The live campaign progress renderer (a :class:`Telemetry` listener).

Subscribed to a recorder with ``telemetry.add_listener(renderer)``, the
renderer watches the ``trials_completed`` counter against the
``trials_total`` gauge and keeps one status line fresh: completed/total,
trial rate, ETA, and the executor gauges (workers, in-flight chunks).

On a TTY the line redraws in place (``\\r``, rate-limited to
:data:`TTY_INTERVAL` seconds); on anything else it degrades to plain
lines at most every :data:`PLAIN_INTERVAL` seconds — a quick run that
finishes inside the interval prints nothing at all, so captured CLI
output in tests and pipelines stays clean.  Output goes to stderr:
stdout carries the campaign's actual tables.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

TTY_INTERVAL = 0.1
"""Minimum seconds between in-place redraws on a TTY."""

PLAIN_INTERVAL = 5.0
"""Minimum seconds between plain progress lines off a TTY."""


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN: unknown
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressRenderer:
    """Render live campaign progress from the telemetry event stream.

    Args:
        label: campaign label leading every line (``run E2``, ``fuzz``).
        stream: output stream (default: ``sys.stderr``).
        interactive: force TTY / plain mode (default: autodetect from
            ``stream.isatty()``).
    """

    def __init__(self, label: str, stream: Optional[TextIO] = None,
                 interactive: Optional[bool] = None) -> None:
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        if interactive is None:
            try:
                interactive = bool(self.stream.isatty())
            except (AttributeError, ValueError):
                interactive = False
        self.interactive = interactive
        self._started = time.time()
        # A TTY line can start redrawing immediately; plain mode waits a
        # full interval first, so runs shorter than it print nothing.
        self._last_render = 0.0 if self.interactive else self._started
        self._completed = 0
        self._total: Optional[int] = None
        self._gauges: Dict[str, Any] = {}
        self._line_open = False

    # -- the Telemetry listener protocol ------------------------------
    def __call__(self, event: Dict[str, Any]) -> None:
        kind = event.get("kind")
        if kind == "counter" and event.get("name") == "trials_completed":
            self._completed += int(event.get("delta") or 0)
        elif kind == "gauge":
            name = event.get("name")
            if name == "trials_total":
                self._total = int(event.get("value") or 0)
            elif name is not None:
                self._gauges[name] = event.get("value")
        else:
            return
        interval = TTY_INTERVAL if self.interactive else PLAIN_INTERVAL
        now = time.time()
        if now - self._last_render < interval:
            return
        self._last_render = now
        self._render(now)

    # -- rendering ----------------------------------------------------
    def status_line(self, now: Optional[float] = None) -> str:
        """The current one-line status (without any terminal control)."""
        now = time.time() if now is None else now
        elapsed = max(now - self._started, 1e-9)
        rate = self._completed / elapsed
        parts = [self.label]
        if self._total:
            parts.append(f"{self._completed}/{self._total} trials")
            remaining = self._total - self._completed
            eta = remaining / rate if rate > 0 else float("nan")
            parts.append(f"{rate:.1f}/s")
            parts.append(f"eta {_format_eta(eta)}")
        else:
            parts.append(f"{self._completed} trials")
            parts.append(f"{rate:.1f}/s")
        for name in ("workers", "in_flight", "queue_depth"):
            value = self._gauges.get(name)
            if value is not None:
                parts.append(f"{name}={value}")
        return "  ".join(parts)

    def _render(self, now: float) -> None:
        line = self.status_line(now)
        try:
            if self.interactive:
                self.stream.write("\r\x1b[K" + line)
                self._line_open = True
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass  # a closed/broken stderr must never kill the campaign

    def close(self) -> None:
        """Clear the in-place line (TTY) so the next output starts clean."""
        if not self._line_open:
            return
        self._line_open = False
        try:
            self.stream.write("\r\x1b[K")
            self.stream.flush()
        except (OSError, ValueError):
            pass


__all__ = ["PLAIN_INTERVAL", "TTY_INTERVAL", "ProgressRenderer"]
