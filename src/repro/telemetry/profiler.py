"""Opt-in profiling hooks: cProfile plus named phase timers.

A :class:`ProfileSession` rides along a campaign on
``telemetry.profile`` when the CLI gets ``--profile``.  It wraps the
campaign body in :mod:`cProfile` (deterministic tracing — the profiler
observes wall-clock but never perturbs results) and collects *phase
timers*: named ``perf_counter`` buckets the execution layers fill in —
the batched engine reports its ``deliver``/``tally``/``decide`` window
split through :meth:`phase_dict`.

Artifacts persist through ``RunStore.artifact_path`` under
``profile/``: the raw ``pstats`` dump (load with :mod:`pstats`), a
plain-text top-function listing, and the phase split as JSON.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from typing import Any, Dict, Optional

PROFILE_DIR = "profile"
"""Run-directory subdirectory the profile artifacts land in."""

STATS_NAME = "campaign.pstats"
TOP_NAME = "top-functions.txt"
PHASES_NAME = "phases.json"

_TOP_LIMIT = 30


class ProfileSession:
    """One campaign's profiling state: cProfile plus phase timers."""

    def __init__(self) -> None:
        self.profile = cProfile.Profile()
        self.phase_timers: Dict[str, float] = {}
        self._running = False

    # -- lifecycle ----------------------------------------------------
    def start(self) -> None:
        if not self._running:
            self._running = True
            self.profile.enable()

    def stop(self) -> None:
        if self._running:
            self._running = False
            self.profile.disable()

    def __enter__(self) -> "ProfileSession":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- phase timers -------------------------------------------------
    def phase_dict(self, prefix: str = "") -> Dict[str, float]:
        """A timer dict for one execution component to accumulate into.

        The returned dict *is* live session state: callers add seconds
        under their phase names (``deliver``, ``tally``, ``decide``) and
        the totals appear in ``phases.json``.  A ``prefix`` namespaces a
        component (``batched.deliver``) without extra plumbing.
        """
        if not prefix:
            return self.phase_timers
        return _PrefixedTimers(self.phase_timers, prefix)

    # -- persistence --------------------------------------------------
    def save(self, directory: str) -> Dict[str, str]:
        """Write the profile artifacts into ``directory``.

        Returns the artifact file names written (relative to
        ``directory``), for the CLI to report.
        """
        import os

        self.stop()
        os.makedirs(directory, exist_ok=True)
        written: Dict[str, str] = {}
        stats_path = os.path.join(directory, STATS_NAME)
        self.profile.dump_stats(stats_path)
        written["stats"] = STATS_NAME
        text = io.StringIO()
        stats = pstats.Stats(self.profile, stream=text)
        stats.sort_stats("cumulative").print_stats(_TOP_LIMIT)
        with open(os.path.join(directory, TOP_NAME), "w") as handle:
            handle.write(text.getvalue())
        written["top"] = TOP_NAME
        with open(os.path.join(directory, PHASES_NAME), "w") as handle:
            json.dump({"phase_seconds": {name: self.phase_timers[name]
                                         for name in
                                         sorted(self.phase_timers)}},
                      handle, indent=2, sort_keys=True, allow_nan=False)
            handle.write("\n")
        written["phases"] = PHASES_NAME
        return written


class _PrefixedTimers(dict):
    """A dict view accumulating ``name`` as ``prefix.name`` in a target."""

    def __init__(self, target: Dict[str, float], prefix: str) -> None:
        super().__init__()
        self._target = target
        self._prefix = prefix

    def __setitem__(self, name: str, value: float) -> None:
        super().__setitem__(name, value)
        self._target[f"{self._prefix}.{name}"] = value

    def __missing__(self, name: str) -> float:
        return 0.0


def profile_session(telemetry: Optional[Any]) -> Optional[ProfileSession]:
    """The :class:`ProfileSession` riding on ``telemetry``, if any.

    The execution layers call this instead of touching
    ``telemetry.profile`` directly, so a ``None`` recorder (telemetry
    off) and a recorder without profiling both read as "no profiling".
    """
    if telemetry is None:
        return None
    session = getattr(telemetry, "profile", None)
    return session if isinstance(session, ProfileSession) else None


__all__ = [
    "PHASES_NAME",
    "PROFILE_DIR",
    "ProfileSession",
    "STATS_NAME",
    "TOP_NAME",
    "profile_session",
]
