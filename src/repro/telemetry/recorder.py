"""The :class:`Telemetry` recorder: spans, counters, gauges, event log.

One recorder rides along one campaign (an experiment run, a fuzz
campaign, a search campaign).  It records three kinds of events:

* **spans** — timed, hierarchical regions (``campaign > generation >
  chunk > trial``).  A span opened with :meth:`Telemetry.span` nests
  under the innermost open span; work timed elsewhere (worker processes
  report ``(result, t0, duration)`` triples back to the supervisor) is
  recorded after the fact with :meth:`Telemetry.record_span`.
* **counters** — monotonically accumulating totals (trials completed,
  retries, rows written, manifest flushes, fallback reasons).
* **gauges** — last-value-wins samples (trials expected, workers in
  flight, queue depth).

Every event is appended to a per-run ``telemetry.jsonl`` through a
buffered, debounced sink (see :data:`FLUSH_EVERY_EVENTS` /
:data:`FLUSH_MIN_INTERVAL`) and fanned out to registered listeners (the
live progress renderer).  :meth:`Telemetry.summary` reduces the run to
the ``telemetry`` manifest block; :func:`merge_telemetry_block`
accumulates blocks across resumed runs exactly like ``run_health``.

The observer-effect contract of the whole layer lives here: the recorder
consumes wall-clock time and nothing else — it never touches
``seeded_rng``/``random.Random`` (statically enforced by the T2 lint
check) and simulation/protocol code never imports it (T1).

Event schema (one strict-JSON object per ``telemetry.jsonl`` line)::

    {"kind": "span", "id": 3, "parent": 1, "name": "trial",
     "t0": <epoch seconds>, "dur": <seconds>, ...attributes}
    {"kind": "counter", "name": "trials_completed", "delta": 8,
     "t": <epoch seconds>}
    {"kind": "gauge", "name": "trials_total", "value": 240,
     "t": <epoch seconds>}
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

TELEMETRY_NAME = "telemetry.jsonl"
"""File name of the per-run event log inside a run directory."""

#: Sink debounce: flush the event buffer once it holds this many events...
FLUSH_EVERY_EVENTS = 256
#: ...or once this many seconds have passed since the last flush,
#: whichever comes first.  close() always flushes.
FLUSH_MIN_INTERVAL = 1.0

_UNSET = object()


def _jsonable(value: Any) -> Any:
    """Event attributes as canonical strict JSON (tuples become lists,
    non-finite floats become None) — the results layer's convention."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


class Telemetry:
    """One campaign's structured observability recorder.

    Args:
        sink: path of the ``telemetry.jsonl`` event log to append to, or
            ``None`` for an in-memory recorder (aggregates and listeners
            still work; nothing is persisted).

    Attributes:
        profile: the optional :class:`~repro.telemetry.profiler.
            ProfileSession` riding along (set by the CLI under
            ``--profile``); execution layers check it to decide whether
            to collect phase timers.
    """

    def __init__(self, sink: Optional[str] = None) -> None:
        self.sink = sink
        self.profile: Optional[Any] = None
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        self._stack: List[int] = []
        self._next_span_id = 0
        self._buffer: List[str] = []
        self._last_flush = time.monotonic()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, Any] = {}
        self._span_count = 0
        self._event_count = 0
        self._closed = False

    # -- listeners ----------------------------------------------------
    def add_listener(self,
                     listener: Callable[[Dict[str, Any]], None]) -> None:
        """Register a callable invoked with every event dict."""
        self._listeners.append(listener)

    # -- spans --------------------------------------------------------
    @property
    def current_span(self) -> Optional[int]:
        """The innermost open span's id, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[int]:
        """Open a span around a ``with`` body; emitted when it closes.

        The span nests under the innermost open span.  The body runs
        even if event emission would fail; a span interrupted by an
        exception is still emitted (with ``ok: false``) so a killed
        campaign's log keeps its partial timing tree.
        """
        span_id = self._next_span_id
        self._next_span_id += 1
        parent = self.current_span
        self._stack.append(span_id)
        t0 = time.time()
        start = time.perf_counter()
        ok = True
        try:
            yield span_id
        except BaseException:
            ok = False
            raise
        finally:
            self._stack.pop()
            if not ok:
                attrs = dict(attrs, ok=False)
            self._emit_span(span_id, parent, name, t0,
                            time.perf_counter() - start, attrs)

    def record_span(self, name: str, t0: float, duration: float,
                    parent: Any = _UNSET, **attrs: Any) -> int:
        """Record a span whose timing happened elsewhere (e.g. a worker).

        Args:
            name: span name (``trial``, ``chunk``, ``batch``...).
            t0: wall-clock start (epoch seconds, as ``time.time``).
            duration: elapsed seconds.
            parent: explicit parent span id (``None`` for a root-level
                span); defaults to the innermost open span.

        Returns:
            The new span's id (usable as ``parent`` for children).
        """
        span_id = self._next_span_id
        self._next_span_id += 1
        if parent is _UNSET:
            parent = self.current_span
        self._emit_span(span_id, parent, name, t0, duration, attrs)
        return span_id

    def _emit_span(self, span_id: int, parent: Optional[int], name: str,
                   t0: float, duration: float,
                   attrs: Dict[str, Any]) -> None:
        self._span_count += 1
        event = {"kind": "span", "id": span_id, "parent": parent,
                 "name": name, "t0": t0, "dur": duration}
        for key, value in attrs.items():
            event[key] = _jsonable(value)
        self._emit(event)

    # -- counters / gauges --------------------------------------------
    def count(self, name: str, delta: float = 1) -> None:
        """Accumulate ``delta`` onto the counter ``name``."""
        if not delta:
            return
        self._counters[name] = self._counters.get(name, 0) + delta
        self._emit({"kind": "counter", "name": name, "delta": delta,
                    "t": time.time()})

    def gauge(self, name: str, value: Any) -> None:
        """Sample the gauge ``name`` (last value wins in the summary)."""
        self._gauges[name] = _jsonable(value)
        self._emit({"kind": "gauge", "name": name,
                    "value": self._gauges[name], "t": time.time()})

    @property
    def counters(self) -> Dict[str, float]:
        """The accumulated counter totals (a copy)."""
        return dict(self._counters)

    # -- the sink -----------------------------------------------------
    def _emit(self, event: Dict[str, Any]) -> None:
        self._event_count += 1
        for listener in self._listeners:
            listener(event)
        if self.sink is None:
            return
        self._buffer.append(json.dumps(event, allow_nan=False))
        if len(self._buffer) >= FLUSH_EVERY_EVENTS or \
                time.monotonic() - self._last_flush >= FLUSH_MIN_INTERVAL:
            self.flush()

    def flush(self) -> None:
        """Append every buffered event to the sink."""
        self._last_flush = time.monotonic()
        if not self._buffer or self.sink is None:
            return
        with open(self.sink, "a") as handle:
            handle.write("\n".join(self._buffer) + "\n")
            handle.flush()
        self._buffer = []

    def close(self) -> None:
        """Flush the sink; the recorder stays readable (summary etc.)."""
        if self._closed:
            return
        self._closed = True
        self.flush()

    # -- the manifest block -------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """This run's ``telemetry`` manifest block (one segment)."""
        return {
            "segments": 1,
            "events": self._event_count,
            "spans": self._span_count,
            "counters": {name: self._counters[name]
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name]
                       for name in sorted(self._gauges)},
        }


def merge_telemetry_block(existing: Optional[Dict[str, Any]],
                          summary: Dict[str, Any]) -> Dict[str, Any]:
    """Fold one run segment's summary into a (possibly resumed) block.

    Counters, event and span totals accumulate across resumes; gauges
    take the newest segment's value (they are samples, not totals).
    Mirrors :func:`repro.runner.health.merge_health_block`.
    """
    merged: Dict[str, Any] = {
        "segments": 0, "events": 0, "spans": 0,
        "counters": {}, "gauges": {}}
    for block in (existing or {}), summary:
        if not block:
            continue
        merged["segments"] += int(block.get("segments", 0))
        merged["events"] += int(block.get("events", 0))
        merged["spans"] += int(block.get("spans", 0))
        for name, value in (block.get("counters") or {}).items():
            merged["counters"][name] = \
                merged["counters"].get(name, 0) + value
        merged["gauges"].update(block.get("gauges") or {})
    merged["counters"] = {name: merged["counters"][name]
                          for name in sorted(merged["counters"])}
    merged["gauges"] = {name: merged["gauges"][name]
                        for name in sorted(merged["gauges"])}
    return merged


def read_events(path: str) -> List[Dict[str, Any]]:
    """Load a ``telemetry.jsonl`` event log, skipping torn lines.

    A run killed mid-flush can leave a truncated final line; readers
    (``repro show --timing``, ``repro top``, the query mount) must keep
    working off the intact prefix.
    """
    events: List[Dict[str, Any]] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail of a killed run
                if isinstance(event, dict) and "kind" in event:
                    events.append(event)
    except OSError:
        return []
    return events


__all__ = [
    "FLUSH_EVERY_EVENTS",
    "FLUSH_MIN_INTERVAL",
    "TELEMETRY_NAME",
    "Telemetry",
    "merge_telemetry_block",
    "read_events",
]
