"""Read-side analysis of a run's telemetry event log.

Backs ``repro show --timing`` (per-cell trial-duration percentiles and
the span tree of the slowest trial) and ``repro top`` (a snapshot of a
possibly still-running campaign tailed from its event log).  Everything
here works off :func:`repro.telemetry.recorder.read_events`, so a
killed run's intact event prefix renders the same way a finished run's
log does.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

_SPAN_FIXED = ("kind", "id", "parent", "name", "t0", "dur")


def spans(events: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The span events only, in emission order."""
    return [event for event in events if event.get("kind") == "span"]


def span_attrs(span: Dict[str, Any]) -> Dict[str, Any]:
    """A span's free-form attributes (everything beyond the schema)."""
    return {key: value for key, value in span.items()
            if key not in _SPAN_FIXED}


def trial_cell(span: Dict[str, Any]) -> str:
    """The cell identity a trial span belongs to, as display text.

    Trial spans carry their spec's ``tag`` (the cell key for experiment
    trials, ``[experiment, index]`` for fuzz/search); stringified so
    heterogeneous tags group stably.
    """
    tag = span.get("tag")
    if tag is None:
        return "-"
    return json.dumps(tag, allow_nan=False) if \
        isinstance(tag, (list, dict)) else str(tag)


def cell_timing_rows(events: Sequence[Dict[str, Any]],
                     percentiles: Sequence[float] = (50.0, 90.0, 99.0),
                     ) -> List[Dict[str, Any]]:
    """Per-cell trial-duration percentile rows (milliseconds).

    One row per distinct trial-span cell, ordered by total time spent,
    heaviest first — the table answers "which cells did this run spend
    its time on".
    """
    from repro.results.report import percentile

    durations: Dict[str, List[float]] = {}
    for span in spans(events):
        if span.get("name") != "trial":
            continue
        cell = trial_cell(span)
        durations.setdefault(cell, []).append(
            float(span.get("dur") or 0.0) * 1000.0)
    rows: List[Dict[str, Any]] = []
    for cell, values in durations.items():
        row: Dict[str, Any] = {
            "cell": cell, "trials": len(values),
            "total_ms": round(sum(values), 3),
            "min_ms": round(min(values), 3),
        }
        for q in percentiles:
            row[f"p{q:g}_ms"] = round(percentile(values, q), 3)
        row["max_ms"] = round(max(values), 3)
        rows.append(row)
    rows.sort(key=lambda row: (-row["total_ms"], row["cell"]))
    return rows


def slowest_trial_chain(events: Sequence[Dict[str, Any]]
                        ) -> List[Dict[str, Any]]:
    """The slowest trial span's ancestry, root first, trial last.

    Spans are emitted on close, so ancestors of a trial appear *after*
    it in the log; the chain is resolved over the whole event set.
    Returns ``[]`` when the log holds no trial spans.
    """
    all_spans = spans(events)
    by_id = {span["id"]: span for span in all_spans if "id" in span}
    trials = [span for span in all_spans if span.get("name") == "trial"]
    if not trials:
        return []
    slowest = max(trials, key=lambda span: float(span.get("dur") or 0.0))
    chain: List[Dict[str, Any]] = [slowest]
    seen = {slowest.get("id")}
    parent = slowest.get("parent")
    while parent is not None and parent in by_id and parent not in seen:
        span = by_id[parent]
        chain.append(span)
        seen.add(parent)
        parent = span.get("parent")
    chain.reverse()
    return chain


def render_span_chain(chain: Sequence[Dict[str, Any]]) -> List[str]:
    """The ancestry chain as indented display lines."""
    lines: List[str] = []
    for depth, span in enumerate(chain):
        duration = float(span.get("dur") or 0.0)
        attrs = span_attrs(span)
        rendered = " ".join(f"{key}={json.dumps(value, allow_nan=False)}"
                            for key, value in sorted(attrs.items()))
        lines.append("  " * depth
                     + f"{span.get('name')} ({duration * 1000.0:.3f} ms"
                     + (f"; {rendered}" if rendered else "") + ")")
    return lines


def top_snapshot(events: Sequence[Dict[str, Any]],
                 manifest: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """One ``repro top`` snapshot reduced from an event log.

    Counters and span totals accumulate over the whole log; gauges and
    the observed rate reflect the log's trailing edge, so tailing a
    running campaign shows where it is *now*.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, Any] = {}
    span_count = 0
    first_t: Optional[float] = None
    last_t: Optional[float] = None
    for event in events:
        kind = event.get("kind")
        stamp = event.get("t0") if kind == "span" else event.get("t")
        if isinstance(stamp, (int, float)):
            first_t = stamp if first_t is None else min(first_t, stamp)
            last_t = stamp if last_t is None else max(last_t, stamp)
        if kind == "span":
            span_count += 1
        elif kind == "counter":
            name = str(event.get("name"))
            counters[name] = counters.get(name, 0) \
                + (event.get("delta") or 0)
        elif kind == "gauge":
            gauges[str(event.get("name"))] = event.get("value")
    completed = counters.get("trials_completed", 0)
    elapsed = (last_t - first_t) if first_t is not None \
        and last_t is not None and last_t > first_t else None
    snapshot: Dict[str, Any] = {
        "events": len(events),
        "spans": span_count,
        "counters": {name: counters[name] for name in sorted(counters)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "trials_completed": completed,
        "trials_total": gauges.get("trials_total"),
        "elapsed_seconds": elapsed,
        "trials_per_sec": (completed / elapsed
                           if elapsed and completed else None),
        "completed": bool(manifest.get("completed")) if manifest else None,
    }
    return snapshot


def render_top(snapshot: Dict[str, Any], target: str) -> str:
    """A ``repro top`` snapshot as display text."""
    status = {True: "completed", False: "running", None: "?"}[
        snapshot.get("completed")]
    total = snapshot.get("trials_total")
    progress = f"{snapshot['trials_completed']}" \
        + (f"/{total}" if total else "") + " trials"
    rate = snapshot.get("trials_per_sec")
    lines = [f"== top: {target} ({status}; {progress}"
             + (f", {rate:.1f}/s" if rate else "")
             + f", {snapshot['events']} events) =="]
    counters = snapshot.get("counters") or {}
    if counters:
        lines.append("counters: " + " ".join(
            f"{name}={value:g}" for name, value in counters.items()))
    gauges = snapshot.get("gauges") or {}
    if gauges:
        lines.append("gauges:   " + " ".join(
            f"{name}={json.dumps(value, allow_nan=False)}"
            for name, value in gauges.items()))
    return "\n".join(lines)


__all__ = [
    "cell_timing_rows",
    "render_span_chain",
    "render_top",
    "slowest_trial_chain",
    "span_attrs",
    "spans",
    "top_snapshot",
    "trial_cell",
]
