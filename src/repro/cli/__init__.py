"""The unified ``repro`` command line: one entry point for every experiment.

Subcommands::

    repro list [--doc]
        List the registered experiments; ``--doc`` emits the generated
        EXPERIMENTS.md document to stdout.

    repro run {EXPERIMENT ... | --all} [--quick] [--workers N]
              [--out DIR | --no-store] [--seed N] [--set key=value ...]
              [--max-retries N] [--trial-timeout S] [--chaos SPEC]
              [--no-telemetry] [--no-progress] [--profile]
        Run experiments through the registry.  By default every run is
        persisted to the results store under ``--out`` (``results/``), so
        rerunning the same configuration *resumes*: cells whose rows are
        already stored are skipped.  Execution goes through the
        supervising executor (retries, broken-pool recovery, optional
        hang watchdog); ``--chaos`` injects a seeded, replayable fault
        pattern for chaos testing (``repro fuzz`` and ``repro search``
        take the same three flags).  See "Fault tolerance & chaos
        testing" in PERFORMANCE.md.

        Campaigns record a per-run ``telemetry.jsonl`` span/metric event
        log and render a live progress line while running (``repro fuzz``
        and ``repro search`` too); telemetry never changes result rows.
        ``--profile`` additionally captures cProfile + phase-timer
        artifacts under the run's ``profile/`` directory.  See
        "Telemetry & profiling" in PERFORMANCE.md.

    repro show {RUN_DIR | EXPERIMENT} [--out DIR] [--timing]
        Render a stored run (a run directory, or the latest stored run of
        an experiment) as a table.  Fuzz-campaign runs render too.
        ``--timing`` appends per-cell trial-duration percentiles and the
        slowest trial's span tree from the run's telemetry event log.

    repro top {RUN_DIR | EXPERIMENT} [--out DIR] [--interval S] [--once]
        Tail a (possibly still running) campaign's telemetry event log:
        progress, trial rate, executor gauges, counters, busiest cells.
        Refreshes until the run completes; ``--once`` prints a single
        snapshot for scripts and CI.

    repro fuzz [--trials N] [--workers K] [--protocol P] [--seed S]
               [--n N] [--t T] [--minimize] [--out DIR | --no-store]
        Fuzz adversarial schedules against a protocol and re-check every
        trace with the independent invariant checker
        (:mod:`repro.verification`).  Campaigns persist to the results
        store and resume like experiments; ``--minimize`` shrinks every
        violating schedule into a counterexample artifact.  Exits 1 when
        violations were found, 0 when the campaign is clean.

    repro search [--strategy S] [--objective O] [--generations G]
                 [--population P] [--windows W] [--protocol P] [--seed S]
                 [--n N] [--t T] [--workers K] [--out DIR | --no-store]
        Optimize admissible schedules toward a hardness objective
        (:mod:`repro.search`).  Campaigns persist generation by
        generation and resume mid-campaign; the best-found schedule is
        saved as a replayable ``best-schedule.json`` artifact.

    repro replay ARTIFACT.json
        Re-execute any saved schedule artifact (a minimized fuzz
        counterexample or a search best-schedule) and print the
        independent invariant verdict.  Exits 1 when the replay violates
        an invariant, 0 when it is clean.

    repro query "SQL" [--out DIR] [--engine {auto,duckdb,fallback}]
                [--format {table,json,csv}]
        SQL across *every* stored run (``rows``/``runs`` tables, one
        view per experiment, plus ``spans``/``metrics`` tables mounted
        from each run's telemetry event log), with each run's manifest
        fields joined in as columns — experiment, seed, backend, params,
        run_health.
        Scans the columnar copies that ``finish()`` compacts
        (:mod:`repro.results.columnar`), through DuckDB when installed
        (the ``analytics`` extra) and a built-in fallback SQL subset
        otherwise.

    repro report EXPERIMENT [--out DIR] [--format {text,json}]
                 [--percentiles Q,Q,...]
        Aggregate every stored run of one experiment: a run summary, a
        per-cell percentile table over every numeric row column, and
        the recomputed finalizer rows (the E2/E4 exponential fits) of
        the latest completed run.

    repro lint [--select CODES] [--ignore CODES] [--format {text,json}]
               [--root DIR] [--tests DIR] [--fixture [DIR]]
        Statically lint the ``repro`` package against the project's
        determinism/parity/registry/serialization contracts
        (:mod:`repro.staticcheck`; codes documented in
        ``STATIC_ANALYSIS.md``).  Exits 1 when findings remain, 0 when
        the tree is clean.  ``--fixture`` instead runs the self-test
        corpus in ``tests/staticcheck_fixtures/``, checking that every
        bad-example fixture yields exactly its expected code.

Works both as ``python -m repro ...`` from a source checkout and as the
installed ``repro`` console script.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.statistics import format_table
from repro.experiments import available_experiments, get_experiment
from repro.experiments.base import Experiment
from repro.results import RunStore, latest_run, load_run
from repro.search.campaign import (SEARCH_EXPERIMENT,
                                   load_schedule_artifact,
                                   resolve_search_params,
                                   run_search_campaign)
from repro.verification.fuzzer import (FUZZ_EXPERIMENT, resolve_fuzz_params,
                                       run_fuzz_campaign)
from repro.verification.invariants import InvariantChecker
from repro.verification.shrink import replay_schedule

DEFAULT_OUT = "results"

_DOC_PREAMBLE = """\
# EXPERIMENTS

<!-- Generated from the experiment registry by
     `python -m repro list --doc`.  Do not edit by hand: after changing
     the registry (or this preamble), regenerate with
     `PYTHONPATH=src python -m repro list --doc > EXPERIMENTS.md`.
     The test tests/test_cli.py::test_experiments_md_in_sync regenerates
     this document and compares it against the checked-in file. -->

The reproduction's nine experiments, one table each, all defined in
`repro.experiments.definitions` and run through the single grid-expansion
path of `repro.experiments.base.Experiment.run`.

Common front ends:

- `python -m repro list` — what is registered.
- `python -m repro run E2 --quick` — run one experiment (quick-sized);
  rows stream into the results store under `results/` and a rerun of the
  same configuration resumes instead of recomputing.
- `python -m repro run --all` — regenerate every table at full size.
- `python -m repro show E2` — render the latest stored run.
- `python -m repro query "SELECT ... FROM rows ..."` — SQL across every
  stored run; `python -m repro report E2` — per-cell percentile tables
  plus recomputed finalizer rows (see "Query & report" in
  PERFORMANCE.md).
- `python -m repro fuzz` — adversarial schedule fuzzing with independent
  invariant checking (see "Verification & fuzzing" in PERFORMANCE.md);
  campaigns persist and resume like experiment runs.
- `python -m repro search` — guided adversary search over admissible
  schedules (see "Adversary search" in PERFORMANCE.md); `python -m repro
  replay` re-executes any saved schedule artifact.
- `benchmarks/` — the same experiments under pytest-benchmark.
- `repro.analysis.experiments.run_*` — backwards-compatible function
  wrappers (rows bit-identical to the registry path at equal seeds).

Each experiment's *default parameters* are the paper-size sweep; the
*quick overrides* are what `--quick` changes.  Every parameter can be set
from the CLI with `--set key=value`.
"""


def render_registry_doc() -> str:
    """EXPERIMENTS.md, generated from the experiment registry."""
    sections = [_DOC_PREAMBLE]
    for experiment in available_experiments():
        sections.append("\n".join([
            f"## {experiment.name} — {experiment.title}",
            "",
            experiment.description,
            "",
            f"- **Alias:** `{experiment.slug}`",
            f"- **Monte Carlo fan-out via `repro.runner`:** "
            f"{'yes' if experiment.parallel else 'no (analytic)'}",
            f"- **Default parameters:** {_format_params(experiment.defaults)}",
            f"- **Quick overrides:** "
            f"{_format_params(experiment.quick_overrides)}",
            f"- **Row columns:** {_format_columns(experiment.row_schema)}",
        ]))
    return "\n\n".join(sections) + "\n"


def _format_params(params: Mapping[str, Any]) -> str:
    if not params:
        return "(none)"
    return ", ".join(f"`{key}={value!r}`" for key, value in params.items())


def _format_columns(columns: Sequence[str]) -> str:
    return ", ".join(f"`{column}`" for column in columns)


def _parse_set(assignments: Sequence[str]) -> Dict[str, Any]:
    """``--set key=value`` overrides; values parse as Python literals."""
    overrides: Dict[str, Any] = {}
    for assignment in assignments:
        key, separator, raw = assignment.partition("=")
        if not separator or not key:
            raise ValueError(
                f"--set expects key=value, got {assignment!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            raise ValueError(
                f"--set {key}: {raw!r} is not a Python literal "
                f"(quote strings explicitly, e.g. {key}='{raw}')") from None
    return overrides


def _cmd_list(args: argparse.Namespace) -> int:
    if args.doc:
        sys.stdout.write(render_registry_doc())
        return 0
    if args.adversaries:
        from repro.adversaries.registry import ADVERSARIES, STRATEGIES

        print(format_table([
            {"adversary": name, "class": cls.__name__}
            for name, cls in sorted(ADVERSARIES.items())]))
        print("\nByzantine strategies (for the 'byzantine' adversary):")
        print(format_table([
            {"strategy": name, "class": cls.__name__}
            for name, cls in sorted(STRATEGIES.items())]))
        return 0
    if args.protocols:
        from repro.protocols.registry import available_protocols

        print(format_table([
            {"protocol": name, "class": info.protocol_cls.__name__,
             "fault_model": info.fault_model}
            for name, info in sorted(available_protocols().items())]))
        return 0
    rows = [{"name": experiment.name, "alias": experiment.slug,
             "title": experiment.title,
             "parallel": "yes" if experiment.parallel else "no"}
            for experiment in available_experiments()]
    print(format_table(rows))
    print("\nRun one with: python -m repro run <NAME> [--quick]")
    return 0


def _resolve_run_params(experiment: Experiment,
                        args: argparse.Namespace) -> Dict[str, Any]:
    overrides = _parse_set(args.set or [])
    if args.seed is not None:
        overrides["seed"] = args.seed
    return experiment.resolve_params(overrides or None, quick=args.quick)


def _execution_policy(args: argparse.Namespace):
    """The resilience knobs as (policy, injector) for one invocation.

    Parses ``--chaos`` (default: ``$REPRO_CHAOS``) and combines it with
    ``--max-retries``/``--trial-timeout``.  Raises ``ValueError`` on a bad
    spec — callers treat that as a usage error.
    """
    from repro.faults import build_injector, parse_chaos_spec
    from repro.runner import ExecutionPolicy, RetryPolicy

    chaos = parse_chaos_spec(args.chaos)
    policy = ExecutionPolicy(
        retry=RetryPolicy(max_retries=args.max_retries),
        trial_timeout=args.trial_timeout, chaos=chaos)
    return policy, build_injector(chaos)


def _print_health(health) -> None:
    """Report the recovery actions of one run (silent when clean)."""
    if health is None or health.clean:
        return
    print(f"run health: {health.summary()}")
    for entry in health.failures:
        print(f"  failed trial {entry.get('tag')}: {entry.get('error')} "
              f"({entry.get('attempts')} attempts)")


def _open_store(args: argparse.Namespace, name: str,
                params: Dict[str, Any], fault_injector=None, health=None):
    """Open the run store (unless ``--no-store``), with resume state.

    Returns:
        ``(store, cached_rows, was_complete)`` — ``(None, 0, False)``
        when persistence is disabled.
    """
    if args.no_store:
        return None, 0, False
    store = RunStore.open(args.out, name, params, workers=args.workers,
                          fault_injector=fault_injector, health=health,
                          backend=getattr(args, "backend", None))
    return store, store.row_count, bool(store.manifest.get("completed"))


def _finish_store(store: RunStore, cached: int, was_complete: bool,
                  wall_time: float, unit: str, extra_work: int = 0) -> str:
    """Complete the run and return the resume-status header fragment.

    A rerun that computed nothing (fully cached, and no extra work such
    as minimization) keeps the originally stored wall time and completed
    flag instead of clobbering them with ~0s / partial.
    """
    computed = store.row_count - cached
    if computed or extra_work or not was_complete:
        store.finish(wall_time)
    return f"; {cached} cached + {computed} computed {unit} -> {store.path}"


class _CampaignTiming:
    """What ``_campaign_timing`` hands the campaign handlers.

    ``telemetry`` goes into the campaign entry point (``None`` with
    ``--no-telemetry``); ``wall_time`` is set when the context exits.
    """

    def __init__(self) -> None:
        self.telemetry = None
        self.wall_time = 0.0


@contextmanager
def _campaign_timing(args: argparse.Namespace, store, label: str):
    """Time one campaign and run its telemetry lifecycle.

    The single timing path shared by run/fuzz/search: builds the
    :class:`~repro.telemetry.Telemetry` recorder (unless
    ``--no-telemetry``; ``--profile`` forces it on and attaches a
    :class:`~repro.telemetry.ProfileSession`), points its sink at the
    run store, opens the root ``campaign`` span, and subscribes the
    live progress renderer.  On exit — *before* the handler stamps the
    manifest through ``_finish_store`` — the progress line is cleared,
    profile artifacts are saved under ``profile/`` in the run
    directory, and the recorder is flushed and closed, so the final
    manifest summarizes a fully written event log.
    """
    from repro.telemetry import (PROFILE_DIR, ProfileSession,
                                 ProgressRenderer, Telemetry)

    timing = _CampaignTiming()
    telemetry = None
    progress = None
    if args.profile or not args.no_telemetry:
        telemetry = Telemetry()
        if args.profile:
            telemetry.profile = ProfileSession()
            telemetry.profile.start()
        if store is not None:
            store.attach_telemetry(telemetry)
        if not args.no_progress:
            progress = ProgressRenderer(label)
            telemetry.add_listener(progress)
    timing.telemetry = telemetry
    started = time.time()
    try:
        if telemetry is not None:
            with telemetry.span("campaign", label=label):
                yield timing
        else:
            yield timing
    finally:
        timing.wall_time = time.time() - started
        if progress is not None:
            progress.close()
        if telemetry is not None:
            if telemetry.profile is not None:
                telemetry.profile.stop()
                if store is not None:
                    telemetry.profile.save(store.artifact_path(PROFILE_DIR))
            telemetry.close()


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    """The telemetry knobs, shared by run/fuzz/search."""
    parser.add_argument("--no-telemetry", action="store_true",
                        help="record no telemetry.jsonl event log "
                             "(results are bit-identical either way)")
    parser.add_argument("--no-progress", action="store_true",
                        help="suppress the live progress line")
    parser.add_argument("--profile", action="store_true",
                        help="profile the campaign (cProfile + phase "
                             "timers) into the run's profile/ directory; "
                             "implies telemetry")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.all:
        names = [experiment.name for experiment in available_experiments()]
    elif args.experiments:
        names = args.experiments
    else:
        print("repro run: name at least one experiment, or pass --all",
              file=sys.stderr)
        return 2
    from repro.runner import RunHealth

    try:
        policy, injector = _execution_policy(args)
    except ValueError as error:
        return _usage_error("run", error)
    exit_code = 0
    for name in names:
        try:
            experiment = get_experiment(name)
            params = _resolve_run_params(experiment, args)
        except (KeyError, ValueError) as error:
            # Report and keep going: in a multi-experiment run the other
            # experiments still regenerate (and persist) their tables.
            exit_code = _usage_error("run", error)
            continue
        health = RunHealth()
        store, cached, was_complete = _open_store(
            args, experiment.name, params, fault_injector=injector,
            health=health)
        with _campaign_timing(args, store, f"run {experiment.name}") \
                as timing:
            rows = experiment.run(params=params, workers=args.workers,
                                  store=store, policy=policy,
                                  health=health, backend=args.backend,
                                  telemetry=timing.telemetry)
        wall_time = timing.wall_time
        header = f"== {experiment.name}: {experiment.title} " \
                 f"({wall_time:.1f}s"
        if store is not None:
            header += _finish_store(store, cached, was_complete, wall_time,
                                    unit="cells")
        header += ") =="
        print(header)
        print(format_table(rows))
        _print_health(health)
        print()
    return exit_code


def _resolve_run_dir(command: str, target: str, out: str):
    """Resolve a run directory or experiment name to ``(run_dir, None)``.

    Shared by ``show`` and ``top``.  On failure returns ``(None,
    exit_code)`` with the diagnostic already printed.
    """
    if os.path.isdir(target):
        if not os.path.isfile(os.path.join(target, "manifest.json")):
            return None, _usage_error(command, ValueError(
                f"{target!r} is not a run directory (no manifest.json); "
                f"pass a results/<EXPERIMENT>/<digest> directory or an "
                f"experiment name"))
        return target, None
    if os.sep in target or target.startswith("."):
        # Path-like but nonexistent: report the missing run id rather
        # than misdiagnosing it as an unknown experiment name.
        return None, _usage_error(command, ValueError(
            f"no run directory at {target!r}"))
    try:
        experiment = get_experiment(target)
        name = experiment.name
    except KeyError as error:
        if target not in (FUZZ_EXPERIMENT, SEARCH_EXPERIMENT):
            return None, _usage_error(command, error)
        name = target  # fuzz/search campaigns are stored runs too
    found = latest_run(out, name)
    if found is None:
        hint = (name if name in (FUZZ_EXPERIMENT, SEARCH_EXPERIMENT)
                else f"run {name}")
        print(f"no stored runs of {name} under {out!r}; "
              f"run `python -m repro {hint}` first",
              file=sys.stderr)
        return None, 1
    return found, None


def _cmd_show(args: argparse.Namespace) -> int:
    run_dir, code = _resolve_run_dir("show", args.target, args.out)
    if run_dir is None:
        return code
    manifest, rows = load_run(run_dir)
    try:
        experiment = get_experiment(manifest["experiment"])
    except KeyError:
        # Not a registered experiment (e.g. a fuzz campaign): render the
        # stored rows as-is, with no synthetic finalizer rows.
        experiment = None
    if experiment is not None and experiment.finalize is not None:
        rows = rows + experiment.finalize(rows, manifest["params"])
    status = "complete" if manifest.get("completed") else "partial"
    wall = manifest.get("wall_time_seconds")
    print(f"== {manifest['experiment']} run {os.path.basename(run_dir)} "
          f"({status}, {manifest['row_count']} stored rows"
          + (f", {wall:.1f}s" if wall is not None else "")
          + f", seed {manifest.get('seed')}, "
          f"v{manifest.get('package_version')}) ==")
    print(f"params: {manifest['params']}")
    backend = manifest.get("backend")
    if backend is not None:
        note = (" (resumed under differing backends)"
                if backend == "mixed" else "")
        print(f"backend: {backend}{note}")
    columnar = manifest.get("columnar")
    if columnar:
        print(f"columnar: {columnar.get('codec')} "
              f"({columnar.get('rows')} rows compacted)")
    _show_manifest_health(manifest)
    _show_manifest_telemetry(manifest)
    print(format_table(rows))
    if args.timing:
        _show_timing(run_dir)
    return 0


def _show_timing(run_dir: str) -> None:
    """The ``show --timing`` section: percentiles + slowest span tree."""
    from repro.telemetry import TELEMETRY_NAME, read_events
    from repro.telemetry.timing import (cell_timing_rows,
                                        render_span_chain,
                                        slowest_trial_chain)

    events = read_events(os.path.join(run_dir, TELEMETRY_NAME))
    timing_rows = cell_timing_rows(events)
    if not timing_rows:
        print("\nno trial timing recorded for this run "
              "(was it executed with --no-telemetry?)")
        return
    print("\n-- trial timing (telemetry, ms) --")
    print(format_table(timing_rows))
    chain = slowest_trial_chain(events)
    if chain:
        print("\nslowest trial:")
        print("\n".join(render_span_chain(chain)))


def _show_manifest_telemetry(manifest: Mapping[str, Any]) -> None:
    """One summary line for a stored run's ``telemetry`` block."""
    block = manifest.get("telemetry") or {}
    if not block:
        return
    counters = block.get("counters") or {}
    trials = counters.get("trials_completed")
    print(f"telemetry: {block.get('spans', 0)} spans, "
          f"{block.get('events', 0)} events over "
          f"{block.get('segments', 1)} segment(s)"
          + (f", {trials:g} trials observed" if trials else "")
          + " (show --timing for the breakdown)")


def _show_manifest_health(manifest: Mapping[str, Any]) -> None:
    """Surface a stored run's ``run_health`` block (silent when clean)."""
    block = manifest.get("run_health") or {}
    failures = block.get("failures", [])
    counters = {key: value for key, value in block.items()
                if key != "failures" and value}
    if not counters and not failures:
        return
    rendered = " ".join(f"{key}={value}"
                        for key, value in sorted(counters.items()))
    print(f"run health: {rendered or '-'} failures={len(failures)}")
    for entry in failures:
        print(f"  failed trial {entry.get('tag')}: {entry.get('error')} "
              f"({entry.get('attempts')} attempts)")


def _cmd_top(args: argparse.Namespace) -> int:
    """Tail a campaign's telemetry event log: ``repro top``."""
    from repro.results.store import read_manifest
    from repro.telemetry import TELEMETRY_NAME, read_events
    from repro.telemetry.timing import render_top, top_snapshot

    run_dir, code = _resolve_run_dir("top", args.target, args.out)
    if run_dir is None:
        return code
    interactive = sys.stdout.isatty()
    while True:
        try:
            manifest = read_manifest(run_dir)
        except (OSError, ValueError):
            manifest = {}
        events = read_events(os.path.join(run_dir, TELEMETRY_NAME))
        snapshot = top_snapshot(events, manifest=manifest)
        if interactive and not args.once:
            sys.stdout.write("\x1b[H\x1b[2J")  # home + clear screen
        print(render_top(snapshot, os.path.basename(run_dir)))
        if args.once or snapshot.get("completed"):
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            print()
            return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    try:
        params = resolve_fuzz_params(
            protocol=args.protocol, trials=args.trials, seed=args.seed,
            n=args.n, t=args.t, max_windows=args.max_windows,
            max_steps=args.max_steps, engine=args.engine)
    except (KeyError, ValueError) as error:
        return _usage_error("fuzz", error)
    from repro.runner import RunHealth

    try:
        policy, injector = _execution_policy(args)
    except ValueError as error:
        return _usage_error("fuzz", error)
    health = RunHealth()
    store, cached, was_complete = _open_store(
        args, FUZZ_EXPERIMENT, params, fault_injector=injector,
        health=health)
    with _campaign_timing(args, store, "fuzz") as timing:
        report = run_fuzz_campaign(params, workers=args.workers,
                                   store=store, minimize=args.minimize,
                                   policy=policy, health=health,
                                   backend=args.backend,
                                   telemetry=timing.telemetry)
    wall_time = timing.wall_time
    header = (f"== fuzz: {params['trials']} trials of "
              f"{params['protocol']} (n={params['n']}, t={params['t']}, "
              f"{params['engine']} engine, seed {params['seed']}; "
              f"{wall_time:.1f}s")
    if store is not None:
        # Minimization rewrites cached rows, so it counts as work done
        # this run: the manifest must end up completed with this wall time.
        header += _finish_store(store, cached, was_complete, wall_time,
                                unit="trials",
                                extra_work=report.minimized_trials)
    header += ") =="
    print(header)
    _print_health(health)
    findings = report.findings
    if not findings:
        print(f"no invariant violations in {params['trials']} trials")
        return 0
    print(f"{len(findings)} violating trial(s):")
    print(format_table([
        {"trial": row["trial"], "inputs": row["inputs"],
         "violations": row["violations"],
         "minimized_windows": row.get("minimized_windows"),
         "counterexample": row.get("counterexample") or "-"}
        for row in findings]))
    if params["engine"] != "window":
        print("\nstep-engine findings carry no window schedule, so "
              "--minimize does not apply; replay them via "
              "repro.verification.fuzz_trial_spec with the trial index")
    elif not args.minimize:
        print("\nrerun with --minimize to shrink the violating schedules "
              "into counterexample artifacts")
    return 1


def _cmd_search(args: argparse.Namespace) -> int:
    try:
        params = resolve_search_params(
            protocol=args.protocol, strategy=args.strategy,
            objective=args.objective, generations=args.generations,
            population=args.population, windows=args.windows,
            seed=args.seed, n=args.n, t=args.t, workload=args.workload,
            verify=not args.no_verify, target_score=args.target_score)
    except (KeyError, ValueError) as error:
        return _usage_error("search", error)
    from repro.runner import RunHealth

    try:
        policy, injector = _execution_policy(args)
    except ValueError as error:
        return _usage_error("search", error)
    health = RunHealth()
    store, cached, was_complete = _open_store(
        args, SEARCH_EXPERIMENT, params, fault_injector=injector,
        health=health)
    with _campaign_timing(args, store, "search") as timing:
        report = run_search_campaign(params, workers=args.workers,
                                     store=store, policy=policy,
                                     health=health, backend=args.backend,
                                     telemetry=timing.telemetry)
    wall_time = timing.wall_time
    header = (f"== search: {params['strategy']} x "
              f"{params['generations']}x{params['population']} toward "
              f"{params['objective']} on {params['protocol']} "
              f"(n={params['n']}, t={params['t']}, "
              f"horizon {params['windows']} windows, "
              f"seed {params['seed']}; {wall_time:.1f}s")
    if store is not None:
        # Writing the best-schedule artifact counts as work done, so the
        # manifest ends up completed even on a fully cached rerun.
        header += _finish_store(store, cached, was_complete, wall_time,
                                unit="evaluations", extra_work=1)
    header += ") =="
    print(header)
    _print_health(health)
    print(format_table(report.generation_summary()))
    print(f"\nbest score: {report.best_score} "
          f"(generation {report.best_generation})")
    if report.best_artifact is not None:
        print(f"best schedule: {report.best_artifact}")
        print("replay it with: python -m repro replay "
              f"{report.best_artifact}")
    findings = report.findings
    if findings:
        print(f"\n{len(findings)} invariant-violating candidate(s):")
        print(format_table([
            {"generation": row["generation"],
             "candidate": row["candidate"],
             "violations": row["violations"],
             "counterexample": row.get("counterexample") or "-"}
            for row in findings]))
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    if not os.path.isfile(args.artifact):
        return _usage_error("replay", ValueError(
            f"no schedule artifact at {args.artifact!r}"))
    try:
        setup, schedule, artifact = load_schedule_artifact(args.artifact)
    except (KeyError, TypeError, ValueError) as error:
        return _usage_error("replay", ValueError(
            f"{args.artifact!r} is not a schedule artifact: {error}"))
    result = replay_schedule(setup, schedule)
    report = InvariantChecker().check_result(result)
    expected = artifact.get("violations", [])
    print(f"== replay: {len(schedule)} windows of {setup.protocol} "
          f"(n={setup.n}, t={setup.t}, seed {setup.seed}) ==")
    print(f"decided: {result.decided}  windows: {result.windows_elapsed}  "
          f"resets: {result.total_resets}  "
          f"outputs: {''.join('-' if o is None else str(o) for o in result.outputs)}")
    if report.ok:
        print("invariant verdict: OK (all invariants hold)")
        if expected:
            print(f"warning: artifact expected violations {expected}, "
                  f"but the replay is clean")
        return 0
    print(f"invariant verdict: VIOLATED — {report.summary()}")
    return 1


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.results.query import QueryError, run_query

    try:
        result = run_query(args.out, args.sql, engine=args.engine)
    except QueryError as error:
        return _usage_error("query", error)
    if args.format == "json":
        print(json.dumps({"engine": result.engine,
                          "columns": result.columns,
                          "rows": result.rows},
                         sort_keys=False, allow_nan=False))
    elif args.format == "csv":
        import csv

        writer = csv.writer(sys.stdout)
        writer.writerow(result.columns)
        writer.writerows(result.rows)
    else:
        print(format_table(result.as_dicts(), columns=result.columns))
        print(f"({len(result.rows)} row(s) via the {result.engine} "
              f"engine)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.results.report import (ReportError, build_report,
                                      render_report_text)

    try:
        percentiles = tuple(float(chunk) for chunk in
                            args.percentiles.split(","))
        if not percentiles or \
                any(not 0.0 <= q <= 100.0 for q in percentiles):
            raise ValueError
    except ValueError:
        return _usage_error("report", ValueError(
            f"--percentiles expects comma-separated values in [0, 100], "
            f"got {args.percentiles!r}"))
    try:
        report = build_report(args.out, args.experiment,
                              percentiles=percentiles)
    except KeyError as error:
        return _usage_error("report", error)
    except ReportError as error:
        print(f"repro report: {error}", file=sys.stderr)
        return 1
    if args.format == "json":
        sys.stdout.write(report.as_json())
    else:
        sys.stdout.write(render_report_text(report))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.staticcheck import (expand_code_selection, run_fixture_selftest,
                                   run_lint)

    if args.fixture is not None:
        fixtures_root = args.fixture or None
        try:
            rows = run_fixture_selftest(fixtures_root)
        except (RuntimeError, ValueError, OSError) as error:
            return _usage_error("lint", error)
        failed = 0
        for name, expected, got, ok in rows:
            verdict = "ok" if ok else "FAIL"
            rendered = ",".join(sorted(got)) or "-"
            print(f"{verdict:4} {name}: expected {expected}, got {rendered}")
            failed += 0 if ok else 1
        print(f"repro lint --fixture: {len(rows) - failed}/{len(rows)} "
              f"fixtures behaved as expected")
        return 1 if failed else 0

    try:
        select = expand_code_selection(args.select)
        ignore = expand_code_selection(args.ignore)
    except ValueError as error:
        return _usage_error("lint", error)
    result = run_lint(package_root=args.root, tests_root=args.tests,
                      select=select, ignore=ignore)
    if args.format == "json":
        sys.stdout.write(result.render_json())
    else:
        print(result.render_text())
    return 0 if result.ok else 1


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """The supervising executor's knobs, shared by run/fuzz/search."""
    from repro.faults import CHAOS_ENV

    parser.add_argument("--max-retries", type=int, default=2,
                        help="re-executions of a failed chunk/trial "
                             "before quarantine (default: 2; 0 disables)")
    parser.add_argument("--trial-timeout", type=float, default=None,
                        help="per-trial wall-clock budget in seconds; "
                             "enables the hang watchdog (default: off)")
    parser.add_argument("--chaos", default=os.environ.get(CHAOS_ENV),
                        help="inject deterministic faults, e.g. "
                             "'crash=0.2,hang=0.1,raise=0.1,seed=7' "
                             "(kinds: crash, hang, raise, poison, torn; "
                             "default: $REPRO_CHAOS)")
    parser.add_argument("--backend", default="trial",
                        choices=("trial", "batched", "auto"),
                        help="execution backend: 'batched' vectorizes "
                             "supported trial groups (bit-identical "
                             "results), 'auto' does so when numpy is "
                             "available (default: trial)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's experiment tables through the "
                    "declarative experiment registry.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments (or adversaries, "
                     "protocols)")
    list_parser.add_argument(
        "--doc", action="store_true",
        help="emit the generated EXPERIMENTS.md document")
    list_parser.add_argument(
        "--adversaries", action="store_true",
        help="list the adversary registry (and Byzantine strategies)")
    list_parser.add_argument(
        "--protocols", action="store_true",
        help="list the protocol registry")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run experiments through the registry")
    run_parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names or aliases (e.g. E2, feasibility)")
    run_parser.add_argument("--all", action="store_true",
                            help="run every registered experiment")
    run_parser.add_argument("--quick", action="store_true",
                            help="apply the quick (smoke-sized) overrides")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker processes (0 = serial; default: "
                                 "$REPRO_WORKERS or the CPU count)")
    run_parser.add_argument("--out", default=DEFAULT_OUT,
                            help="results-store root (default: results/)")
    run_parser.add_argument("--no-store", action="store_true",
                            help="print tables only, persist nothing")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the master seed")
    run_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                            help="override one experiment parameter "
                                 "(repeatable; value is a Python literal)")
    _add_resilience_args(run_parser)
    _add_observability_args(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    fuzz_parser = subparsers.add_parser(
        "fuzz", help="fuzz adversarial schedules and re-check every trace "
                     "with the independent invariant checker")
    fuzz_parser.add_argument("--trials", type=int, default=100,
                             help="number of fuzzed executions "
                                  "(default: 100)")
    fuzz_parser.add_argument("--protocol", default="reset-tolerant",
                             help="protocol registry name "
                                  "(default: reset-tolerant)")
    fuzz_parser.add_argument("--seed", type=int, default=0,
                             help="campaign master seed (default: 0)")
    fuzz_parser.add_argument("--n", type=int, default=None,
                             help="system size (default: 9 on the window "
                                  "engine, 7 on the step engine)")
    fuzz_parser.add_argument("--t", type=int, default=None,
                             help="fault bound (default: the protocol's "
                                  "maximum for n)")
    fuzz_parser.add_argument("--engine", default="auto",
                             choices=("auto", "window", "step"),
                             help="execution engine (default: auto — step "
                                  "for Byzantine protocols, window "
                                  "otherwise)")
    fuzz_parser.add_argument("--max-windows", type=int, default=60,
                             help="window cap per trial (default: 60)")
    fuzz_parser.add_argument("--max-steps", type=int, default=6000,
                             help="step cap per trial (default: 6000)")
    fuzz_parser.add_argument("--workers", type=int, default=None,
                             help="worker processes (0 = serial; default: "
                                  "$REPRO_WORKERS or the CPU count)")
    fuzz_parser.add_argument("--minimize", action="store_true",
                             help="shrink violating schedules into "
                                  "counterexample artifacts")
    fuzz_parser.add_argument("--out", default=DEFAULT_OUT,
                             help="results-store root (default: results/)")
    fuzz_parser.add_argument("--no-store", action="store_true",
                             help="print findings only, persist nothing")
    _add_resilience_args(fuzz_parser)
    _add_observability_args(fuzz_parser)
    fuzz_parser.set_defaults(func=_cmd_fuzz)

    search_parser = subparsers.add_parser(
        "search", help="optimize admissible schedules toward a hardness "
                       "objective (guided adversary search)")
    search_parser.add_argument("--strategy", default="hill-climb",
                               help="search strategy: hill-climb, anneal "
                                    "or evolve (default: hill-climb)")
    search_parser.add_argument("--objective", default="undecided-rounds",
                               help="objective: undecided-rounds, "
                                    "undecided-fraction, vote-margin or "
                                    "invariant-violation "
                                    "(default: undecided-rounds)")
    search_parser.add_argument("--generations", type=int, default=25,
                               help="search generations (default: 25)")
    search_parser.add_argument("--population", type=int, default=8,
                               help="candidates per generation "
                                    "(default: 8)")
    search_parser.add_argument("--windows", type=int, default=240,
                               help="schedule length / evaluation horizon "
                                    "in windows (default: 240)")
    search_parser.add_argument("--protocol", default="reset-tolerant",
                               help="protocol registry name "
                                    "(default: reset-tolerant)")
    search_parser.add_argument("--workload", default="split",
                               help="input workload: split, unanimous-0 "
                                    "or unanimous-1 (default: split)")
    search_parser.add_argument("--seed", type=int, default=0,
                               help="campaign master seed (default: 0)")
    search_parser.add_argument("--n", type=int, default=None,
                               help="system size (default: 12)")
    search_parser.add_argument("--t", type=int, default=None,
                               help="fault bound (default: the protocol's "
                                    "maximum for n)")
    search_parser.add_argument("--no-verify", action="store_true",
                               help="skip the per-candidate invariant "
                                    "check (faster evaluations)")
    search_parser.add_argument("--target-score", type=float, default=None,
                               help="stop once the running best reaches "
                                    "this score (budget is unchanged)")
    search_parser.add_argument("--workers", type=int, default=None,
                               help="worker processes (0 = serial; "
                                    "default: $REPRO_WORKERS or the CPU "
                                    "count)")
    search_parser.add_argument("--out", default=DEFAULT_OUT,
                               help="results-store root "
                                    "(default: results/)")
    search_parser.add_argument("--no-store", action="store_true",
                               help="print the summary only, persist "
                                    "nothing")
    _add_resilience_args(search_parser)
    _add_observability_args(search_parser)
    search_parser.set_defaults(func=_cmd_search)

    replay_parser = subparsers.add_parser(
        "replay", help="re-execute a saved schedule artifact and print "
                       "the invariant verdict")
    replay_parser.add_argument(
        "artifact",
        help="a schedule artifact: a fuzz counterexample or a search "
             "best-schedule JSON file")
    replay_parser.set_defaults(func=_cmd_replay)

    query_parser = subparsers.add_parser(
        "query", help="SQL across every stored run (rows/runs tables, "
                      "one view per experiment)")
    query_parser.add_argument(
        "sql", metavar="SQL",
        help="the query, e.g. \"SELECT experiment, count(*) FROM rows "
             "GROUP BY experiment\"")
    query_parser.add_argument("--out", default=DEFAULT_OUT,
                              help="results-store root "
                                   "(default: results/)")
    query_parser.add_argument("--engine", default="auto",
                              choices=("auto", "duckdb", "fallback"),
                              help="query engine: duckdb (full SQL, "
                                   "needs the analytics extra) or the "
                                   "built-in fallback subset "
                                   "(default: auto)")
    query_parser.add_argument("--format", default="table",
                              choices=("table", "json", "csv"),
                              help="output format (default: table)")
    query_parser.set_defaults(func=_cmd_query)

    report_parser = subparsers.add_parser(
        "report", help="percentile tables per cell plus recomputed "
                       "finalizer rows for one experiment's stored runs")
    report_parser.add_argument(
        "experiment",
        help="experiment name or alias (fuzz/search campaigns work too)")
    report_parser.add_argument("--out", default=DEFAULT_OUT,
                               help="results-store root "
                                    "(default: results/)")
    report_parser.add_argument("--format", default="text",
                               choices=("text", "json"),
                               help="output format (default: text)")
    report_parser.add_argument("--percentiles", default="50,90,99",
                               metavar="Q,Q,...",
                               help="percentiles for the per-cell table "
                                    "(default: 50,90,99)")
    report_parser.set_defaults(func=_cmd_report)

    lint_parser = subparsers.add_parser(
        "lint", help="statically lint the repro package against the "
                     "project's determinism/parity/registry contracts")
    lint_parser.add_argument("--select", default=None, metavar="CODES",
                             help="comma-separated codes or families to "
                                  "keep (e.g. D1,P or D)")
    lint_parser.add_argument("--ignore", default=None, metavar="CODES",
                             help="comma-separated codes or families to "
                                  "drop")
    lint_parser.add_argument("--format", choices=("text", "json"),
                             default="text",
                             help="output format (default: text)")
    lint_parser.add_argument("--root", default=None,
                             help="package directory to lint (default: "
                                  "the installed repro package)")
    lint_parser.add_argument("--tests", default=None,
                             help="tests directory linted under the "
                                  "tests/ prefix (default: the "
                                  "repository tests/)")
    lint_parser.add_argument("--fixture", nargs="?", const="", default=None,
                             metavar="DIR",
                             help="run the self-test corpus instead "
                                  "(default corpus: "
                                  "tests/staticcheck_fixtures/)")
    lint_parser.set_defaults(func=_cmd_lint)

    show_parser = subparsers.add_parser(
        "show", help="render a stored run as a table")
    show_parser.add_argument(
        "target",
        help="a run directory, or an experiment name (latest stored run)")
    show_parser.add_argument("--out", default=DEFAULT_OUT,
                             help="results-store root searched for "
                                  "experiment names (default: results/)")
    show_parser.add_argument("--timing", action="store_true",
                             help="append per-cell trial-duration "
                                  "percentiles and the slowest trial's "
                                  "span tree (from telemetry.jsonl)")
    show_parser.set_defaults(func=_cmd_show)

    top_parser = subparsers.add_parser(
        "top", help="tail a campaign's telemetry event log: progress, "
                    "rates, counters, busiest cells")
    top_parser.add_argument(
        "target",
        help="a run directory, or an experiment name (latest stored run)")
    top_parser.add_argument("--out", default=DEFAULT_OUT,
                            help="results-store root searched for "
                                 "experiment names (default: results/)")
    top_parser.add_argument("--interval", type=float, default=2.0,
                            help="seconds between refreshes "
                                 "(default: 2.0)")
    top_parser.add_argument("--once", action="store_true",
                            help="print one snapshot and exit (for "
                                 "scripts and CI)")
    top_parser.set_defaults(func=_cmd_top)
    return parser


def _usage_error(command: str, error: Exception) -> int:
    """Report a bad name/parameter and return the usage-error exit code.

    Only argument interpretation is caught this way; internal failures
    propagate with their tracebacks.
    """
    message = error.args[0] if error.args else str(error)
    print(f"repro {command}: {message}", file=sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


__all__ = ["main", "build_parser", "render_registry_doc"]
