"""The unified ``repro`` command line: one entry point for every experiment.

Subcommands::

    repro list [--doc]
        List the registered experiments; ``--doc`` emits the generated
        EXPERIMENTS.md document to stdout.

    repro run {EXPERIMENT ... | --all} [--quick] [--workers N]
              [--out DIR | --no-store] [--seed N] [--set key=value ...]
        Run experiments through the registry.  By default every run is
        persisted to the results store under ``--out`` (``results/``), so
        rerunning the same configuration *resumes*: cells whose rows are
        already stored are skipped.

    repro show {RUN_DIR | EXPERIMENT} [--out DIR]
        Render a stored run (a run directory, or the latest stored run of
        an experiment) as a table.

Works both as ``python -m repro ...`` from a source checkout and as the
installed ``repro`` console script.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.analysis.statistics import format_table
from repro.experiments import available_experiments, get_experiment
from repro.experiments.base import Experiment
from repro.results import RunStore, latest_run, load_run

DEFAULT_OUT = "results"

_DOC_PREAMBLE = """\
# EXPERIMENTS

<!-- Generated from the experiment registry by
     `python -m repro list --doc`.  Do not edit by hand: the test
     tests/test_cli.py::test_experiments_md_in_sync regenerates this
     document and compares it against the checked-in file. -->

The reproduction's eight experiments, one table each, all defined in
`repro.experiments.definitions` and run through the single grid-expansion
path of `repro.experiments.base.Experiment.run`.

Common front ends:

- `python -m repro list` — what is registered.
- `python -m repro run E2 --quick` — run one experiment (quick-sized);
  rows stream into the results store under `results/` and a rerun of the
  same configuration resumes instead of recomputing.
- `python -m repro run --all` — regenerate every table at full size.
- `python -m repro show E2` — render the latest stored run.
- `benchmarks/` — the same experiments under pytest-benchmark.
- `repro.analysis.experiments.run_*` — backwards-compatible function
  wrappers (rows bit-identical to the registry path at equal seeds).

Each experiment's *default parameters* are the paper-size sweep; the
*quick overrides* are what `--quick` changes.  Every parameter can be set
from the CLI with `--set key=value`.
"""


def render_registry_doc() -> str:
    """EXPERIMENTS.md, generated from the experiment registry."""
    sections = [_DOC_PREAMBLE]
    for experiment in available_experiments():
        sections.append("\n".join([
            f"## {experiment.name} — {experiment.title}",
            "",
            experiment.description,
            "",
            f"- **Alias:** `{experiment.slug}`",
            f"- **Monte Carlo fan-out via `repro.runner`:** "
            f"{'yes' if experiment.parallel else 'no (analytic)'}",
            f"- **Default parameters:** {_format_params(experiment.defaults)}",
            f"- **Quick overrides:** "
            f"{_format_params(experiment.quick_overrides)}",
            f"- **Row columns:** {_format_columns(experiment.row_schema)}",
        ]))
    return "\n\n".join(sections) + "\n"


def _format_params(params: Mapping[str, Any]) -> str:
    if not params:
        return "(none)"
    return ", ".join(f"`{key}={value!r}`" for key, value in params.items())


def _format_columns(columns: Sequence[str]) -> str:
    return ", ".join(f"`{column}`" for column in columns)


def _parse_set(assignments: Sequence[str]) -> Dict[str, Any]:
    """``--set key=value`` overrides; values parse as Python literals."""
    overrides: Dict[str, Any] = {}
    for assignment in assignments:
        key, separator, raw = assignment.partition("=")
        if not separator or not key:
            raise ValueError(
                f"--set expects key=value, got {assignment!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (SyntaxError, ValueError):
            raise ValueError(
                f"--set {key}: {raw!r} is not a Python literal "
                f"(quote strings explicitly, e.g. {key}='{raw}')") from None
    return overrides


def _cmd_list(args: argparse.Namespace) -> int:
    if args.doc:
        sys.stdout.write(render_registry_doc())
        return 0
    rows = [{"name": experiment.name, "alias": experiment.slug,
             "title": experiment.title,
             "parallel": "yes" if experiment.parallel else "no"}
            for experiment in available_experiments()]
    print(format_table(rows))
    print("\nRun one with: python -m repro run <NAME> [--quick]")
    return 0


def _resolve_run_params(experiment: Experiment,
                        args: argparse.Namespace) -> Dict[str, Any]:
    overrides = _parse_set(args.set or [])
    if args.seed is not None:
        overrides["seed"] = args.seed
    return experiment.resolve_params(overrides or None, quick=args.quick)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.all:
        names = [experiment.name for experiment in available_experiments()]
    elif args.experiments:
        names = args.experiments
    else:
        print("repro run: name at least one experiment, or pass --all",
              file=sys.stderr)
        return 2
    exit_code = 0
    for name in names:
        try:
            experiment = get_experiment(name)
            params = _resolve_run_params(experiment, args)
        except (KeyError, ValueError) as error:
            # Report and keep going: in a multi-experiment run the other
            # experiments still regenerate (and persist) their tables.
            exit_code = _usage_error("run", error)
            continue
        store: Optional[RunStore] = None
        cached = 0
        if not args.no_store:
            store = RunStore.open(args.out, experiment.name, params,
                                  workers=args.workers)
            cached = store.row_count
        was_complete = (store is not None
                        and bool(store.manifest.get("completed")))
        started = time.time()
        rows = experiment.run(params=params, workers=args.workers,
                              store=store)
        wall_time = time.time() - started
        header = f"== {experiment.name}: {experiment.title} " \
                 f"({wall_time:.1f}s"
        if store is not None:
            computed = store.row_count - cached
            if computed or not was_complete:
                # A fully-cached rerun computes nothing: keep the stored
                # wall time instead of clobbering it with ~0s.
                store.finish(wall_time)
            header += f"; {cached} cached + {computed} computed cells " \
                      f"-> {store.path}"
        header += ") =="
        print(header)
        print(format_table(rows))
        print()
    return exit_code


def _cmd_show(args: argparse.Namespace) -> int:
    target = args.target
    if os.path.isdir(target):
        run_dir = target
        if not os.path.isfile(os.path.join(run_dir, "manifest.json")):
            return _usage_error("show", ValueError(
                f"{target!r} is not a run directory (no manifest.json); "
                f"pass a results/<EXPERIMENT>/<digest> directory or an "
                f"experiment name"))
    else:
        try:
            experiment = get_experiment(target)
        except KeyError as error:
            return _usage_error("show", error)
        found = latest_run(args.out, experiment.name)
        if found is None:
            print(f"no stored runs of {experiment.name} under {args.out!r}; "
                  f"run `python -m repro run {experiment.name}` first",
                  file=sys.stderr)
            return 1
        run_dir = found
    manifest, rows = load_run(run_dir)
    experiment = get_experiment(manifest["experiment"])
    if experiment.finalize is not None:
        rows = rows + experiment.finalize(rows, manifest["params"])
    status = "complete" if manifest.get("completed") else "partial"
    wall = manifest.get("wall_time_seconds")
    print(f"== {manifest['experiment']} run {os.path.basename(run_dir)} "
          f"({status}, {manifest['row_count']} stored rows"
          + (f", {wall:.1f}s" if wall is not None else "")
          + f", seed {manifest.get('seed')}, "
          f"v{manifest.get('package_version')}) ==")
    print(f"params: {manifest['params']}")
    print(format_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the paper's experiment tables through the "
                    "declarative experiment registry.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments")
    list_parser.add_argument(
        "--doc", action="store_true",
        help="emit the generated EXPERIMENTS.md document")
    list_parser.set_defaults(func=_cmd_list)

    run_parser = subparsers.add_parser(
        "run", help="run experiments through the registry")
    run_parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment names or aliases (e.g. E2, feasibility)")
    run_parser.add_argument("--all", action="store_true",
                            help="run every registered experiment")
    run_parser.add_argument("--quick", action="store_true",
                            help="apply the quick (smoke-sized) overrides")
    run_parser.add_argument("--workers", type=int, default=None,
                            help="worker processes (0 = serial; default: "
                                 "$REPRO_WORKERS or the CPU count)")
    run_parser.add_argument("--out", default=DEFAULT_OUT,
                            help="results-store root (default: results/)")
    run_parser.add_argument("--no-store", action="store_true",
                            help="print tables only, persist nothing")
    run_parser.add_argument("--seed", type=int, default=None,
                            help="override the master seed")
    run_parser.add_argument("--set", action="append", metavar="KEY=VALUE",
                            help="override one experiment parameter "
                                 "(repeatable; value is a Python literal)")
    run_parser.set_defaults(func=_cmd_run)

    show_parser = subparsers.add_parser(
        "show", help="render a stored run as a table")
    show_parser.add_argument(
        "target",
        help="a run directory, or an experiment name (latest stored run)")
    show_parser.add_argument("--out", default=DEFAULT_OUT,
                             help="results-store root searched for "
                                  "experiment names (default: results/)")
    show_parser.set_defaults(func=_cmd_show)
    return parser


def _usage_error(command: str, error: Exception) -> int:
    """Report a bad name/parameter and return the usage-error exit code.

    Only argument interpretation is caught this way; internal failures
    propagate with their tracebacks.
    """
    message = error.args[0] if error.args else str(error)
    print(f"repro {command}: {message}", file=sys.stderr)
    return 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


__all__ = ["main", "build_parser", "render_registry_doc"]
