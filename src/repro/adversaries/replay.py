"""Replaying recorded window schedules as a first-class adversary.

The strongly adaptive adversaries of the experiment battery compute their
windows on line, from full information about the live engine.  A *replayed*
schedule is the opposite: a fixed, pre-committed list of
:class:`~repro.simulation.windows.WindowSpec` objects, played back verbatim.
Replays are what the verification and search layers traffic in — a fuzz
counterexample, a shrunk reproducer, or a search campaign's best-found
schedule are all just window lists — and registering the replayer as the
``"replay-schedule"`` adversary makes any saved schedule usable wherever a
registry adversary is accepted: experiment cells, ``TrialSpec`` fan-out
through :mod:`repro.runner`, the CLI.

Because trial specs must stay picklable plain data, the constructor accepts
the schedule either as ``WindowSpec`` objects or in the JSON-able encoding
of :meth:`~repro.simulation.windows.WindowSpec.to_jsonable` (the format of
the saved artifacts).
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec

PAD_BENIGN = "benign"
PAD_REPEAT = "repeat"
PAD_ERROR = "error"


class ReplayScheduleAdversary(WindowAdversary):
    """Plays back a fixed schedule of window specifications.

    Args:
        schedule: the windows to play, in order — ``WindowSpec`` objects
            or their plain-JSON encodings (the artifact format), mixed
            freely.  An empty schedule (the default) degenerates to the
            benign adversary under benign padding.
        pad: what to do when the engine asks for a window beyond the end
            of the schedule: ``"benign"`` (default) plays full-delivery
            windows, ``"repeat"`` replays the last window forever, and
            ``"error"`` raises ``IndexError`` (callers capping
            ``max_windows`` at the schedule length never pad at all).
    """

    def __init__(self, schedule: Sequence[Union[WindowSpec, dict]] = (),
                 pad: str = PAD_BENIGN) -> None:
        if pad not in (PAD_BENIGN, PAD_REPEAT, PAD_ERROR):
            raise ValueError(
                f"pad must be {PAD_BENIGN!r}, {PAD_REPEAT!r} or "
                f"{PAD_ERROR!r}, got {pad!r}")
        self.schedule: List[WindowSpec] = [
            spec if isinstance(spec, WindowSpec)
            else WindowSpec.from_jsonable(spec)
            for spec in schedule]
        self.pad = pad
        self._next = 0

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        index = self._next
        self._next += 1
        if index < len(self.schedule):
            return self.schedule[index]
        if self.pad == PAD_BENIGN:
            return WindowSpec.full_delivery(engine.n)
        if self.pad == PAD_REPEAT and self.schedule:
            return self.schedule[-1]
        raise IndexError(
            f"replay schedule exhausted after {len(self.schedule)} windows")


__all__ = ["ReplayScheduleAdversary", "PAD_BENIGN", "PAD_REPEAT",
           "PAD_ERROR"]
