"""A registry mapping adversary (and Byzantine strategy) names to classes.

The parallel experiment runner ships trial descriptions to worker processes
as picklable :class:`~repro.runner.spec.TrialSpec` objects; adversaries are
full-information objects bound to a live engine, so specs cannot carry
instances.  Instead they carry a registry name plus a dict of constructor
keyword arguments, and workers rebuild the adversary locally.  This module
centralises that name->class mapping, mirroring the protocol registry in
:mod:`repro.protocols.registry`.
"""

from __future__ import annotations

from typing import Any, Dict, Type

from repro.adversaries.benign import (BenignAdversary,
                                      RandomSchedulerAdversary,
                                      SilencingAdversary)
from repro.adversaries.byzantine import (ByzantineAdversary,
                                         ByzantineStrategy,
                                         EquivocateStrategy,
                                         FlipValueStrategy,
                                         RandomValueStrategy, SilentStrategy)
from repro.adversaries.crash import (CrashAtDecisionAdversary,
                                     CrashSplitVoteAdversary,
                                     StaticCrashAdversary)
from repro.adversaries.fuzzing import ScheduleFuzzer, StepFuzzer
from repro.adversaries.interpolation import LookaheadAdversary
from repro.adversaries.polarizing import PolarizingAdversary
from repro.adversaries.replay import ReplayScheduleAdversary
from repro.adversaries.split_vote import (AdaptiveResettingAdversary,
                                          SplitVoteAdversary)

ADVERSARIES: Dict[str, Type] = {
    "benign": BenignAdversary,
    "random-scheduler": RandomSchedulerAdversary,
    "silencing": SilencingAdversary,
    "split-vote": SplitVoteAdversary,
    "adaptive-resetting": AdaptiveResettingAdversary,
    "polarizing": PolarizingAdversary,
    "lookahead": LookaheadAdversary,
    "static-crash": StaticCrashAdversary,
    "crash-at-decision": CrashAtDecisionAdversary,
    "crash-split-vote": CrashSplitVoteAdversary,
    "byzantine": ByzantineAdversary,
    "schedule-fuzzer": ScheduleFuzzer,
    "step-fuzzer": StepFuzzer,
    "replay-schedule": ReplayScheduleAdversary,
}
"""Window- and step-adversary classes, keyed by registry name."""

STRATEGIES: Dict[str, Type[ByzantineStrategy]] = {
    "silent": SilentStrategy,
    "flip": FlipValueStrategy,
    "equivocate": EquivocateStrategy,
    "random-values": RandomValueStrategy,
}
"""Byzantine corruption strategies, keyed by registry name."""


def build_adversary(name: str, **kwargs: Any):
    """Instantiate a registered adversary from its name and kwargs.

    For the ``"byzantine"`` adversary, a ``strategy`` keyword given as a
    string is resolved through :data:`STRATEGIES` first, so that trial
    specs stay plain-data picklable.

    Raises:
        KeyError: with the list of known names, when the name is unknown.
    """
    try:
        adversary_cls = ADVERSARIES[name]
    except KeyError:
        known = ", ".join(sorted(ADVERSARIES))
        raise KeyError(
            f"unknown adversary {name!r}; known adversaries: {known}")
    strategy = kwargs.get("strategy")
    if isinstance(strategy, str):
        kwargs = dict(kwargs)
        kwargs["strategy"] = build_strategy(strategy)
    return adversary_cls(**kwargs)


def build_strategy(name: str) -> ByzantineStrategy:
    """Instantiate a registered Byzantine strategy from its name."""
    try:
        strategy_cls = STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(STRATEGIES))
        raise KeyError(
            f"unknown Byzantine strategy {name!r}; known strategies: {known}")
    return strategy_cls()


def available_adversaries() -> Dict[str, Type]:
    """All registered adversaries, keyed by name."""
    return dict(ADVERSARIES)


__all__ = [
    "ADVERSARIES",
    "STRATEGIES",
    "build_adversary",
    "build_strategy",
    "available_adversaries",
]
