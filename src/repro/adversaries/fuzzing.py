"""Schedule-fuzzing adversaries: random-but-admissible executions.

The five hand-written adversaries of the experiment battery each realise
one *known* attack (vote splitting, adaptive resets, crash-at-decision,
...).  The fuzzers instead sample the space of admissible schedules
broadly: every window satisfies Definition 1 and every fault stays within
the ``t`` budget, but delivery patterns, reset/crash placements and
Byzantine equivocation are chosen at random from a seeded stream.  Paired
with the independent invariant checker
(:class:`repro.verification.invariants.InvariantChecker`) they form the
``repro fuzz`` campaign: any invariant violation under an admissible
schedule is a bug in the protocol (or the engine), and the violating
schedule is minimized into a reproducer by :mod:`repro.verification.shrink`.

Both fuzzers are seed-deterministic: the same constructor seed yields the
same schedule against the same engine state, which is what makes fuzz
campaigns resumable and counterexamples replayable.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence

from repro.determinism import seeded_rng
from repro.adversaries.base import FaultBudget, random_subset
from repro.adversaries.byzantine import ByzantineStrategy, EquivocateStrategy
from repro.simulation.engine import StepAdversary, StepEngine
from repro.simulation.events import Step
from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec


class ScheduleFuzzer(WindowAdversary):
    """Samples random admissible acceptable windows (the window engine).

    Each window draws, for every processor, an independent sender set of
    random size in ``[n - t, n]``; with probability ``reset_probability`` a
    random set of at most ``t`` processors is reset; with probability
    ``deliver_last_probability`` a random sender subset is deprioritised
    within the window (delivered after everyone else); and — when
    ``crash_probability`` is positive, for crash-model protocols — random
    crash placements drawn against a cumulative ``t``-victim budget.

    Args:
        seed: the schedule seed; equal seeds produce equal schedules.
        reset_probability: chance a window resets anyone (strongly
            adaptive model; keep 0 for crash-model protocols).
        crash_probability: chance a window crashes someone (crash model;
            keep 0 for the strongly adaptive model, which uses resets).
        deliver_last_probability: chance a window deprioritises a random
            sender subset.
        max_crashes: cumulative crash budget (defaults to ``t`` at bind).
    """

    def __init__(self, seed: Optional[int] = None,
                 reset_probability: float = 0.3,
                 crash_probability: float = 0.0,
                 deliver_last_probability: float = 0.25,
                 max_crashes: Optional[int] = None) -> None:
        for name, probability in (
                ("reset_probability", reset_probability),
                ("crash_probability", crash_probability),
                ("deliver_last_probability", deliver_last_probability)):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], "
                                 f"got {probability}")
        self.rng = seeded_rng(seed)
        self.reset_probability = reset_probability
        self.crash_probability = crash_probability
        self.deliver_last_probability = deliver_last_probability
        self.max_crashes = max_crashes
        self._crash_budget: Optional[FaultBudget] = None

    def bind(self, engine: WindowEngine) -> None:
        limit = engine.t if self.max_crashes is None else self.max_crashes
        self._crash_budget = FaultBudget(min(limit, engine.t))

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        n, t = engine.n, engine.t
        rng = self.rng
        senders_for = tuple(
            random_subset(range(n), rng.randint(n - t, n), rng)
            for _ in range(n))
        resets: FrozenSet[int] = frozenset()
        if t > 0 and rng.random() < self.reset_probability:
            resets = random_subset(range(n), rng.randint(1, t), rng)
        crashes: FrozenSet[int] = frozenset()
        assert self._crash_budget is not None
        remaining = self._crash_budget.remaining
        if remaining > 0 and rng.random() < self.crash_probability:
            victims = random_subset(range(n), rng.randint(1, remaining), rng)
            crashes = frozenset(pid for pid in sorted(victims)
                                if self._crash_budget.fault(pid))
        deliver_last: FrozenSet[int] = frozenset()
        if rng.random() < self.deliver_last_probability:
            deliver_last = random_subset(range(n), rng.randint(1, n), rng)
        return WindowSpec(senders_for=senders_for, resets=resets,
                          crashes=crashes, deliver_last=deliver_last)


class StepFuzzer(StepAdversary):
    """Samples random admissible step schedules (the step engine).

    Each step is drawn at random: deliver a random pending message (with
    probability ``deliver_probability`` whenever one is pending, so
    executions make progress), otherwise schedule a random live processor's
    sending step, an in-budget reset, or an in-budget crash.  Messages sent
    by processors in ``corrupted`` are, with probability
    ``corrupt_probability``, rewritten through a Byzantine corruption
    strategy before delivery — the default
    :class:`~repro.adversaries.byzantine.EquivocateStrategy` shows
    different receivers different values, the classic equivocation pattern.

    Args:
        seed: the schedule seed; equal seeds produce equal schedules.
        corrupted: identities whose messages may be corrupted (at most
            ``t``; checked at bind).
        strategy: Byzantine corruption strategy (a registry name string is
            resolved by :func:`repro.adversaries.registry.build_adversary`).
        deliver_probability: chance of preferring a delivery step when
            messages are pending.
        corrupt_probability: chance a corrupted sender's message is
            rewritten on delivery.
        reset_probability: chance of scheduling a resetting step.
        crash_probability: chance of scheduling a crash step.
        max_resets: cumulative reset cap (defaults to ``2 * t`` at bind so
            fuzz runs terminate; the engine's own budget still applies).
    """

    def __init__(self, seed: Optional[int] = None,
                 corrupted: Sequence[int] = (),
                 strategy: Optional[ByzantineStrategy] = None,
                 deliver_probability: float = 0.7,
                 corrupt_probability: float = 0.5,
                 reset_probability: float = 0.0,
                 crash_probability: float = 0.0,
                 max_resets: Optional[int] = None) -> None:
        self.rng = seeded_rng(seed)
        self.corrupted = frozenset(corrupted)
        self.strategy = strategy or EquivocateStrategy()
        self.deliver_probability = deliver_probability
        self.corrupt_probability = corrupt_probability
        self.reset_probability = reset_probability
        self.crash_probability = crash_probability
        self.max_resets = max_resets
        self._resets_left = 0

    def bind(self, engine: StepEngine) -> None:
        if len(self.corrupted) > engine.t:
            raise ValueError(
                f"corrupted set of size {len(self.corrupted)} exceeds "
                f"t = {engine.t}")
        self._resets_left = (2 * engine.t if self.max_resets is None
                             else self.max_resets)
        if engine.reset_budget is not None:
            self._resets_left = min(self._resets_left, engine.reset_budget)

    def _deliverable(self, engine: StepEngine) -> List:
        return [message for message in engine.pending_messages()
                if not engine.processors[message.receiver].crashed]

    def next_step(self, engine: StepEngine) -> Optional[Step]:
        rng = self.rng
        live = engine.live_processors()
        if not live:
            return None
        pending = self._deliverable(engine)
        if pending and rng.random() < self.deliver_probability:
            message = rng.choice(pending)
            if message.sender in self.corrupted and \
                    rng.random() < self.corrupt_probability:
                outcome = self.strategy.corrupt(message, engine, rng)
                if outcome is not ByzantineStrategy.DROP:
                    return Step.receive(message, corrupted_payload=outcome)
                # DROP: leave the message buffered (it is simply never
                # scheduled this step) and fall through to another action.
            else:
                return Step.receive(message)
        if self._resets_left > 0 and rng.random() < self.reset_probability:
            self._resets_left -= 1
            return Step.reset(rng.choice(live))
        crashes_left = engine.crash_budget - engine.total_crashes
        if crashes_left > 0 and rng.random() < self.crash_probability:
            return Step.crash(rng.choice(live))
        return Step.send(rng.choice(live))


__all__ = ["ScheduleFuzzer", "StepFuzzer"]
