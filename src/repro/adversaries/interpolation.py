"""The lookahead adversary: a computable realisation of the Theorem 5 strategy.

The lower-bound adversary of Theorem 5 inspects the current configuration,
determines the largest ``k`` with ``sigma`` outside ``Z_0^k ∪ Z_1^k``, and
applies the acceptable window furnished by Lemma 14 — an *interpolation*
between a window that is good at avoiding a 0-decision and one that is good
at avoiding a 1-decision — to stay outside ``Z_0^{k-1} ∪ Z_1^{k-1}`` with
high probability.

The sets ``Z_b^k`` are defined by universal quantification over windows and
are not directly computable, so this module realises the strategy with
Monte-Carlo estimation: for a family of candidate windows (including the
Lemma 14 hybrids between the two most promising endpoints) it estimates, by
cloning the engine and sampling continuations, the probability that a
decision occurs within a short horizon, and plays the candidate minimising
that probability.  At small ``n`` this adversary demonstrably delays
decisions longer than any fixed schedule, which is the behaviour Theorem 5's
construction predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.determinism import seeded_rng
from repro.adversaries.base import senders_excluding
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec


def interpolate_windows(spec_a: WindowSpec, spec_b: WindowSpec, j: int,
                        max_resets: Optional[int] = None) -> WindowSpec:
    """The Lemma 14 hybrid of two windows at interpolation index ``j``.

    The hybrid gives processors ``0..j-1`` (the first ``j`` coordinates) the
    sender sets of ``spec_a`` and the remaining processors those of
    ``spec_b``; its reset set takes ``spec_a``'s choices on the first ``j``
    identities and ``spec_b``'s on the rest.  In the proof both reset sets
    live inside ``{1, ..., t}``, so the hybrid automatically stays within
    the budget; for arbitrary concrete windows the optional ``max_resets``
    cap trims the union back to an admissible size.
    """
    n = len(spec_a.senders_for)
    if len(spec_b.senders_for) != n:
        raise ValueError("cannot interpolate windows of different sizes")
    senders_for = tuple(
        spec_a.senders_for[i] if i < j else spec_b.senders_for[i]
        for i in range(n))
    resets = frozenset(pid for pid in spec_a.resets if pid < j) | \
        frozenset(pid for pid in spec_b.resets if pid >= j)
    crashes = frozenset(pid for pid in spec_a.crashes if pid < j) | \
        frozenset(pid for pid in spec_b.crashes if pid >= j)
    if max_resets is not None and len(resets) > max_resets:
        resets = frozenset(sorted(resets)[:max_resets])
    if max_resets is not None and len(crashes) > max_resets:
        crashes = frozenset(sorted(crashes)[:max_resets])
    return WindowSpec(senders_for=senders_for, resets=resets, crashes=crashes)


@dataclass
class CandidateEvaluation:
    """Monte-Carlo evaluation of one candidate window.

    Attributes:
        spec: the candidate window.
        decision_probability: estimated probability that some processor
            decides within the lookahead horizon after playing this window.
        zero_probability: estimated probability of a 0-decision.
        one_probability: estimated probability of a 1-decision.
    """

    spec: WindowSpec
    decision_probability: float
    zero_probability: float
    one_probability: float


class LookaheadAdversary(WindowAdversary):
    """Chooses each window by Monte-Carlo lookahead over candidates.

    Args:
        horizon: number of follow-up windows simulated when evaluating a
            candidate (the continuation uses the split-vote strategy, the
            natural "keep blocking" policy).
        samples: Monte-Carlo samples per candidate.
        include_hybrids: also evaluate the Lemma 14 hybrids between the two
            best single-exclusion candidates.
        hybrid_points: how many interpolation indices ``j`` to try.
        seed: randomness for sampling and tie-breaking.
        max_candidates: cap on the number of candidate windows evaluated per
            step (keeps the adversary affordable at larger ``n``).
    """

    def __init__(self, horizon: int = 3, samples: int = 8,
                 include_hybrids: bool = True, hybrid_points: int = 4,
                 seed: Optional[int] = None,
                 max_candidates: int = 12) -> None:
        self.horizon = horizon
        self.samples = samples
        self.include_hybrids = include_hybrids
        self.hybrid_points = hybrid_points
        self.rng = seeded_rng(seed)
        self.max_candidates = max_candidates
        self.evaluations: List[CandidateEvaluation] = []

    # ------------------------------------------------------------------
    # Candidate generation.
    # ------------------------------------------------------------------
    def _base_candidates(self, engine: WindowEngine) -> List[WindowSpec]:
        n, t = engine.n, engine.t
        candidates = [WindowSpec.full_delivery(n)]
        if t > 0:
            # Silence the first t / the last t processors — the canonical
            # window pair (R, S, ..., S) and (R', S', ..., S') appearing in
            # the proofs of Lemmas 11, 13 and 14.
            first = frozenset(range(t))
            last = frozenset(range(n - t, n))
            candidates.append(WindowSpec.uniform(
                n, senders_excluding(n, first), resets=first))
            candidates.append(WindowSpec.uniform(
                n, senders_excluding(n, last), resets=last))
            # Value-targeted exclusions: silence voters of each value.
            zeros, ones = [], []
            for proc in engine.processors:
                estimate = proc.protocol.current_estimate()
                if estimate == 0:
                    zeros.append(proc.pid)
                elif estimate == 1:
                    ones.append(proc.pid)
            for pool in (zeros, ones):
                if pool:
                    excluded = frozenset(pool[:t])
                    candidates.append(WindowSpec.uniform(
                        n, senders_excluding(n, excluded), resets=excluded))
            # The split-vote window (balanced exclusion, no resets).
            split = SplitVoteAdversary(seed=self.rng.getrandbits(32))
            candidates.append(split.next_window(engine))
        return candidates[:self.max_candidates]

    def _with_hybrids(self, engine: WindowEngine,
                      evaluated: List[CandidateEvaluation]
                      ) -> List[WindowSpec]:
        """Hybridise the best zero-avoider with the best one-avoider."""
        if len(evaluated) < 2:
            return []
        best_avoid_zero = min(evaluated, key=lambda e: e.zero_probability)
        best_avoid_one = min(evaluated, key=lambda e: e.one_probability)
        if best_avoid_zero.spec == best_avoid_one.spec:
            return []
        n = engine.n
        indices = sorted({max(1, round(frac * n))
                          for frac in
                          (i / (self.hybrid_points + 1)
                           for i in range(1, self.hybrid_points + 1))})
        return [interpolate_windows(best_avoid_zero.spec,
                                    best_avoid_one.spec, j,
                                    max_resets=engine.t)
                for j in indices]

    # ------------------------------------------------------------------
    # Monte-Carlo evaluation.
    # ------------------------------------------------------------------
    def _evaluate(self, engine: WindowEngine,
                  spec: WindowSpec) -> CandidateEvaluation:
        decisions = 0
        zeros = 0
        ones = 0
        for _ in range(self.samples):
            clone = engine.clone()
            clone.reseed(self.rng.getrandbits(64))
            clone.run_window(spec)
            continuation = SplitVoteAdversary(seed=self.rng.getrandbits(32))
            for _ in range(self.horizon):
                if clone.any_decided():
                    break
                clone.run_window(continuation.next_window(clone))
            if clone.any_decided():
                decisions += 1
                decided_values = {output for output in clone.outputs()
                                  if output is not None}
                if 0 in decided_values:
                    zeros += 1
                if 1 in decided_values:
                    ones += 1
        samples = float(self.samples)
        return CandidateEvaluation(
            spec=spec,
            decision_probability=decisions / samples,
            zero_probability=zeros / samples,
            one_probability=ones / samples)

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        candidates = self._base_candidates(engine)
        evaluated = [self._evaluate(engine, spec) for spec in candidates]
        if self.include_hybrids:
            hybrids = self._with_hybrids(engine, evaluated)
            evaluated.extend(self._evaluate(engine, spec)
                             for spec in hybrids)
        self.evaluations = evaluated
        best = min(evaluated, key=lambda e: (e.decision_probability,
                                             max(e.zero_probability,
                                                 e.one_probability)))
        return best.spec


__all__ = ["interpolate_windows", "CandidateEvaluation", "LookaheadAdversary"]
