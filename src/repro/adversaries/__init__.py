"""Adversary strategies for both execution engines.

Window adversaries realise the strongly adaptive adversary of Section 2
(full-information scheduling plus resetting failures inside acceptable
windows); step adversaries realise the classical asynchronous crash and
Byzantine adversaries of Sections 1 and 5.
"""

from repro.adversaries.base import (FaultBudget, random_subset,
                                    senders_excluding)
from repro.adversaries.benign import (BenignAdversary,
                                      RandomSchedulerAdversary,
                                      SilencingAdversary)
from repro.adversaries.byzantine import (ByzantineAdversary,
                                         ByzantineStrategy,
                                         EquivocateStrategy,
                                         FlipValueStrategy,
                                         RandomValueStrategy, SilentStrategy)
from repro.adversaries.crash import (CrashAtDecisionAdversary,
                                     CrashSplitVoteAdversary,
                                     StaticCrashAdversary)
from repro.adversaries.fuzzing import ScheduleFuzzer, StepFuzzer
from repro.adversaries.interpolation import (CandidateEvaluation,
                                             LookaheadAdversary,
                                             interpolate_windows)
from repro.adversaries.replay import ReplayScheduleAdversary
from repro.adversaries.split_vote import (AdaptiveResettingAdversary,
                                          SplitVoteAdversary)

__all__ = [
    "FaultBudget",
    "random_subset",
    "senders_excluding",
    "BenignAdversary",
    "RandomSchedulerAdversary",
    "SilencingAdversary",
    "ByzantineAdversary",
    "ByzantineStrategy",
    "EquivocateStrategy",
    "FlipValueStrategy",
    "RandomValueStrategy",
    "SilentStrategy",
    "CrashAtDecisionAdversary",
    "CrashSplitVoteAdversary",
    "StaticCrashAdversary",
    "CandidateEvaluation",
    "LookaheadAdversary",
    "interpolate_windows",
    "AdaptiveResettingAdversary",
    "SplitVoteAdversary",
    "ScheduleFuzzer",
    "StepFuzzer",
    "ReplayScheduleAdversary",
]
