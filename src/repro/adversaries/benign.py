"""Benign and oblivious schedulers.

These adversaries cause no failures (or only oblivious, randomly placed
ones).  They serve two purposes: establishing the fast "friendly network"
baseline against which the adversarial slowdowns are measured, and checking
measure-one correctness under schedules that are legal but not worst-case.
"""

from __future__ import annotations

from typing import Optional

from repro.determinism import seeded_rng
from repro.adversaries.base import random_subset, senders_excluding
from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec


class BenignAdversary(WindowAdversary):
    """No failures, full delivery: every window delivers everything.

    Against this scheduler the reset-tolerant algorithm decides in the first
    window for unanimous inputs and within a couple of windows otherwise —
    the friendly baseline of experiment E1.
    """

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        return WindowSpec.full_delivery(engine.n)


class RandomSchedulerAdversary(WindowAdversary):
    """Oblivious random scheduling with optional random resets.

    Each window, every processor hears from an independently chosen random
    set of ``n - t`` senders, and with probability ``reset_probability`` a
    random set of up to ``t`` processors is reset.  This adversary is not
    adaptive (it ignores processor state), so it exercises the protocol's
    tolerance of asynchrony without the full-information slowdowns.
    """

    def __init__(self, seed: Optional[int] = None,
                 reset_probability: float = 0.0) -> None:
        if not 0.0 <= reset_probability <= 1.0:
            raise ValueError("reset_probability must lie in [0, 1]")
        self.rng = seeded_rng(seed)
        self.reset_probability = reset_probability

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        n, t = engine.n, engine.t
        senders_for = tuple(
            random_subset(range(n), n - t, self.rng) for _ in range(n))
        resets = frozenset()
        if t > 0 and self.rng.random() < self.reset_probability:
            reset_count = self.rng.randint(1, t)
            resets = random_subset(range(n), reset_count, self.rng)
        return WindowSpec(senders_for=senders_for, resets=resets)


class SilencingAdversary(WindowAdversary):
    """Permanently silences a fixed set of up to ``t`` processors.

    Every processor hears from everyone except the silenced set, and no
    resets occur.  This is the schedule used in the proof of Lemma 11 (the
    adversary "always delivers the messages from the last ``n - t``
    processors"), and models classic crash-style omission without actually
    crashing anyone.
    """

    def __init__(self, silenced: Optional[frozenset] = None) -> None:
        self.silenced = silenced

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        n, t = engine.n, engine.t
        silenced = self.silenced
        if silenced is None:
            silenced = frozenset(range(t))
        if len(silenced) > t:
            raise ValueError(
                f"cannot silence {len(silenced)} > t = {t} processors")
        senders = senders_excluding(n, silenced)
        return WindowSpec.uniform(n, senders)


__all__ = ["BenignAdversary", "RandomSchedulerAdversary", "SilencingAdversary"]
