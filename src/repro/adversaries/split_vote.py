"""The vote-splitting adversary: the paper's exponential-slowdown schedule.

Section 3 (end) argues that against initial inputs split evenly between 0
and 1, a full-information adversary can keep the threshold-voting algorithm
running for an exponential number of acceptable windows: since the adoption
threshold satisfies ``T3 > n/2``, the adversary shows every processor an
approximately even split of votes (hiding up to ``t`` of them), forcing all
processors to set their next estimates to fresh random bits; with high
probability the coin flips deviate from an even split by only ``O(sqrt(n))``
— far less than the ``Omega(n)`` margin the adversary can absorb — so the
blocking schedule can be repeated for exponentially many windows.

:class:`SplitVoteAdversary` implements exactly that delivery strategy (no
resets), and :class:`AdaptiveResettingAdversary` strengthens it with the
strongly adaptive adversary's resetting power, erasing up to ``t``
majority-voting processors per window so their votes vanish from the next
round entirely.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.determinism import seeded_rng
from repro.adversaries.base import senders_excluding
from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec


def _default_block_threshold(engine: WindowEngine) -> int:
    """The vote count the adversary must keep every processor below.

    For the reset-tolerant protocol this is the adoption threshold ``T3``
    (staying below it forces a coin flip); protocols without explicit
    thresholds fall back to a simple majority of ``n``.
    """
    protocol = engine.processors[0].protocol
    thresholds = getattr(protocol, "thresholds", None)
    if thresholds is not None:
        return thresholds.t3
    majority = getattr(protocol, "majority_threshold", None)
    if callable(majority):
        return int(majority())
    return engine.n // 2 + 1


class SplitVoteAdversary(WindowAdversary):
    """Keeps every processor's delivered votes below the adoption threshold.

    Each window the adversary inspects the estimate every processor is about
    to send (full information), and for every receiver excludes up to ``t``
    senders — preferentially those voting for the globally more popular
    value — so that neither value reaches the blocking threshold among the
    delivered votes.  When the coin flips are so lopsided that this is
    impossible, the adversary has lost control and simply delivers
    everything (the execution then decides within a couple of windows, which
    is exactly the geometric escape the analytic model predicts).

    Args:
        block_threshold: vote count to keep each receiver below; defaults to
            the protocol's adoption threshold ``T3``.
        seed: randomness for tie-breaking among equally useful exclusions.
    """

    def __init__(self, block_threshold: Optional[int] = None,
                 seed: Optional[int] = None) -> None:
        self.block_threshold = block_threshold
        self.rng = seeded_rng(seed)
        self.blocked_windows = 0
        self.lost_control_windows = 0

    # ------------------------------------------------------------------
    def _threshold(self, engine: WindowEngine) -> int:
        if self.block_threshold is not None:
            return self.block_threshold
        return _default_block_threshold(engine)

    def _voters_by_value(self, engine: WindowEngine
                         ) -> Tuple[List[int], List[int]]:
        """Partition live processors by the estimate they are about to send."""
        zeros, ones = [], []
        for proc in engine.processors:
            if proc.crashed:
                continue
            estimate = proc.protocol.current_estimate()
            if estimate == 0:
                zeros.append(proc.pid)
            elif estimate == 1:
                ones.append(proc.pid)
        return zeros, ones

    def _exclusions(self, engine: WindowEngine) -> Optional[FrozenSet[int]]:
        """Senders to hide from every receiver, or ``None`` if infeasible.

        The same exclusion set works for every receiver because the goal —
        keeping both value counts below the threshold — does not depend on
        the receiver's identity.
        """
        threshold = self._threshold(engine)
        t = engine.t
        zeros, ones = self._voters_by_value(engine)
        need_hide_zero = max(0, len(zeros) - (threshold - 1))
        need_hide_one = max(0, len(ones) - (threshold - 1))
        if need_hide_zero + need_hide_one > t:
            return None
        hidden = (self.rng.sample(zeros, need_hide_zero)
                  + self.rng.sample(ones, need_hide_one))
        return frozenset(hidden)

    def _ordering_block(self, engine: WindowEngine) -> Optional[WindowSpec]:
        """Block by scheduling the receiving steps, if the protocol allows it.

        Protocols that act on the *first* ``W`` messages of the current
        round (``W = T1`` for the reset-tolerant algorithm, ``n - t`` for
        Ben-Or) can be starved by delivering the majority-value votes last:
        the processed prefix then contains every minority vote and only
        ``W - minority`` majority votes.  Blocking succeeds whenever that
        count stays below the threshold — i.e. whenever the minority side
        still has more than ``W - threshold`` voters — which requires a far
        larger coin-flip deviation to defeat than exclusion alone.
        """
        waiting = engine.processors[0].protocol.waiting_threshold()
        if waiting is None:
            return None
        threshold = self._threshold(engine)
        zeros, ones = self._voters_by_value(engine)
        senders_total = sum(1 for proc in engine.processors
                            if not proc.crashed and proc.protocol.will_send())
        if len(zeros) >= len(ones):
            majority_pool, majority_count = zeros, len(zeros)
        else:
            majority_pool, majority_count = ones, len(ones)
        minority_count = len(zeros) + len(ones) - majority_count
        majority_in_prefix = max(0, waiting - (senders_total
                                               - majority_count))
        minority_in_prefix = min(minority_count, waiting)
        if majority_in_prefix > threshold - 1 or \
                minority_in_prefix > threshold - 1:
            return None
        everyone = frozenset(range(engine.n))
        return WindowSpec.uniform(engine.n, everyone,
                                  deliver_last=frozenset(majority_pool))

    # ------------------------------------------------------------------
    def next_window(self, engine: WindowEngine) -> WindowSpec:
        ordering_spec = self._ordering_block(engine)
        if ordering_spec is not None:
            self.blocked_windows += 1
            return ordering_spec
        exclusions = self._exclusions(engine)
        if exclusions is None:
            self.lost_control_windows += 1
            return WindowSpec.full_delivery(engine.n)
        self.blocked_windows += 1
        senders = senders_excluding(engine.n, exclusions)
        return WindowSpec.uniform(engine.n, senders)


class AdaptiveResettingAdversary(SplitVoteAdversary):
    """Split-vote delivery plus adaptive resetting failures.

    On top of hiding up to ``t`` majority votes from every receiver, this
    adversary uses the strongly adaptive power to *reset* up to ``t``
    processors at the end of each window.  Reset victims are chosen among
    the processors whose estimates most threaten the balance (those holding
    the globally more popular value), plus any processor that managed to
    decide — erasing a decided processor's memory does not un-decide it (the
    output bit survives a reset), but removing the most lopsided estimates
    keeps the next round's vote split even tighter.

    This is the concrete adversary used in experiment E1/E2 to exercise the
    full strongly adaptive model (delivery scheduling *and* resets).
    """

    def __init__(self, block_threshold: Optional[int] = None,
                 seed: Optional[int] = None,
                 reset_fraction: float = 1.0) -> None:
        super().__init__(block_threshold=block_threshold, seed=seed)
        if not 0.0 <= reset_fraction <= 1.0:
            raise ValueError("reset_fraction must lie in [0, 1]")
        self.reset_fraction = reset_fraction
        self.total_resets_issued = 0

    def _reset_targets(self, engine: WindowEngine) -> FrozenSet[int]:
        budget = int(engine.t * self.reset_fraction)
        if budget <= 0:
            return frozenset()
        zeros, ones = self._voters_by_value(engine)
        majority_pool = zeros if len(zeros) >= len(ones) else ones
        targets = majority_pool[:budget]
        self.total_resets_issued += len(targets)
        return frozenset(targets)

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        base = super().next_window(engine)
        resets = self._reset_targets(engine)
        return WindowSpec(senders_for=base.senders_for, resets=resets,
                          crashes=base.crashes,
                          deliver_last=base.deliver_last)


__all__ = ["SplitVoteAdversary", "AdaptiveResettingAdversary"]
