"""Crash-failure adversaries.

The classical asynchronous crash adversary (Sections 1 and 5) can stop up to
``t`` processors forever and otherwise only controls scheduling; every
message sent to a live processor must eventually be delivered.  These
adversaries drive the window engine in the crash model (no resets) and are
used by the Ben-Or baseline experiments (E4, E6).
"""

from __future__ import annotations

from typing import Optional

from repro.adversaries.base import FaultBudget, senders_excluding
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec


class StaticCrashAdversary(WindowAdversary):
    """Crashes a fixed set of processors at chosen windows.

    Args:
        crash_schedule: mapping from window index (0-based, i.e. the window
            about to be executed) to the processors crashed at its start.
            The cumulative number of victims must stay within ``t``.
        deliver_from_live_only: when True, receivers only hear from live
            processors (the usual crash-model schedule); when False the
            sender sets still formally include crashed processors, which is
            harmless since they send nothing.
    """

    def __init__(self, crash_schedule: Optional[dict] = None,
                 deliver_from_live_only: bool = True) -> None:
        self.crash_schedule = dict(crash_schedule or {})
        self.deliver_from_live_only = deliver_from_live_only
        self._budget: Optional[FaultBudget] = None

    def bind(self, engine: WindowEngine) -> None:
        self._budget = FaultBudget(engine.t)

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        n, t = engine.n, engine.t
        crashes = set(self.crash_schedule.get(engine.window_index, ()))
        assert self._budget is not None
        allowed = frozenset(pid for pid in crashes
                            if self._budget.fault(pid))
        already_crashed = set(engine.crashed_processors())
        excluded = (already_crashed | allowed) if self.deliver_from_live_only \
            else set()
        # Definition 1 caps exclusions at t; crash victims never exceed t by
        # construction of the fault budget, so the truncation is a no-op
        # safety net — sorted so that, if it ever fires, the choice of
        # which victims to keep excluding is deterministic.
        excluded = set(sorted(excluded)[:t])
        senders = senders_excluding(n, excluded)
        return WindowSpec.uniform(n, senders, crashes=allowed)


class CrashAtDecisionAdversary(WindowAdversary):
    """Adaptively crashes processors the moment they decide.

    This is the textbook adaptive crash strategy against early-deciding
    protocols: the first ``t`` processors to decide are immediately crashed,
    so their decision must still propagate through the surviving ones.  Used
    to stress the agreement property in experiment E1/E6.
    """

    def __init__(self) -> None:
        self._budget: Optional[FaultBudget] = None

    def bind(self, engine: WindowEngine) -> None:
        self._budget = FaultBudget(engine.t)

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        n, t = engine.n, engine.t
        assert self._budget is not None
        victims = set()
        for proc in engine.processors:
            if proc.decided and not proc.crashed and self._budget.can_fault(
                    proc.pid):
                self._budget.fault(proc.pid)
                victims.add(proc.pid)
        already_crashed = set(engine.crashed_processors())
        excluded = set(sorted(already_crashed | victims)[:t])
        senders = senders_excluding(n, excluded)
        return WindowSpec.uniform(n, senders, crashes=frozenset(victims))


class CrashSplitVoteAdversary(SplitVoteAdversary):
    """The Theorem 17 adversary: vote splitting in the pure crash model.

    Identical to :class:`SplitVoteAdversary` — message delay alone (never
    actually crashing anyone) suffices to keep forgetful, fully
    communicative protocols such as Ben-Or undecided for exponentially many
    iterations, because withheld messages can always be delivered later
    without affecting the processors' forward behaviour.  The class exists
    so experiment code can name the crash-model adversary explicitly, and it
    additionally refuses to issue resets (the crash model has none).
    """

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        spec = super().next_window(engine)
        if spec.resets:
            spec = WindowSpec(senders_for=spec.senders_for,
                              resets=frozenset(), crashes=spec.crashes)
        return spec


__all__ = [
    "StaticCrashAdversary",
    "CrashAtDecisionAdversary",
    "CrashSplitVoteAdversary",
]
