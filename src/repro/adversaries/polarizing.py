"""The polarizing adversary: drives different processors toward different values.

Used by the threshold-ablation experiment (E7).  With the Theorem 4
constraints in force the adversary cannot cause disagreement no matter how
it polarizes the delivered votes; when the decision threshold is set too low
(``2*T2 <= n``), however, it can deliver predominantly-1 votes to one half
of the processors and predominantly-0 votes to the other half and obtain
conflicting decisions — demonstrating that the constraint is necessary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.determinism import seeded_rng
from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec


class PolarizingAdversary(WindowAdversary):
    """Shows one half of the processors mostly 1-votes, the other mostly 0s.

    For receivers in the "one camp" (the first half of the identities) the
    adversary hides up to ``t`` of the processors currently voting 0; for
    the "zero camp" it hides up to ``t`` of those voting 1.  No resets are
    issued — scheduling alone is enough to break under-constrained
    thresholds.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self.rng = seeded_rng(seed)

    def _voters(self, engine: WindowEngine, value: int) -> List[int]:
        voters = []
        for proc in engine.processors:
            if proc.crashed:
                continue
            if proc.protocol.current_estimate() == value:
                voters.append(proc.pid)
        return voters

    def next_window(self, engine: WindowEngine) -> WindowSpec:
        n, t = engine.n, engine.t
        zero_voters = self._voters(engine, 0)
        one_voters = self._voters(engine, 1)
        hide_for_one_camp = frozenset(zero_voters[:t])
        hide_for_zero_camp = frozenset(one_voters[:t])
        everyone = frozenset(range(n))
        senders_for = []
        for pid in range(n):
            if pid < n // 2:
                senders_for.append(everyone - hide_for_one_camp)
            else:
                senders_for.append(everyone - hide_for_zero_camp)
        return WindowSpec(senders_for=tuple(senders_for))


__all__ = ["PolarizingAdversary"]
