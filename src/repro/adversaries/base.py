"""Shared adversary helpers.

Adversaries come in two flavours matching the two engines:

* *window adversaries* (:class:`repro.simulation.windows.WindowAdversary`)
  choose an acceptable window — the sets ``R, S_1, ..., S_n`` — given full
  information about the current configuration.  These realize the strongly
  adaptive adversary of Section 2.
* *step adversaries* (:class:`repro.simulation.engine.StepAdversary`) choose
  individual sending / receiving / crash steps, realising the classical
  asynchronous crash and Byzantine adversaries.

This module provides small utilities used by several concrete adversaries:
deterministic sender-set construction and fault-budget tracking.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Iterable, Sequence, Set

from repro.simulation.engine import StepAdversary
from repro.simulation.windows import WindowAdversary, WindowSpec


def senders_excluding(n: int, excluded: Iterable[int]) -> FrozenSet[int]:
    """The sender set consisting of everyone except ``excluded``.

    Callers are responsible for keeping ``len(excluded) <= t`` so that the
    resulting set has the ``>= n - t`` size Definition 1 requires.
    """
    excluded_set = set(excluded)
    return frozenset(pid for pid in range(n) if pid not in excluded_set)


def random_subset(population: Sequence[int], size: int,
                  rng: random.Random) -> FrozenSet[int]:
    """A uniformly random subset of the given size."""
    if size > len(population):
        raise ValueError(
            f"cannot sample {size} elements from {len(population)}")
    return frozenset(rng.sample(list(population), size))


class FaultBudget:
    """Tracks how many distinct processors an adversary has faulted.

    Crash adversaries are bounded by a *total* of ``t`` crashed processors
    over the whole execution; this helper enforces that bound and remembers
    the victims.
    """

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self._victims: Set[int] = set()

    @property
    def victims(self) -> Set[int]:
        """Processors faulted so far."""
        return set(self._victims)

    @property
    def remaining(self) -> int:
        """How many more distinct processors may be faulted."""
        return max(0, self.limit - len(self._victims))

    def can_fault(self, pid: int) -> bool:
        """Whether faulting ``pid`` stays within the budget."""
        return pid in self._victims or len(self._victims) < self.limit

    def fault(self, pid: int) -> bool:
        """Record a fault on ``pid``; returns False if over budget."""
        if not self.can_fault(pid):
            return False
        self._victims.add(pid)
        return True


__all__ = [
    "WindowAdversary",
    "WindowSpec",
    "StepAdversary",
    "senders_excluding",
    "random_subset",
    "FaultBudget",
]
