"""Byzantine adversaries for the step-level engine.

The usual Byzantine asynchronous adversary corrupts the messages sent by up
to ``t`` processors (it may also suppress them entirely, simulating
crashes).  The paper notes this adversary is *incomparable* to the strongly
adaptive one: it can lie about corrupted processors' local random bits, but
it cannot erase memory.  These adversaries are used by the Bracha baseline
experiments (E6) and by the committee-protocol contrast (E5).

The adversary here also plays the scheduler: it drives the step engine in
round-robin "communication rounds" (everyone sends, then everything sent is
delivered except what the adversary withholds), applying a corruption
strategy to messages originating from the corrupted set.
"""

from __future__ import annotations

import random
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.determinism import seeded_rng
from repro.simulation.engine import StepAdversary, StepEngine
from repro.simulation.events import Step
from repro.simulation.message import Message


class ByzantineStrategy:
    """How corrupted processors misbehave.

    Subclasses override :meth:`corrupt`, which is consulted for every
    message sent by a corrupted processor and returns either a replacement
    payload, the special value :data:`DROP` to suppress the message, or
    ``None`` to deliver it unchanged.
    """

    DROP = object()
    """Sentinel: suppress the message entirely."""

    def corrupt(self, message: Message, engine: StepEngine,
                rng: random.Random):
        """Return a replacement payload, ``DROP``, or ``None`` (unchanged)."""
        return None


class SilentStrategy(ByzantineStrategy):
    """Corrupted processors appear crashed: all their messages are dropped."""

    def corrupt(self, message: Message, engine: StepEngine,
                rng: random.Random):
        return ByzantineStrategy.DROP


class FlipValueStrategy(ByzantineStrategy):
    """Corrupted processors flip every binary value they send.

    Works on the tuple payload convention used by the protocols in this
    library (the last element of the tuple is the value; ``None`` values and
    non-tuple payloads are left alone).
    """

    def corrupt(self, message: Message, engine: StepEngine,
                rng: random.Random):
        payload = message.payload
        if isinstance(payload, tuple) and payload and payload[-1] in (0, 1):
            return payload[:-1] + (1 - payload[-1],)
        return None


class EquivocateStrategy(ByzantineStrategy):
    """Corrupted processors tell different receivers different values.

    Receivers with even identity are shown value 0, receivers with odd
    identity are shown value 1 — the canonical equivocation attack that
    reliable broadcast (and hence Bracha's protocol) is designed to defeat.
    """

    def corrupt(self, message: Message, engine: StepEngine,
                rng: random.Random):
        payload = message.payload
        if isinstance(payload, tuple) and payload and payload[-1] in (0, 1):
            forced = message.receiver % 2
            return payload[:-1] + (forced,)
        return None


class RandomValueStrategy(ByzantineStrategy):
    """Corrupted processors replace every binary value with a coin flip."""

    def corrupt(self, message: Message, engine: StepEngine,
                rng: random.Random):
        payload = message.payload
        if isinstance(payload, tuple) and payload and payload[-1] in (0, 1):
            return payload[:-1] + (rng.getrandbits(1),)
        return None


class ByzantineAdversary(StepAdversary):
    """Round-robin scheduler with Byzantine corruption of ``t`` processors.

    Args:
        corrupted: the corrupted set; defaults to processors ``0..t-1``.
            Must have size at most ``t``.
        strategy: how corrupted processors misbehave.
        seed: randomness for strategies that need it.
        omit_to: optionally, a set of receivers from which the adversary
            additionally withholds all honest messages for ``omit_rounds``
            communication rounds — exercising asynchrony against honest
            processors as well.
        omit_rounds: how many initial rounds the omission lasts.
    """

    def __init__(self, corrupted: Optional[Sequence[int]] = None,
                 strategy: Optional[ByzantineStrategy] = None,
                 seed: Optional[int] = None,
                 omit_to: Optional[Sequence[int]] = None,
                 omit_rounds: int = 0) -> None:
        self.corrupted: Optional[FrozenSet[int]] = (
            frozenset(corrupted) if corrupted is not None else None)
        self.strategy = strategy or SilentStrategy()
        self.rng = seeded_rng(seed)
        self.omit_to = frozenset(omit_to or ())
        self.omit_rounds = omit_rounds
        self._queue: List[Step] = []
        self._round = 0

    def bind(self, engine: StepEngine) -> None:
        if self.corrupted is None:
            self.corrupted = frozenset(range(engine.t))
        if len(self.corrupted) > engine.t:
            raise ValueError(
                f"corrupted set of size {len(self.corrupted)} exceeds "
                f"t = {engine.t}")

    # ------------------------------------------------------------------
    def _plan_round(self, engine: StepEngine) -> List[Step]:
        """One communication round: everyone sends, then deliveries."""
        steps: List[Step] = [Step.send(pid) for pid in
                             engine.live_processors()]
        return steps

    def _plan_deliveries(self, engine: StepEngine) -> List[Step]:
        steps: List[Step] = []
        assert self.corrupted is not None
        for message in engine.pending_messages():
            if self._round < self.omit_rounds and \
                    message.receiver in self.omit_to and \
                    message.sender not in self.corrupted:
                continue
            if message.sender in self.corrupted:
                outcome = self.strategy.corrupt(message, engine, self.rng)
                if outcome is ByzantineStrategy.DROP:
                    continue
                steps.append(Step.receive(message,
                                          corrupted_payload=outcome))
            else:
                steps.append(Step.receive(message))
        return steps

    def next_step(self, engine: StepEngine) -> Optional[Step]:
        if not self._queue:
            # Alternate: a block of sending steps, then a block of
            # deliveries of whatever is pending.
            sends = self._plan_round(engine)
            deliveries = self._plan_deliveries(engine)
            self._queue = sends + deliveries
            self._round += 1
            if not self._queue:
                return None
        return self._queue.pop(0)


__all__ = [
    "ByzantineStrategy",
    "SilentStrategy",
    "FlipValueStrategy",
    "EquivocateStrategy",
    "RandomValueStrategy",
    "ByzantineAdversary",
]
