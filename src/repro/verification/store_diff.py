"""Differential harness: columnar read-back against the jsonl truth.

The columnar layer (:mod:`repro.results.columnar`) is fast precisely
because it re-encodes the store's rows — which is why, like the batched
execution engine, it must never be trusted on its own.  ``rows.jsonl``
is the ground truth; this harness holds every compacted run to it:

* :func:`diff_run` — read one run through both paths (the tolerant
  line-by-line jsonl parse, and the columnar decode) and compare record
  by record, both structurally and as canonical JSON (so a dict whose
  key *order* changed counts as a mismatch — bit-identity, not mere
  equality).  Runs whose columnar copy is stale (rows were appended
  since compaction — a resume across the boundary) are reported as
  ``stale`` rather than compared; optionally the harness recompacts
  them first.
* :func:`diff_root` — every run under a results root.
* ``python -m repro.verification.store_diff`` — the CI smoke entry:
  run experiments' quick grids through the store, compact, and verify
  the round-trip, exiting non-zero on any mismatch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.results.columnar import (canonical_record_dump, columnar_info,
                                    compact_run, read_jsonl_records,
                                    read_records, source_digest)
from repro.results.store import ROWS_NAME, list_runs


@dataclass
class RunDiff:
    """Outcome of the differential read of one run directory."""

    run_dir: str
    status: str  # "ok" | "mismatch" | "stale" | "uncompacted"
    codec: Optional[str] = None
    rows: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class StoreDiffReport:
    """Aggregated outcome across a results root."""

    runs: List[RunDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(run.status in ("ok", "uncompacted")
                   for run in self.runs)

    @property
    def compared_rows(self) -> int:
        return sum(run.rows for run in self.runs if run.ok)

    def summary(self) -> str:
        by_status: Dict[str, int] = {}
        for run in self.runs:
            by_status[run.status] = by_status.get(run.status, 0) + 1
        rendered = ", ".join(f"{status}={count}" for status, count
                             in sorted(by_status.items()))
        verdict = "OK" if self.ok else "MISMATCH"
        return (f"{len(self.runs)} run(s) [{rendered}], "
                f"{self.compared_rows} rows compared bit-for-bit: "
                f"{verdict}")


def _compare_records(jsonl: Sequence[Dict[str, Any]],
                     columnar: Sequence[Dict[str, Any]]) -> List[str]:
    problems: List[str] = []
    if len(jsonl) != len(columnar):
        problems.append(f"row count: jsonl={len(jsonl)} "
                        f"columnar={len(columnar)}")
    for i, (want, got) in enumerate(zip(jsonl, columnar)):
        if want != got:
            problems.append(f"record {i} structurally diverged: "
                            f"jsonl={want!r} columnar={got!r}")
        elif canonical_record_dump(want) != canonical_record_dump(got):
            problems.append(f"record {i} canonical JSON diverged "
                            f"(key order or float identity)")
        if len(problems) >= 10:
            problems.append("... (further mismatches suppressed)")
            break
    return problems


def diff_run(run_dir: str, recompact: bool = False) -> RunDiff:
    """Differentially read one run through both store paths."""
    info = columnar_info(run_dir)
    rows_path = os.path.join(run_dir, ROWS_NAME)
    if info is None:
        if not recompact:
            return RunDiff(run_dir=run_dir, status="uncompacted")
        info = compact_run(run_dir)
        if info is None:
            return RunDiff(run_dir=run_dir, status="uncompacted")
    if info.source_digest != source_digest(rows_path):
        if not recompact:
            return RunDiff(run_dir=run_dir, status="stale",
                           codec=info.codec)
        info = compact_run(run_dir)
    jsonl_records = read_jsonl_records(rows_path)
    columnar_records, source = read_records(run_dir)
    if source == "jsonl":
        # read_records refusing the columnar copy after a recompaction
        # means the copy is unreadable — that is a failure, not a skip.
        return RunDiff(run_dir=run_dir, status="mismatch",
                       codec=info.codec,
                       mismatches=["columnar copy unreadable; "
                                   "read_records fell back to jsonl"])
    problems = _compare_records(jsonl_records, columnar_records)
    return RunDiff(run_dir=run_dir,
                   status="ok" if not problems else "mismatch",
                   codec=source, rows=len(jsonl_records),
                   mismatches=problems)


def diff_root(root: str, recompact: bool = False) -> StoreDiffReport:
    """Differentially read every run directory under ``root``."""
    report = StoreDiffReport()
    for run_dir in list_runs(root):
        report.runs.append(diff_run(run_dir, recompact=recompact))
    return report


def run_and_diff_experiments(names: Sequence[str], root: str,
                             quick: bool = True,
                             codec: Optional[str] = None,
                             ) -> Tuple[StoreDiffReport, List[str]]:
    """Run experiments through the store, compact, and verify.

    The CI smoke path: every named experiment's (quick) grid executes
    through a :class:`~repro.results.store.RunStore` under ``root``
    (resuming whatever is already there), ``finish()`` compacts, and the
    differential read must come back bit-identical.  Returns the report
    plus the run directories it produced.
    """
    import time

    from repro.experiments import get_experiment
    from repro.results.store import RunStore

    run_dirs: List[str] = []
    for name in names:
        experiment = get_experiment(name)
        params = experiment.resolve_params(None, quick=quick)
        store = RunStore.open(root, experiment.name, params, workers=0)
        # repro: allow[D2] -- manifest wall-time bookkeeping, not trial logic
        started = time.time()
        experiment.run(params=params, workers=0, store=store)
        # repro: allow[D2] -- manifest wall-time bookkeeping, not trial logic
        store.finish(wall_time=time.time() - started)
        if codec is not None:
            compact_run(store.path, codec=codec)
        run_dirs.append(store.path)
    report = StoreDiffReport()
    for run_dir in run_dirs:
        report.runs.append(diff_run(run_dir))
    return report, run_dirs


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CI entry point: prove jsonl -> columnar compaction lossless."""
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        prog="python -m repro.verification.store_diff",
        description="Re-read compacted runs through both store paths "
                    "(line-by-line jsonl, columnar decode) and assert "
                    "bit-identical records.")
    parser.add_argument("--root", default=None,
                        help="verify the runs already stored under this "
                             "results root (default: run --experiments "
                             "into a temporary root instead)")
    parser.add_argument("--experiments", nargs="+", default=["E1", "E2"],
                        help="experiments to run+compact+verify when no "
                             "--root is given (default: E1 E2)")
    parser.add_argument("--quick", action="store_true",
                        help="use the quick (smoke-sized) parameter grid")
    parser.add_argument("--codec", default=None,
                        choices=(None, "parquet", "json-columns"),
                        help="force a compaction codec (default: parquet "
                             "when pyarrow is installed)")
    parser.add_argument("--recompact", action="store_true",
                        help="with --root: recompact stale/uncompacted "
                             "runs before comparing")
    args = parser.parse_args(argv)

    if args.root is not None:
        report = diff_root(args.root, recompact=args.recompact)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-store-diff-") \
                as root:
            report, _ = run_and_diff_experiments(
                args.experiments, root, quick=args.quick,
                codec=args.codec)
            print(report.summary())
            for run in report.runs:
                for problem in run.mismatches:
                    print(f"  MISMATCH {run.run_dir}: {problem}")
            return 0 if report.ok else 1
    print(report.summary())
    for run in report.runs:
        for problem in run.mismatches:
            print(f"  MISMATCH {run.run_dir}: {problem}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())


__all__ = [
    "RunDiff",
    "StoreDiffReport",
    "diff_root",
    "diff_run",
    "run_and_diff_experiments",
    "main",
]
