"""Counterexample minimization: shrink a violating schedule to a reproducer.

A fuzz campaign that finds an invariant violation hands back a *schedule* —
the concrete list of :class:`~repro.simulation.windows.WindowSpec` objects
the fuzzer played.  Because the engines are deterministic given the
processor seed and the schedule, replaying that list reproduces the
violation exactly (the fuzzer's adaptivity is irrelevant once the choices
are written down).  :func:`shrink_schedule` then minimizes it greedily:

1. *prefix truncation* — binary-search the shortest violating prefix
   (violations are monotone in the prefix: events only accumulate);
2. *window removal* — repeatedly try dropping each remaining window
   (classic greedy ddmin at chunk size one, which is where delta
   debugging converges anyway for the short schedules step 1 leaves);
3. *window simplification* — per window, try clearing the reset, crash
   and deliver-last sets and filling every sender set back to "everyone"
   (the benign window), keeping each simplification that still violates.

The result is a short, mostly-benign schedule in which every remaining
fault is load-bearing.  :func:`save_counterexample` /
:func:`load_counterexample` persist schedules as JSON so campaigns can
check them in as first-class artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.adversaries.replay import PAD_ERROR, ReplayScheduleAdversary
from repro.protocols.base import ProtocolFactory
from repro.protocols.registry import get_protocol
from repro.simulation.trace import ExecutionResult
from repro.simulation.windows import WindowEngine, WindowSpec
from repro.verification.invariants import InvariantChecker, VerificationReport


@dataclass(frozen=True)
class ReplaySetup:
    """Everything besides the schedule needed to re-run an execution.

    Attributes:
        protocol: protocol registry name.
        n: number of processors.
        t: fault bound.
        inputs: the input bits.
        seed: the engine's processor-randomness seed.
        protocol_kwargs: extra protocol constructor arguments.
    """

    protocol: str
    n: int
    t: int
    inputs: Tuple[int, ...]
    seed: Optional[int] = None
    protocol_kwargs: Dict[str, Any] = field(default_factory=dict)


# repro: allow[R1] -- compat alias of the registered replay-schedule class
class ScheduleReplayAdversary(ReplayScheduleAdversary):
    """Backwards-compatible alias of the registry's ``replay-schedule``.

    Replays here always cap ``max_windows`` at the schedule length, so the
    strict no-padding behaviour of the original class is preserved.
    """

    def __init__(self, schedule: Sequence[WindowSpec]) -> None:
        super().__init__(schedule, pad=PAD_ERROR)


def replay_schedule(setup: ReplaySetup,
                    schedule: Sequence[WindowSpec]) -> ExecutionResult:
    """Re-execute a schedule from scratch, recording a fresh trace."""
    info = get_protocol(setup.protocol)
    factory = ProtocolFactory(info.protocol_cls, n=setup.n, t=setup.t,
                              **setup.protocol_kwargs)
    engine = WindowEngine(factory, list(setup.inputs), seed=setup.seed,
                          record_trace=True)
    return engine.run(ScheduleReplayAdversary(schedule),
                      max_windows=len(schedule), stop_when="all")


@dataclass
class ShrinkResult:
    """The outcome of minimizing one violating schedule.

    Attributes:
        schedule: the minimized schedule (still violating).
        violations: the violations the minimized schedule exhibits.
        original_windows: schedule length before shrinking.
        replays: how many replays the minimization spent.
    """

    schedule: List[WindowSpec]
    violations: List[str]
    original_windows: int
    replays: int


def shrink_schedule(setup: ReplaySetup, schedule: Sequence[WindowSpec],
                    checker: Optional[InvariantChecker] = None,
                    max_replays: int = 2000) -> ShrinkResult:
    """Greedily minimize a schedule that violates an invariant.

    Args:
        setup: the execution context the schedule runs in.
        schedule: a violating schedule (as recorded in a fuzz trace).
        checker: the invariant checker defining "violating"; defaults to
            a fresh :class:`InvariantChecker` with no corrupted set.
        max_replays: hard cap on replays; minimization stops early (with
            whatever it has) once spent.

    Raises:
        ValueError: when the input schedule does not violate anything —
            there is nothing to shrink.
    """
    checker = checker or InvariantChecker()
    replays = 0

    def report_for(candidate: Sequence[WindowSpec]) -> VerificationReport:
        nonlocal replays
        replays += 1
        return checker.check(replay_schedule(setup, candidate).trace)

    def violating(candidate: Sequence[WindowSpec]) -> bool:
        return bool(candidate) and not report_for(candidate).ok

    current = list(schedule)
    if not violating(current):
        raise ValueError("schedule does not violate any invariant; "
                         "nothing to shrink")

    # Step 1: shortest violating prefix (monotone, so binary search).
    low, high = 1, len(current)
    while low < high and replays < max_replays:
        middle = (low + high) // 2
        if violating(current[:middle]):
            high = middle
        else:
            low = middle + 1
    current = current[:high]

    # Step 2: greedy removal of interior windows until a fixpoint.
    changed = True
    while changed and replays < max_replays:
        changed = False
        index = len(current) - 1
        while index >= 0 and replays < max_replays:
            candidate = current[:index] + current[index + 1:]
            if violating(candidate):
                current = candidate
                changed = True
            index -= 1

    # Step 3: simplify the surviving windows one at a time.
    everyone = frozenset(range(setup.n))
    full = tuple(everyone for _ in range(setup.n))
    for index in range(len(current)):
        if replays >= max_replays:
            break
        for simplified in (
                replace(current[index], deliver_last=frozenset()),
                replace(current[index], crashes=frozenset()),
                replace(current[index], resets=frozenset()),
                replace(current[index], senders_for=full)):
            if simplified == current[index]:
                continue
            candidate = list(current)
            candidate[index] = simplified
            if violating(candidate):
                current = candidate

    final = report_for(current)
    return ShrinkResult(
        schedule=current,
        violations=[str(violation) for violation in final.violations],
        original_windows=len(schedule),
        replays=replays)


# ----------------------------------------------------------------------
# Persistence: schedules as JSON artifacts.
# ----------------------------------------------------------------------
def window_spec_to_jsonable(spec: WindowSpec) -> Dict[str, Any]:
    """A plain-JSON encoding of one window specification."""
    return spec.to_jsonable()


def window_spec_from_jsonable(data: Dict[str, Any]) -> WindowSpec:
    """Rebuild a window specification from its JSON encoding."""
    return WindowSpec.from_jsonable(data)


def schedule_to_jsonable(schedule: Sequence[WindowSpec]) -> List[Dict]:
    """Encode a whole schedule as plain JSON data."""
    return [spec.to_jsonable() for spec in schedule]


def schedule_from_jsonable(data: Sequence[Dict]) -> List[WindowSpec]:
    """Decode a schedule from its JSON encoding."""
    return [WindowSpec.from_jsonable(entry) for entry in data]


def save_counterexample(path: str, setup: ReplaySetup,
                        schedule: Sequence[WindowSpec],
                        violations: Sequence[str]) -> None:
    """Write a self-contained counterexample artifact.

    The artifact carries the full replay context, so
    :func:`load_counterexample` followed by :func:`replay_schedule`
    reproduces the violation on a fresh checkout.
    """
    artifact = {
        "protocol": setup.protocol,
        "n": setup.n,
        "t": setup.t,
        "inputs": list(setup.inputs),
        "seed": setup.seed,
        "protocol_kwargs": dict(setup.protocol_kwargs),
        "violations": list(violations),
        "schedule": schedule_to_jsonable(schedule),
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


def parse_schedule_artifact(artifact: Dict[str, Any]
                            ) -> Tuple[ReplaySetup, List[WindowSpec]]:
    """Decode the core of any schedule artifact: (setup, schedule).

    This is the one place the shared artifact format (fuzz
    counterexamples, search best-schedule files) is parsed; extra keys
    are the caller's business.
    """
    setup = ReplaySetup(
        protocol=artifact["protocol"], n=artifact["n"], t=artifact["t"],
        inputs=tuple(artifact["inputs"]), seed=artifact["seed"],
        protocol_kwargs=dict(artifact.get("protocol_kwargs", {})))
    return setup, schedule_from_jsonable(artifact["schedule"])


def load_counterexample(path: str) -> Tuple[ReplaySetup, List[WindowSpec],
                                            List[str]]:
    """Load a counterexample artifact: (setup, schedule, violations)."""
    with open(path) as handle:
        artifact = json.load(handle)
    setup, schedule = parse_schedule_artifact(artifact)
    return setup, schedule, list(artifact.get("violations", ()))


__all__ = [
    "ReplaySetup",
    "ScheduleReplayAdversary",
    "replay_schedule",
    "ShrinkResult",
    "shrink_schedule",
    "window_spec_to_jsonable",
    "window_spec_from_jsonable",
    "schedule_to_jsonable",
    "schedule_from_jsonable",
    "save_counterexample",
    "parse_schedule_artifact",
    "load_counterexample",
]
