"""Differential harness: the batched backend against the per-trial oracle.

The vectorized engine (:mod:`repro.batched.engine`) is fast precisely
because it re-implements the window engine's semantics in array form —
which is also why it must never be trusted on its own.  The per-trial
path (:func:`repro.runner.spec.execute_trial`) is the bit-identity
oracle, and this module is the harness that holds the engine to it:

* :func:`diff_specs` — run a spec list exactly as the batched backend
  would (same grouping, same fallback gating), then replay a sampled
  subset of every batch through ``execute_trial`` and compare the full
  :class:`~repro.simulation.trace.ExecutionResult` field by field.
* :func:`diff_experiment_cells` — build the harness input from an
  experiment's (quick) cell grid, so CI can differential-test the real
  E1/E2 workloads rather than synthetic specs.

Sampling is seed-deterministic (``sample_seed``), so a CI failure
reproduces locally with the same command line.  ``sample=1.0`` replays
everything — that is the configuration the test suite uses on small
grids.

Run as a module for the CI smoke check::

    python -m repro.verification.batched_diff --experiments E1 E2 \\
        --quick --sample 0.5
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.batched.runner import MIN_BATCH
from repro.batched.support import (batch_signature, numpy_ok,
                                   unsupported_reason)
from repro.runner.spec import TrialSpec, execute_trial

#: ExecutionResult fields compared per replayed trial.  This is the whole
#: dataclass — bit-identity means *no* observable field may differ, not
#: just the decision-level ones.
RESULT_FIELDS = (
    "n", "t", "inputs", "outputs", "crashed", "windows_elapsed",
    "steps_elapsed", "first_decision_window", "first_decision_step",
    "message_chain_length", "messages_sent", "messages_delivered",
    "total_resets", "total_coin_flips", "agreement_violated",
    "validity_violated", "configurations", "trace",
)


@dataclass
class DiffMismatch:
    """One replayed trial whose batched result differed from the oracle."""

    index: int
    spec: TrialSpec
    fields: Dict[str, Tuple[Any, Any]]  # name -> (batched, oracle)

    def describe(self) -> str:
        parts = ", ".join(
            f"{name}: batched={got!r} oracle={want!r}"
            for name, (got, want) in sorted(self.fields.items()))
        return (f"spec[{self.index}] ({self.spec.protocol} vs "
                f"{self.spec.adversary}, n={self.spec.n}): {parts}")


@dataclass
class DiffReport:
    """Outcome of one differential pass over a spec list."""

    total: int = 0
    batched: int = 0
    fallback: int = 0
    quarantined: int = 0
    replayed: int = 0
    mismatches: List[DiffMismatch] = field(default_factory=list)
    fallback_reasons: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.mismatches)} MISMATCHES"
        return (f"{self.total} specs: {self.batched} batched "
                f"({self.quarantined} quarantined), {self.fallback} "
                f"fallback; {self.replayed} replayed against the "
                f"per-trial oracle: {status}")


def _compare(index: int, spec: TrialSpec, batched_result: Any,
             oracle_result: Any) -> Optional[DiffMismatch]:
    fields: Dict[str, Tuple[Any, Any]] = {}
    for name in RESULT_FIELDS:
        got = getattr(batched_result, name)
        want = getattr(oracle_result, name)
        if got != want:
            fields[name] = (got, want)
    if fields:
        return DiffMismatch(index=index, spec=spec, fields=fields)
    return None


def diff_specs(specs: Sequence[TrialSpec], *, sample: float = 1.0,
               sample_seed: int = 0) -> DiffReport:
    """Run ``specs`` on the batched engine and oracle-replay a sample.

    Mirrors :class:`~repro.batched.runner.BatchedRunner` exactly on the
    grouping side (``unsupported_reason``, ``batch_signature``,
    ``MIN_BATCH``), so the trials it checks are the trials a real
    ``--backend batched`` run would vectorize.  Fallback trials are not
    replayed — they already *run* on the oracle.

    Args:
        specs: the trial specs to execute.
        sample: fraction of each batch to replay through
            ``execute_trial`` (at least one trial per batch; ``1.0``
            replays every batched trial).
        sample_seed: seed for the deterministic sample draw.

    Raises:
        RuntimeError: when numpy is unavailable — a differential run
            that silently checked nothing would be worse than no run.
    """
    if not numpy_ok():
        raise RuntimeError(
            "batched differential check needs numpy >= 2.0; the batched "
            "backend is inert without it, so there is nothing to verify")
    if not 0.0 < sample <= 1.0:
        raise ValueError(f"sample must be in (0, 1], got {sample}")
    from repro.batched.engine import BatchedWindowEngine

    specs = list(specs)
    report = DiffReport(total=len(specs))
    rng = random.Random(sample_seed)

    groups: Dict[Tuple[Any, ...], List[int]] = {}
    for index, spec in enumerate(specs):
        reason = unsupported_reason(spec)
        if reason is not None:
            report.fallback += 1
            report.fallback_reasons[reason] = \
                report.fallback_reasons.get(reason, 0) + 1
            continue
        groups.setdefault(batch_signature(spec), []).append(index)

    for members in groups.values():
        if len(members) < MIN_BATCH:
            report.fallback += len(members)
            reason = f"batch smaller than {MIN_BATCH}"
            report.fallback_reasons[reason] = \
                report.fallback_reasons.get(reason, 0) + len(members)
            continue
        results, quarantined = \
            BatchedWindowEngine([specs[i] for i in members]).run()
        executed = [local for local in range(len(members))
                    if local not in quarantined]
        report.batched += len(executed)
        report.quarantined += len(quarantined)
        report.fallback += len(quarantined)
        if quarantined:
            reason = "quarantined mid-batch"
            report.fallback_reasons[reason] = \
                report.fallback_reasons.get(reason, 0) + len(quarantined)
        count = max(1, round(len(executed) * sample)) if executed else 0
        for local in sorted(rng.sample(executed, min(count, len(executed)))):
            index = members[local]
            report.replayed += 1
            mismatch = _compare(index, specs[index], results[local],
                                execute_trial(specs[index]))
            if mismatch is not None:
                report.mismatches.append(mismatch)
    return report


def diff_experiment_cells(name: str, *, quick: bool = True,
                          params: Optional[Dict[str, Any]] = None,
                          sample: float = 1.0,
                          sample_seed: int = 0) -> DiffReport:
    """Differential-test one registered experiment's cell grid.

    Expands the experiment's (quick) parameter grid into the exact specs
    ``repro run`` would submit and hands them to :func:`diff_specs`.
    """
    from repro.experiments import get_experiment

    experiment = get_experiment(name)
    cells = experiment.cells(params, quick=quick)
    specs = [spec for cell in cells for spec in cell.specs]
    return diff_specs(specs, sample=sample, sample_seed=sample_seed)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CI entry point: differential-check experiments' quick grids."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.verification.batched_diff",
        description="Replay sampled batched-backend trials through the "
                    "per-trial oracle and assert bit-identical results.")
    parser.add_argument("--experiments", nargs="+", default=["E1", "E2"],
                        help="experiment names to check (default: E1 E2)")
    parser.add_argument("--quick", action="store_true",
                        help="use the quick (smoke-sized) parameter grid")
    parser.add_argument("--sample", type=float, default=1.0,
                        help="fraction of each batch to replay "
                             "(default: 1.0 = everything)")
    parser.add_argument("--sample-seed", type=int, default=0,
                        help="seed for the sample draw (default: 0)")
    args = parser.parse_args(argv)

    failed = False
    for name in args.experiments:
        report = diff_experiment_cells(
            name, quick=args.quick, sample=args.sample,
            sample_seed=args.sample_seed)
        print(f"{name}: {report.summary()}")
        for reason, count in sorted(report.fallback_reasons.items()):
            print(f"  fallback[{reason}]: {count}")
        for mismatch in report.mismatches[:10]:
            print(f"  MISMATCH {mismatch.describe()}")
        failed = failed or not report.ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())


__all__ = [
    "DiffMismatch",
    "DiffReport",
    "RESULT_FIELDS",
    "diff_experiment_cells",
    "diff_specs",
    "main",
]
