"""Differential cross-engine replay: window engine vs step engine.

The window engine executes the paper's acceptable-window model directly;
the step engine executes the same model one fine-grained step at a time.
An acceptable window is, by Definition 1, just a particular arrangement of
sending / receiving / resetting steps — so any window-engine execution can
be *compiled* to a step schedule (crashes, then the live processors'
sending steps in identity order, then the recorded deliveries in delivery
order, then the resets) and replayed on the step engine.  If the two
engines implement the same model, the replay must reproduce the exact same
execution: same decisions, same message counts, same resets.

:func:`differential_replay` runs that comparison for one trial
specification.  It is both a verification tool (an engine divergence is a
bug in one of them) and the semantic anchor for the fuzz campaign: a
violation that reproduces on both engines cannot be an artifact of either
engine's bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.adversaries.registry import build_adversary
from repro.protocols.base import ProtocolFactory
from repro.protocols.registry import get_protocol
from repro.runner.spec import WINDOW_ENGINE, TrialSpec
from repro.simulation.engine import StepEngine
from repro.simulation.events import Step
from repro.simulation.trace import ExecutionResult, ExecutionTrace
from repro.simulation.windows import WindowEngine


@dataclass
class DifferentialReport:
    """The outcome of one window-vs-step differential replay.

    Attributes:
        n: number of processors.
        t: fault bound.
        windows: how many windows the window-engine execution ran.
        agree: whether the step replay reproduced the window execution.
        mismatches: human-readable descriptions of every divergence.
        window_outputs: the window engine's final output bits.
        step_outputs: the step replay's final output bits.
    """

    n: int
    t: int
    windows: int
    agree: bool
    mismatches: List[str] = field(default_factory=list)
    window_outputs: Tuple[Optional[int], ...] = ()
    step_outputs: Tuple[Optional[int], ...] = ()


def replay_trace_on_step_engine(spec: TrialSpec,
                                trace: ExecutionTrace) -> ExecutionResult:
    """Re-execute a window-engine trace step by step.

    Both engines stamp network sequence numbers in submission order and the
    compiled schedule preserves the window engine's submission order, so
    the trace's delivery events can be re-issued by sequence number.
    """
    info = get_protocol(spec.protocol)
    factory = ProtocolFactory(info.protocol_cls, n=spec.n, t=spec.t,
                              **spec.protocol_kwargs)
    # The window model caps crashes at t cumulatively and has no global
    # reset cap, so the replaying step engine gets the same budgets.
    engine = StepEngine(factory, list(spec.inputs), seed=spec.seed,
                        crash_budget=spec.t, reset_budget=None,
                        record_trace=True)
    crashed = set()
    deliveries = trace.deliveries_by_window()
    for window, window_spec in enumerate(trace.windows):
        for pid in sorted(window_spec.crashes):
            if pid not in crashed:
                crashed.add(pid)
                engine.apply_step(Step.crash(pid))
        for pid in range(trace.n):
            if pid not in crashed:
                engine.apply_step(Step.send(pid))
        for event in deliveries[window]:
            message = engine.network.find_pending(event.sequence)
            if message is None:
                raise LookupError(
                    f"window {window}: delivery of sequence "
                    f"{event.sequence} has no pending counterpart in the "
                    f"step replay (engines diverged earlier)")
            engine.apply_step(Step.receive(message))
        for pid in sorted(window_spec.resets):
            if pid not in crashed:
                engine.apply_step(Step.reset(pid))
    return engine.result()


def differential_replay(spec: TrialSpec) -> DifferentialReport:
    """Run one window-engine trial, replay it on the step engine, compare.

    Args:
        spec: a window-engine trial specification (``engine="window"``).

    Raises:
        ValueError: when the spec targets the step engine (there is no
            canonical reverse compilation).
    """
    if spec.engine != WINDOW_ENGINE:
        raise ValueError("differential replay needs a window-engine spec, "
                         f"got engine={spec.engine!r}")
    info = get_protocol(spec.protocol)
    adversary = build_adversary(spec.adversary, **spec.adversary_kwargs)
    factory = ProtocolFactory(info.protocol_cls, n=spec.n, t=spec.t,
                              **spec.protocol_kwargs)
    engine = WindowEngine(factory, list(spec.inputs), seed=spec.seed,
                          record_trace=True)
    window_result = engine.run(adversary, max_windows=spec.max_windows,
                               stop_when=spec.stop_when)
    assert window_result.trace is not None
    report = DifferentialReport(
        n=spec.n, t=spec.t, windows=window_result.windows_elapsed,
        agree=True, window_outputs=window_result.outputs)
    try:
        step_result = replay_trace_on_step_engine(spec, window_result.trace)
    except LookupError as error:
        report.agree = False
        report.mismatches.append(str(error))
        return report
    report.step_outputs = step_result.outputs
    for label, window_value, step_value in (
            ("outputs", window_result.outputs, step_result.outputs),
            ("crashed", window_result.crashed, step_result.crashed),
            ("messages_sent", window_result.messages_sent,
             step_result.messages_sent),
            ("messages_delivered", window_result.messages_delivered,
             step_result.messages_delivered),
            ("total_resets", window_result.total_resets,
             step_result.total_resets),
            ("total_coin_flips", window_result.total_coin_flips,
             step_result.total_coin_flips)):
        if window_value != step_value:
            report.agree = False
            report.mismatches.append(
                f"{label}: window engine {window_value!r} "
                f"vs step replay {step_value!r}")
    return report


__all__ = ["DifferentialReport", "differential_replay",
           "replay_trace_on_step_engine"]
