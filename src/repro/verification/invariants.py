"""Independent invariant checking over recorded execution traces.

The engines already summarise each execution in an
:class:`~repro.simulation.trace.ExecutionResult`, but those flags are
computed by the same code that runs the execution — a bookkeeping bug could
hide a real violation.  :class:`InvariantChecker` re-derives the paper's
trace-level guarantees from the raw event log
(:class:`~repro.simulation.trace.ExecutionTrace`) alone:

``agreement``
    No two (honest) processors decide conflicting values (Definition 2).
``validity``
    Every (honest) decided value equals some honest processor's input.
``decision-stability``
    The output bit is write-once: no processor's recorded decision is
    ever retracted or overwritten.
``window-acceptability``
    Every executed window satisfies Definition 1 — each sender set has at
    least ``n - t`` members, at most ``t`` resets per window — and every
    recorded delivery stays inside its window's sender set.
``fault-bound``
    At most ``t`` distinct processors ever crash (and at most the step
    engine's ``crash_budget``, when it recorded one).
``reset-budget``
    Per-window resets stay within ``t`` (window model) and total resets
    within the step engine's ``reset_budget`` (when one was set).
``message-causality``
    Deliveries reference previously sent messages, no message is
    delivered twice, and network sequence numbers are strictly
    increasing — the no-forgery/no-duplication guarantees of the
    dedicated-channel model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.simulation.errors import InvalidWindowError
from repro.simulation.trace import ExecutionTrace, TraceEvent

INVARIANTS: Tuple[str, ...] = (
    "agreement",
    "validity",
    "decision-stability",
    "window-acceptability",
    "fault-bound",
    "reset-budget",
    "message-causality",
)
"""Every invariant the checker re-derives, in report order."""


@dataclass(frozen=True)
class Violation:
    """One invariant violation found in a trace.

    Attributes:
        invariant: which invariant broke (one of :data:`INVARIANTS`).
        detail: human-readable description with the offending events.
        window: the window the violation was detected in, when known.
    """

    invariant: str
    detail: str
    window: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - display helper
        where = f" (window {self.window})" if self.window is not None else ""
        return f"{self.invariant}{where}: {self.detail}"


@dataclass
class VerificationReport:
    """The outcome of checking one trace.

    Attributes:
        n: number of processors in the checked execution.
        t: fault bound of the checked execution.
        engine: which engine produced the trace.
        corrupted: processors excluded from agreement/validity (Byzantine
            runs judge the honest processors only).
        violations: every violation found, grouped by invariant order.
    """

    n: int
    t: int
    engine: str
    corrupted: Tuple[int, ...] = ()
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the trace satisfied every invariant."""
        return not self.violations

    def violated_invariants(self) -> List[str]:
        """The distinct violated invariant names, in report order."""
        seen = []
        for violation in self.violations:
            if violation.invariant not in seen:
                seen.append(violation.invariant)
        return seen

    def summary(self) -> str:
        """A one-line summary, convenient for table rows."""
        if self.ok:
            return "-"
        return "; ".join(str(violation) for violation in self.violations)


class InvariantChecker:
    """Re-derives the paper's invariants from a recorded trace.

    Args:
        corrupted: processor identities under Byzantine control.  Their
            decisions are ignored by the agreement/validity checks and
            their inputs excluded from the validity base, matching how the
            Bracha experiments judge correctness over honest processors.
    """

    def __init__(self, corrupted: Sequence[int] = ()) -> None:
        self.corrupted = frozenset(corrupted)

    # ------------------------------------------------------------------
    def check(self, trace: ExecutionTrace) -> VerificationReport:
        """Check every invariant against ``trace``."""
        report = VerificationReport(
            n=trace.n, t=trace.t, engine=trace.engine,
            corrupted=tuple(sorted(self.corrupted)))
        self._check_decisions(trace, report)
        self._check_windows(trace, report)
        self._check_faults(trace, report)
        self._check_causality(trace, report)
        return report

    def check_result(self, result) -> VerificationReport:
        """Check the trace attached to an :class:`ExecutionResult`.

        Raises:
            ValueError: when the result carries no trace (the execution
                was not run with ``record_trace=True``).
        """
        if result.trace is None:
            raise ValueError(
                "ExecutionResult carries no trace; run the trial with "
                "record_trace=True to enable invariant checking")
        return self.check(result.trace)

    # ------------------------------------------------------------------
    # Agreement, validity, decision stability.
    # ------------------------------------------------------------------
    def _check_decisions(self, trace: ExecutionTrace,
                         report: VerificationReport) -> None:
        decided: Dict[int, Optional[int]] = {}
        honest_values: Dict[int, TraceEvent] = {}
        honest_inputs = {trace.inputs[pid] for pid in range(trace.n)
                         if pid not in self.corrupted}
        for event in trace.events:
            if event.kind != "decide":
                continue
            if event.pid in decided and decided[event.pid] != event.value:
                report.violations.append(Violation(
                    "decision-stability",
                    f"processor {event.pid} decided "
                    f"{decided[event.pid]} then {event.value}",
                    window=event.window))
            decided[event.pid] = event.value
            if event.pid in self.corrupted:
                continue
            for value, first in honest_values.items():
                if value != event.value:
                    report.violations.append(Violation(
                        "agreement",
                        f"processor {first.pid} decided {value} but "
                        f"processor {event.pid} decided {event.value}",
                        window=event.window))
            honest_values.setdefault(event.value, event)
            if event.value not in honest_inputs:
                report.violations.append(Violation(
                    "validity",
                    f"processor {event.pid} decided {event.value}, which "
                    f"is no honest processor's input "
                    f"(inputs: {sorted(honest_inputs)})",
                    window=event.window))

    # ------------------------------------------------------------------
    # Window acceptability and the reset budget.
    # ------------------------------------------------------------------
    def _check_windows(self, trace: ExecutionTrace,
                       report: VerificationReport) -> None:
        n, t = trace.n, trace.t
        for index, spec in enumerate(trace.windows):
            try:
                spec.validate(n, t)
            except InvalidWindowError as error:
                report.violations.append(Violation(
                    "window-acceptability", str(error), window=index))
        resets_per_window: Dict[int, int] = {}
        total_resets = 0
        for event in trace.events:
            if event.kind == "deliver" and event.window is not None:
                spec = trace.windows[event.window]
                if event.sender not in spec.senders_for[event.pid]:
                    report.violations.append(Violation(
                        "window-acceptability",
                        f"message from {event.sender} delivered to "
                        f"{event.pid} outside its sender set",
                        window=event.window))
            elif event.kind == "reset":
                total_resets += 1
                if event.window is not None:
                    count = resets_per_window.get(event.window, 0) + 1
                    resets_per_window[event.window] = count
                    if count == t + 1:
                        report.violations.append(Violation(
                            "reset-budget",
                            f"more than t = {t} resets in one window",
                            window=event.window))
        if trace.reset_budget is not None and \
                total_resets > trace.reset_budget:
            report.violations.append(Violation(
                "reset-budget",
                f"{total_resets} resets exceed the budget of "
                f"{trace.reset_budget}"))

    # ------------------------------------------------------------------
    # Crash-fault bound.
    # ------------------------------------------------------------------
    def _check_faults(self, trace: ExecutionTrace,
                      report: VerificationReport) -> None:
        crashed: Set[int] = set()
        for event in trace.events:
            if event.kind != "crash":
                continue
            crashed.add(event.pid)
        limit = trace.t
        if trace.crash_budget is not None:
            limit = min(limit, trace.crash_budget)
        if len(crashed) > limit:
            report.violations.append(Violation(
                "fault-bound",
                f"{len(crashed)} distinct processors crashed, exceeding "
                f"the bound of {limit}"))

    # ------------------------------------------------------------------
    # Message causality.
    # ------------------------------------------------------------------
    def _check_causality(self, trace: ExecutionTrace,
                         report: VerificationReport) -> None:
        sent: Set[int] = set()
        delivered: Set[int] = set()
        last_sequence = -1
        for event in trace.events:
            if event.kind == "send":
                for sequence in event.sequences:
                    if sequence <= last_sequence:
                        report.violations.append(Violation(
                            "message-causality",
                            f"sequence {sequence} stamped out of order "
                            f"(last was {last_sequence})",
                            window=event.window))
                    last_sequence = max(last_sequence, sequence)
                    sent.add(sequence)
            elif event.kind == "deliver":
                if event.sequence not in sent:
                    report.violations.append(Violation(
                        "message-causality",
                        f"delivery of sequence {event.sequence} to "
                        f"{event.pid}, which was never sent",
                        window=event.window))
                if event.sequence in delivered:
                    report.violations.append(Violation(
                        "message-causality",
                        f"sequence {event.sequence} delivered twice",
                        window=event.window))
                delivered.add(event.sequence)


__all__ = ["INVARIANTS", "Violation", "VerificationReport",
           "InvariantChecker"]
