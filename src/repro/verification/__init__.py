"""Independent verification of the reproduction's trace-level claims.

The paper's guarantees — agreement and validity in every reachable
configuration, faults within the ``t`` budget, executions structured as
acceptable windows — are *trace* properties.  This package checks them as
such, independently of the engines' own summary bookkeeping:

* :mod:`repro.verification.invariants` — the
  :class:`~repro.verification.invariants.InvariantChecker` re-derives
  agreement, validity, decision stability, window acceptability, the
  fault and reset budgets and message causality from a recorded
  :class:`~repro.simulation.trace.ExecutionTrace`.
* :mod:`repro.verification.fuzzer` — seed-deterministic fuzz campaigns
  driving the :class:`~repro.adversaries.fuzzing.ScheduleFuzzer` /
  :class:`~repro.adversaries.fuzzing.StepFuzzer` adversaries through the
  parallel runner, with results persisted (and resumed) through the
  results store.  The CLI front end is ``python -m repro fuzz``.
* :mod:`repro.verification.shrink` — greedy delta-debugging minimization
  of violating schedules into short counterexample artifacts.
* :mod:`repro.verification.differential` — compiles window-engine
  executions into step schedules and replays them on the step engine,
  asserting both engines realise the same model.
* :mod:`repro.verification.batched_diff` — replays sampled trials of
  every batched-backend run through the per-trial oracle and asserts
  bit-identical :class:`~repro.simulation.trace.ExecutionResult`\\ s.
"""

from repro.verification.batched_diff import (DiffMismatch, DiffReport,
                                             diff_experiment_cells,
                                             diff_specs)
from repro.verification.differential import (DifferentialReport,
                                             differential_replay,
                                             replay_trace_on_step_engine)
from repro.verification.fuzzer import (COUNTEREXAMPLE_DIR, FUZZ_EXPERIMENT,
                                       FuzzReport, fuzz_trial_spec,
                                       minimize_finding,
                                       resolve_fuzz_params,
                                       run_fuzz_campaign)
from repro.verification.invariants import (INVARIANTS, InvariantChecker,
                                           VerificationReport, Violation)
from repro.verification.shrink import (ReplaySetup, ScheduleReplayAdversary,
                                       ShrinkResult, load_counterexample,
                                       parse_schedule_artifact,
                                       replay_schedule, save_counterexample,
                                       schedule_from_jsonable,
                                       schedule_to_jsonable,
                                       shrink_schedule)

__all__ = [
    "INVARIANTS",
    "InvariantChecker",
    "VerificationReport",
    "Violation",
    "FUZZ_EXPERIMENT",
    "COUNTEREXAMPLE_DIR",
    "FuzzReport",
    "fuzz_trial_spec",
    "resolve_fuzz_params",
    "run_fuzz_campaign",
    "minimize_finding",
    "ReplaySetup",
    "ScheduleReplayAdversary",
    "ShrinkResult",
    "replay_schedule",
    "shrink_schedule",
    "schedule_to_jsonable",
    "schedule_from_jsonable",
    "save_counterexample",
    "parse_schedule_artifact",
    "load_counterexample",
    "DifferentialReport",
    "differential_replay",
    "replay_trace_on_step_engine",
    "DiffMismatch",
    "DiffReport",
    "diff_specs",
    "diff_experiment_cells",
]
