"""Fuzz campaigns: seed-deterministic adversarial schedule fuzzing at scale.

A *campaign* is ``trials`` independent executions of one protocol, each
under a freshly seeded schedule fuzzer
(:class:`~repro.adversaries.fuzzing.ScheduleFuzzer` on the window engine,
:class:`~repro.adversaries.fuzzing.StepFuzzer` on the step engine), each
recording a full trace, each trace re-checked by the independent
:class:`~repro.verification.invariants.InvariantChecker`.  Trials fan out
through :mod:`repro.runner` exactly like experiment cells, so worker count
affects wall-clock time only — ``repro fuzz --trials 200 --seed 0`` yields
bit-identical findings at ``--workers 0``, ``1`` and ``4``.

Campaigns persist through :class:`repro.results.RunStore` under the
pseudo-experiment name ``"fuzz"``: one row per trial, streamed as trials
finish, so an interrupted campaign resumes where it stopped.  Violating
trials are (optionally) minimized by :mod:`repro.verification.shrink` and
written as self-contained counterexample JSON artifacts under
``<run_dir>/counterexamples/``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.adversaries.fuzzing import ScheduleFuzzer, StepFuzzer
from repro.protocols.registry import get_protocol
from repro.results.store import RunStore
from repro.runner import (STEP_ENGINE, WINDOW_ENGINE, TrialSpec, derive_seed,
                          iter_trials)
from repro.simulation.trace import ExecutionResult
from repro.verification.invariants import InvariantChecker
from repro.verification.shrink import (ReplaySetup, save_counterexample,
                                       shrink_schedule)

FUZZ_EXPERIMENT = "fuzz"
"""Results-store experiment name fuzz campaigns are filed under."""

COUNTEREXAMPLE_DIR = "counterexamples"
"""Subdirectory of a fuzz run holding minimized schedule artifacts."""

ROW_SCHEMA: Tuple[str, ...] = (
    "trial", "protocol", "engine", "n", "t", "inputs", "engine_seed",
    "windows", "steps", "decided", "total_resets", "ok", "violations",
    "minimized_windows", "counterexample")
"""Column set of every fuzz-campaign row."""


def resolve_fuzz_params(protocol: str = "reset-tolerant",
                        trials: int = 100, seed: int = 0,
                        n: Optional[int] = None, t: Optional[int] = None,
                        max_windows: int = 60, max_steps: int = 6000,
                        engine: str = "auto") -> Dict[str, Any]:
    """Fill in campaign defaults, returning the canonical parameter dict.

    The dict is what the results store digests, so two invocations with
    the same resolved parameters share one run directory (and resume).

    The engine default follows the fault model: Byzantine protocols fuzz
    on the step engine (per-message corruption needs step granularity),
    everything else on the acceptable-window engine.  The fault placements
    follow the model too — resets for the strongly adaptive model, crashes
    for the crash model, equivocation for the Byzantine model.
    """
    info = get_protocol(protocol)
    if engine == "auto":
        engine = (STEP_ENGINE if "byzantine" in info.fault_model.lower()
                  else WINDOW_ENGINE)
    if engine not in (WINDOW_ENGINE, STEP_ENGINE):
        raise ValueError(f"engine must be 'auto', {WINDOW_ENGINE!r} or "
                         f"{STEP_ENGINE!r}, got {engine!r}")
    if n is None:
        n = 9 if engine == WINDOW_ENGINE else 7
    if n <= 1:
        raise ValueError(f"n must be at least 2, got {n}")
    if t is None:
        t = info.max_faults(n)
    if t <= 0:
        raise ValueError(
            f"protocol {protocol!r} tolerates no faults at n={n}; "
            f"choose a larger n")
    if t >= n:
        raise ValueError(f"fault bound t={t} must satisfy t < n={n}")
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    return {"protocol": protocol, "engine": engine, "n": n, "t": t,
            "trials": trials, "seed": seed, "max_windows": max_windows,
            "max_steps": max_steps}


def fuzz_trial_spec(params: Dict[str, Any], index: int) -> TrialSpec:
    """The (deterministic) specification of one campaign trial.

    Every draw comes from a per-trial stream seeded by
    :func:`repro.runner.derive_seed`, in a fixed order (inputs, adversary
    seed, engine seed), so trial ``index`` of a campaign is the same
    execution no matter which worker runs it, whether the campaign was
    resumed, or whether other trials were skipped.
    """
    rng = random.Random(derive_seed(params["seed"], index))
    n, t = params["n"], params["t"]
    inputs = tuple(rng.getrandbits(1) for _ in range(n))
    adversary_seed = rng.getrandbits(32)
    engine_seed = rng.getrandbits(32)
    if params["engine"] == WINDOW_ENGINE:
        crash_model = \
            "crash" in get_protocol(params["protocol"]).fault_model.lower()
        adversary_kwargs: Dict[str, Any] = {
            "seed": adversary_seed,
            # Fault placements follow the model under test: resets are the
            # strongly adaptive adversary's weapon, crashes the classical
            # crash adversary's.
            "reset_probability": 0.0 if crash_model else 0.35,
            "crash_probability": 0.25 if crash_model else 0.0,
        }
        return TrialSpec(
            protocol=params["protocol"], adversary="schedule-fuzzer",
            n=n, t=t, inputs=inputs, seed=engine_seed,
            adversary_kwargs=adversary_kwargs,
            max_windows=params["max_windows"], stop_when="all",
            record_trace=True, tag=(FUZZ_EXPERIMENT, index))
    corrupted = tuple(range(t))
    return TrialSpec(
        protocol=params["protocol"], adversary="step-fuzzer",
        n=n, t=t, inputs=inputs, seed=engine_seed,
        adversary_kwargs={"seed": adversary_seed, "corrupted": corrupted,
                          "strategy": "equivocate"},
        engine=STEP_ENGINE, max_steps=params["max_steps"], stop_when="all",
        record_trace=True, tag=(FUZZ_EXPERIMENT, index))


def _trial_checker(params: Dict[str, Any],
                   spec: TrialSpec) -> InvariantChecker:
    corrupted = spec.adversary_kwargs.get("corrupted", ())
    return InvariantChecker(corrupted=corrupted)


def _trial_row(params: Dict[str, Any], index: int, spec: TrialSpec,
               result: ExecutionResult) -> Dict[str, Any]:
    report = _trial_checker(params, spec).check_result(result)
    return {
        "trial": index,
        "protocol": params["protocol"],
        "engine": params["engine"],
        "n": params["n"],
        "t": params["t"],
        "inputs": "".join(str(bit) for bit in spec.inputs),
        "engine_seed": spec.seed,
        "windows": result.windows_elapsed,
        "steps": result.steps_elapsed,
        "decided": result.decided,
        "total_resets": result.total_resets,
        "ok": report.ok,
        "violations": report.summary(),
        "minimized_windows": None,
        "counterexample": None,
    }


@dataclass
class FuzzReport:
    """The outcome of one fuzz campaign.

    Attributes:
        params: the resolved campaign parameters.
        rows: one row dict per trial, in trial order.
        run_dir: the results-store directory (``None`` for unstored runs).
        computed_trials: trials actually executed this run (the rest came
            cached from the store).
        minimized_trials: findings minimized this run.
        failed_trials: trials that produced no row because execution kept
            failing through every recovery rung (recorded in the run's
            health ledger; a resumed campaign retries them).
    """

    params: Dict[str, Any]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    run_dir: Optional[str] = None
    computed_trials: int = 0
    minimized_trials: int = 0
    failed_trials: int = 0

    @property
    def findings(self) -> List[Dict[str, Any]]:
        """The violating rows only."""
        return [row for row in self.rows if not row["ok"]]

    @property
    def clean(self) -> bool:
        """Whether every trial satisfied every invariant."""
        return not self.findings


def minimize_finding(params: Dict[str, Any], index: int,
                     artifact_path: Optional[str] = None
                     ) -> Tuple[int, List[str]]:
    """Re-run one violating trial, shrink its schedule, save the artifact.

    Works from the trial index alone (specs are derivable), so resumed
    campaigns can minimize findings whose executions happened in an
    earlier process.  Only window-engine trials carry a replayable window
    schedule; step-engine findings are reported unminimized.

    Returns:
        ``(minimized_window_count, violations)``.
    """
    if params["engine"] != WINDOW_ENGINE:
        raise ValueError("only window-engine findings can be minimized")
    from repro.runner import execute_trial

    spec = fuzz_trial_spec(params, index)
    result = execute_trial(spec)
    assert result.trace is not None
    setup = ReplaySetup(protocol=spec.protocol, n=spec.n, t=spec.t,
                        inputs=spec.inputs, seed=spec.seed,
                        protocol_kwargs=dict(spec.protocol_kwargs))
    shrunk = shrink_schedule(setup, result.trace.windows,
                             checker=_trial_checker(params, spec))
    if artifact_path is not None:
        save_counterexample(artifact_path, setup, shrunk.schedule,
                            shrunk.violations)
    return len(shrunk.schedule), shrunk.violations


def run_fuzz_campaign(params: Dict[str, Any],
                      workers: Optional[int] = None,
                      store: Optional[RunStore] = None,
                      minimize: bool = False,
                      policy: Optional[Any] = None,
                      health: Optional[Any] = None,
                      backend: Optional[str] = None,
                      telemetry: Optional[Any] = None) -> FuzzReport:
    """Run (or resume) a fuzz campaign.

    Args:
        params: resolved parameters from :func:`resolve_fuzz_params`.
        workers: worker processes for the trial fan-out (0 = serial).
        store: an open results store; trials whose rows it already holds
            are skipped, exactly like experiment cells.
        minimize: shrink every violating window-engine trial and persist
            the minimized schedule as a counterexample artifact (requires
            a store for the artifact files; unstored campaigns record the
            minimized size only).
        policy: execution policy for the supervising executor (retries,
            watchdog, chaos); default: retries on, no watchdog, no chaos.
        health: the run-health ledger recovery actions are recorded into.
        backend: execution backend (``trial`` / ``batched`` / ``auto``);
            ``batched`` vectorizes supported fuzz trials, with
            bit-identical results by contract.
        telemetry: an optional :class:`~repro.telemetry.Telemetry`
            recorder threaded through the trial fan-out; rows are
            bit-identical with or without it.
    """
    import os

    from repro.experiments.base import cell_key_id
    from repro.runner.health import RunHealth, TrialFailure
    from repro.runner.supervisor import ExecutionPolicy

    if policy is None:
        policy = ExecutionPolicy()
    if health is None:
        health = RunHealth()
    specs = {index: fuzz_trial_spec(params, index)
             for index in range(params["trials"])}
    completed: Dict[str, Dict[str, Any]] = \
        store.completed_rows() if store is not None else {}
    pending = [index for index in range(params["trials"])
               if cell_key_id((FUZZ_EXPERIMENT, index)) not in completed]
    if telemetry is not None:
        telemetry.gauge("trials_total", len(pending))
    stream = iter_trials([specs[index] for index in pending],
                         workers=workers, policy=policy, health=health,
                         backend=backend, telemetry=telemetry)
    fresh: Dict[int, Dict[str, Any]] = {}
    failed = 0
    for index in pending:
        result = next(stream)
        if isinstance(result, TrialFailure):
            # Recorded in the health ledger; the trial stays unwritten so
            # a resumed campaign retries it.
            failed += 1
            continue
        row = _trial_row(params, index, specs[index], result)
        fresh[index] = row
        if store is not None:
            # Stream rows as trials finish, so a killed campaign resumes.
            store.write_row(index, (FUZZ_EXPERIMENT, index), row)
    if store is not None:
        store.record_health(health)
    rows: List[Dict[str, Any]] = []
    for index in range(params["trials"]):
        stored = completed.get(cell_key_id((FUZZ_EXPERIMENT, index)))
        row = fresh.get(index) if stored is None else stored
        if row is not None:
            rows.append(row)
    report = FuzzReport(params=params, rows=rows,
                        run_dir=store.path if store is not None else None,
                        computed_trials=len(pending) - failed,
                        failed_trials=failed)
    if minimize and params["engine"] == WINDOW_ENGINE:
        for row in report.findings:
            if row.get("minimized_windows") is not None:
                continue  # already minimized in a previous (resumed) run
            report.minimized_trials += 1
            artifact: Optional[str] = None
            if store is not None:
                artifact = os.path.join(
                    store.path, COUNTEREXAMPLE_DIR,
                    f"trial-{row['trial']}.json")
            minimized, _ = minimize_finding(params, row["trial"], artifact)
            row["minimized_windows"] = minimized
            if artifact is not None:
                row["counterexample"] = os.path.join(
                    COUNTEREXAMPLE_DIR, f"trial-{row['trial']}.json")
            if store is not None:
                # Rewriting the row appends a fresh line; the loader keeps
                # the last record per key, so the minimized row wins.
                store.write_row(row["trial"],
                                (FUZZ_EXPERIMENT, row["trial"]), row)
    return report


__all__ = [
    "FUZZ_EXPERIMENT",
    "COUNTEREXAMPLE_DIR",
    "ROW_SCHEMA",
    "ScheduleFuzzer",
    "StepFuzzer",
    "resolve_fuzz_params",
    "fuzz_trial_spec",
    "FuzzReport",
    "run_fuzz_campaign",
    "minimize_finding",
]
