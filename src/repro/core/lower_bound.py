"""Executable machinery behind the Theorem 5 lower bound.

The lower bound's proof has four moving parts:

1. the base decision sets ``Z_0^0`` and ``Z_1^0`` (reachable configurations
   in which some processor has decided 0, respectively 1) are Hamming-
   separated by more than ``t`` (Lemma 11);
2. Talagrand's inequality turns that separation into an upper bound on the
   probability that the product distribution induced by one acceptable
   window lands in a decision set (Lemma 9 / Lemma 13);
3. given a configuration outside ``Z_0^k ∪ Z_1^k``, interpolating between a
   window that avoids ``Z_0^{k-1}`` and one that avoids ``Z_1^{k-1}`` yields
   a single window avoiding both with high probability (Lemma 14);
4. iterating the argument for ``E = C e^{alpha n}`` windows, starting from
   an input assignment found by interpolating between the all-0 and all-1
   inputs, keeps the execution undecided with probability at least 1/2.

The sets ``Z_b^k`` for ``k >= 1`` are defined by universal quantification
over windows and cannot be enumerated, but every quantitative ingredient
above can be *measured* on concrete algorithms at small ``n``:  this module
provides Monte-Carlo samplers of reachable decision configurations, the
Hamming-separation measurement, window-outcome probability estimators, the
Lemma 14 hybrid-window sweep, and the input-interpolation search.  The E3
experiment uses these to check each ingredient numerically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.adversaries.benign import (BenignAdversary,
                                      RandomSchedulerAdversary)
from repro.adversaries.interpolation import interpolate_windows
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.talagrand import separation_threshold
from repro.protocols.base import ProtocolFactory
from repro.simulation.configuration import Configuration, set_distance
from repro.simulation.windows import WindowAdversary, WindowEngine, WindowSpec


# ----------------------------------------------------------------------
# Sampling reachable decision configurations (empirical Z_0^0 and Z_1^0).
# ----------------------------------------------------------------------
def sample_decision_configurations(
        protocol_cls, n: int, t: int, trials: int,
        seed: Optional[int] = None, max_windows: int = 64,
        **protocol_kwargs) -> Tuple[List[Configuration], List[Configuration]]:
    """Sample reachable configurations with a 0-decision and a 1-decision.

    Executions are run from a mix of input assignments (unanimous and
    random) under benign and random schedulers — all legal strongly adaptive
    schedules — and every recorded configuration containing a decision is
    binned by the decided value.

    Returns:
        ``(zero_configurations, one_configurations)`` — empirical samples of
        the paper's sets ``Z_0^0`` and ``Z_1^0``.
    """
    rng = random.Random(seed)
    zeros: List[Configuration] = []
    ones: List[Configuration] = []
    for trial in range(trials):
        choice = trial % 4
        if choice == 0:
            inputs = [0] * n
        elif choice == 1:
            inputs = [1] * n
        else:
            inputs = [rng.getrandbits(1) for _ in range(n)]
        adversary: WindowAdversary
        if trial % 2 == 0:
            adversary = BenignAdversary()
        else:
            adversary = RandomSchedulerAdversary(seed=rng.getrandbits(32))
        factory = ProtocolFactory(protocol_cls, n=n, t=t, **protocol_kwargs)
        engine = WindowEngine(factory, inputs, seed=rng.getrandbits(32),
                              record_configurations=True)
        engine.run(adversary, max_windows=max_windows, stop_when="all")
        for configuration in engine.configurations:
            if configuration.has_decision(0):
                zeros.append(configuration)
            if configuration.has_decision(1):
                ones.append(configuration)
    return zeros, ones


@dataclass
class SeparationReport:
    """Measured Hamming separation of the empirical decision sets.

    Attributes:
        n: number of processors.
        t: fault bound.
        zero_samples: how many 0-decision configurations were sampled.
        one_samples: how many 1-decision configurations were sampled.
        min_distance: smallest Hamming distance observed between a
            0-decision and a 1-decision configuration (``None`` when either
            sample is empty).
        required: the separation Lemma 11 asserts (strictly more than ``t``).
        satisfied: whether the measured separation exceeds ``t``.
    """

    n: int
    t: int
    zero_samples: int
    one_samples: int
    min_distance: Optional[int]
    required: int
    satisfied: bool


def decision_set_separation(protocol_cls, n: int, t: int, trials: int,
                            seed: Optional[int] = None,
                            **protocol_kwargs) -> SeparationReport:
    """Measure the Lemma 11 separation ``Delta(Z_0^0, Z_1^0) > t`` empirically."""
    zeros, ones = sample_decision_configurations(
        protocol_cls, n=n, t=t, trials=trials, seed=seed, **protocol_kwargs)
    distance = set_distance(zeros, ones)
    satisfied = distance is None or distance > t
    return SeparationReport(n=n, t=t, zero_samples=len(zeros),
                            one_samples=len(ones), min_distance=distance,
                            required=t + 1, satisfied=satisfied)


# ----------------------------------------------------------------------
# Window-outcome probability estimation.
# ----------------------------------------------------------------------
def estimate_window_outcome(engine: WindowEngine, spec: WindowSpec,
                            predicate: Callable[[WindowEngine], bool],
                            samples: int, horizon: int = 0,
                            seed: Optional[int] = None,
                            continuation: Optional[Callable[[], WindowAdversary]] = None
                            ) -> float:
    """Estimate the probability that applying ``spec`` satisfies ``predicate``.

    The engine is cloned and reseeded for every sample (fresh local
    randomness), the window is applied, and optionally ``horizon`` further
    windows are played by a continuation adversary before the predicate is
    evaluated.  This is the Monte-Carlo stand-in for "the product
    distribution induced by applying ``R, S_1, ..., S_n``" in Lemmas 13-14.
    """
    rng = random.Random(seed)
    hits = 0
    for _ in range(samples):
        clone = engine.clone()
        clone.reseed(rng.getrandbits(64))
        clone.run_window(spec)
        if horizon > 0:
            adversary = (continuation() if continuation is not None
                         else SplitVoteAdversary(seed=rng.getrandbits(32)))
            for _ in range(horizon):
                if clone.any_decided():
                    break
                clone.run_window(adversary.next_window(clone))
        if predicate(clone):
            hits += 1
    return hits / samples


def estimate_decision_probability(engine: WindowEngine, spec: WindowSpec,
                                  value: Optional[int], samples: int,
                                  horizon: int = 0,
                                  seed: Optional[int] = None) -> float:
    """Probability that applying ``spec`` (plus a horizon) yields a decision.

    Args:
        value: the decision value of interest, or ``None`` for "any value".
    """
    if value is None:
        predicate = lambda eng: eng.any_decided()
    else:
        predicate = lambda eng: value in {output for output in eng.outputs()
                                          if output is not None}
    return estimate_window_outcome(engine, spec, predicate, samples=samples,
                                   horizon=horizon, seed=seed)


# ----------------------------------------------------------------------
# Lemma 14: the hybrid-window sweep.
# ----------------------------------------------------------------------
@dataclass
class HybridPoint:
    """Estimated decision probabilities for one interpolation index ``j``.

    Attributes:
        j: the interpolation index (the first ``j`` coordinates follow the
            zero-avoiding window, the rest the one-avoiding window).
        zero_probability: estimated probability of reaching a 0-decision.
        one_probability: estimated probability of reaching a 1-decision.
    """

    j: int
    zero_probability: float
    one_probability: float

    @property
    def worst(self) -> float:
        """The larger of the two probabilities (what Lemma 14 minimises)."""
        return max(self.zero_probability, self.one_probability)


def hybrid_window_sweep(engine: WindowEngine, spec_zero_avoider: WindowSpec,
                        spec_one_avoider: WindowSpec, samples: int,
                        horizon: int = 1, seed: Optional[int] = None,
                        points: Optional[Sequence[int]] = None
                        ) -> List[HybridPoint]:
    """Evaluate the Lemma 14 hybrids between two candidate windows.

    Lemma 14 argues that between a window avoiding ``Z_1^{k-1}`` and one
    avoiding ``Z_0^{k-1}`` there is an interpolation index ``j*`` whose
    hybrid window avoids *both* with probability ``1 - 2 eta``.  This sweep
    measures the decision probabilities of each hybrid so the experiment can
    exhibit such a ``j*`` concretely.
    """
    n = engine.n
    if points is None:
        points = list(range(0, n + 1))
    rng = random.Random(seed)
    sweep: List[HybridPoint] = []
    for j in points:
        hybrid = interpolate_windows(spec_zero_avoider, spec_one_avoider, j,
                                     max_resets=engine.t)
        zero_probability = estimate_decision_probability(
            engine, hybrid, value=0, samples=samples, horizon=horizon,
            seed=rng.getrandbits(32))
        one_probability = estimate_decision_probability(
            engine, hybrid, value=1, samples=samples, horizon=horizon,
            seed=rng.getrandbits(32))
        sweep.append(HybridPoint(j=j, zero_probability=zero_probability,
                                 one_probability=one_probability))
    return sweep


def best_hybrid(sweep: Sequence[HybridPoint]) -> HybridPoint:
    """The interpolation point minimising the worst decision probability."""
    if not sweep:
        raise ValueError("empty hybrid sweep")
    return min(sweep, key=lambda point: point.worst)


# ----------------------------------------------------------------------
# Input interpolation (the start of the Theorem 5 proof).
# ----------------------------------------------------------------------
@dataclass
class InputInterpolationResult:
    """Outcome of the all-0 to all-1 input interpolation.

    Attributes:
        inputs: the chosen input assignment ``delta``.
        zero_probability: estimated probability of a quick 0-decision under
            the blocking adversary.
        one_probability: estimated probability of a quick 1-decision.
        sweep: per-interpolation-step probabilities, indexed by the number
            of processors whose input is 1.
    """

    inputs: Tuple[int, ...]
    zero_probability: float
    one_probability: float
    sweep: List[Tuple[int, float, float]]


def find_balanced_inputs(protocol_cls, n: int, t: int, samples: int = 8,
                         horizon: int = 3, seed: Optional[int] = None,
                         **protocol_kwargs) -> InputInterpolationResult:
    """Interpolate between the all-0 and all-1 inputs as in Theorem 5.

    The all-0 input cannot lie in ``Z_1^E`` (validity) and the all-1 input
    cannot lie in ``Z_0^E``; flipping one input bit at a time must therefore
    cross an assignment outside both.  Empirically we estimate, for each
    prefix-of-ones assignment, the probability that the split-vote adversary
    fails to prevent a 0-decision (respectively 1-decision) within a short
    horizon, and return the assignment minimising the worse of the two.
    """
    rng = random.Random(seed)
    sweep: List[Tuple[int, float, float]] = []
    best_inputs: Optional[Tuple[int, ...]] = None
    best_worst = float("inf")
    best_zero = best_one = 0.0
    for ones_count in range(n + 1):
        inputs = tuple([1] * ones_count + [0] * (n - ones_count))
        zero_hits = 0
        one_hits = 0
        for _ in range(samples):
            factory = ProtocolFactory(protocol_cls, n=n, t=t,
                                      **protocol_kwargs)
            engine = WindowEngine(factory, list(inputs),
                                  seed=rng.getrandbits(32))
            adversary = SplitVoteAdversary(seed=rng.getrandbits(32))
            engine.run(adversary, max_windows=horizon, stop_when="first")
            decided_values = {output for output in engine.outputs()
                              if output is not None}
            if 0 in decided_values:
                zero_hits += 1
            if 1 in decided_values:
                one_hits += 1
        zero_probability = zero_hits / samples
        one_probability = one_hits / samples
        sweep.append((ones_count, zero_probability, one_probability))
        worst = max(zero_probability, one_probability)
        if worst < best_worst:
            best_worst = worst
            best_inputs = inputs
            best_zero, best_one = zero_probability, one_probability
    assert best_inputs is not None
    return InputInterpolationResult(inputs=best_inputs,
                                    zero_probability=best_zero,
                                    one_probability=best_one, sweep=sweep)


# ----------------------------------------------------------------------
# Putting the pieces together: a one-call lower-bound verification report.
# ----------------------------------------------------------------------
@dataclass
class LowerBoundReport:
    """Summary of the E3 lower-bound machinery checks for one (n, t).

    Attributes:
        n, t: system size and fault bound.
        separation: the Lemma 11 separation measurement.
        tau: the Lemma 13 threshold ``exp(-t^2/8n)``.
        hybrid_best: the best Lemma 14 hybrid point found.
        endpoint_worst: the worse of the two endpoint windows' worst-case
            decision probabilities, for comparison with the hybrid.
        balanced_inputs: the Theorem 5 input assignment found by
            interpolation.
    """

    n: int
    t: int
    separation: SeparationReport
    tau: float
    hybrid_best: HybridPoint
    endpoint_worst: float
    balanced_inputs: InputInterpolationResult


def lower_bound_report(protocol_cls, n: int, t: int,
                       separation_trials: int = 12, samples: int = 8,
                       seed: Optional[int] = None,
                       **protocol_kwargs) -> LowerBoundReport:
    """Run every lower-bound machinery check at small ``n`` (experiment E3)."""
    rng = random.Random(seed)
    separation = decision_set_separation(
        protocol_cls, n=n, t=t, trials=separation_trials,
        seed=rng.getrandbits(32), **protocol_kwargs)
    balanced = find_balanced_inputs(protocol_cls, n=n, t=t, samples=samples,
                                    seed=rng.getrandbits(32),
                                    **protocol_kwargs)
    factory = ProtocolFactory(protocol_cls, n=n, t=t, **protocol_kwargs)
    engine = WindowEngine(factory, list(balanced.inputs),
                          seed=rng.getrandbits(32))
    # Endpoint windows: silence-and-reset the first t (good at protecting
    # the suffix's view) versus the last t processors, as in Lemma 13.
    first = frozenset(range(t)) if t > 0 else frozenset()
    last = frozenset(range(n - t, n)) if t > 0 else frozenset()
    everyone = frozenset(range(n))
    spec_a = WindowSpec.uniform(n, everyone - first, resets=first)
    spec_b = WindowSpec.uniform(n, everyone - last, resets=last)
    sweep = hybrid_window_sweep(engine, spec_a, spec_b, samples=samples,
                                seed=rng.getrandbits(32),
                                points=list(range(0, n + 1,
                                                  max(1, n // 8))))
    best = best_hybrid(sweep)
    endpoints = [point for point in sweep if point.j in (0, n)]
    endpoint_worst = max((point.worst for point in endpoints), default=1.0)
    return LowerBoundReport(n=n, t=t, separation=separation,
                            tau=separation_threshold(n, t),
                            hybrid_best=best, endpoint_worst=endpoint_worst,
                            balanced_inputs=balanced)


__all__ = [
    "sample_decision_configurations",
    "SeparationReport",
    "decision_set_separation",
    "estimate_window_outcome",
    "estimate_decision_probability",
    "HybridPoint",
    "hybrid_window_sweep",
    "best_hybrid",
    "InputInterpolationResult",
    "find_balanced_inputs",
    "LowerBoundReport",
    "lower_bound_report",
]
