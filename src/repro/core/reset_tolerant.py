"""The paper's reset-tolerant randomized agreement algorithm (Section 3).

This is the Ben-Or/Bracha-style threshold-voting protocol that Theorem 4
proves correct (measure-one correctness and termination) against the strongly
adaptive adversary for ``t < n/6``, with thresholds satisfying
``n - 2t >= T1 >= T2 >= T3 + t`` and ``2*T3 > n``.

Per round ``r`` a processor:

1. sends ``(r, x)`` to all processors, where ``x`` is its current estimate;
2. waits until ``T1`` messages ``(r_q, x_q)`` with ``r_q = r`` have arrived;
3. if at least ``T2`` of them carry the same value ``v`` it writes ``v`` to
   its (write-once) output bit; if at least ``T3`` carry the same ``v`` it
   sets ``x = v``; otherwise it sets ``x`` to a freshly sampled random bit;
4. increments ``r`` and returns to step 1.

Reset handling: a processor that detects it has been reset (its memory is
blank but its reset counter is non-zero) refrains from sending and waits
until it has received ``T1`` messages sharing a common round number ``r``;
it then adopts that round and resumes at step 3.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.core.thresholds import ThresholdConfig, default_thresholds
from repro.protocols.base import Protocol
from repro.simulation.message import Message, broadcast

VOTE = "VOTE"
"""Message tag used by the reset-tolerant protocol."""


class ResetTolerantAgreement(Protocol):
    """The Section 3 algorithm, one instance per processor.

    The protocol is *forgetful* in spirit (each round's message depends only
    on the previous round's received votes) and *fully communicative* (it
    broadcasts to all processors whenever it has heard from enough of them),
    which is why the crash-failure lower bound of Section 5 also applies to
    it.

    Args:
        pid: processor identity.
        n: number of processors.
        t: resetting-fault bound per acceptable window.
        input_bit: the processor's input.
        rng: local randomness source.
        thresholds: optional explicit :class:`ThresholdConfig`; when omitted
            the Theorem 4 defaults (``T1 = T2 = n - 2t``, ``T3 = n - 3t``)
            are used.
        validate_thresholds: set False to allow deliberately invalid
            thresholds (used by the ablation experiment E7).
    """

    forgetful: ClassVar[bool] = True
    fully_communicative: ClassVar[bool] = True

    def __init__(self, pid: int, n: int, t: int, input_bit: int,
                 rng: Optional[random.Random] = None,
                 thresholds: Optional[ThresholdConfig] = None,
                 validate_thresholds: bool = True) -> None:
        super().__init__(pid=pid, n=n, t=t, input_bit=input_bit, rng=rng)
        if thresholds is None:
            thresholds = default_thresholds(n, t)
        elif validate_thresholds:
            thresholds.require_valid()
        self.thresholds = thresholds
        # Volatile state (erased by a reset).
        self.round: Optional[int] = 1
        self.estimate: Optional[int] = input_bit
        self._votes: Dict[int, Dict[int, int]] = defaultdict(dict)
        self._processed_rounds: set = set()
        self._resyncing = False

    # ------------------------------------------------------------------
    # Protocol hooks.
    # ------------------------------------------------------------------
    def _compose_messages(self) -> List[Message]:
        if self._resyncing or self.round is None or self.estimate is None:
            # A freshly reset processor refrains from sending until it has
            # resynchronised to the common round number.
            return []
        return broadcast(self.pid, self.n, (VOTE, self.round, self.estimate))

    def _handle_message(self, message: Message) -> None:
        payload = message.payload
        if not (isinstance(payload, tuple) and len(payload) == 3
                and payload[0] == VOTE):
            return
        _, vote_round, vote_value = payload
        if not isinstance(vote_round, int) or vote_value not in (0, 1):
            return
        if self._resyncing:
            self._handle_resync_vote(message.sender, vote_round, vote_value)
            return
        current_round = self.round
        assert current_round is not None
        if vote_round < current_round or vote_round in self._processed_rounds:
            return
        votes = self._votes[vote_round]
        votes[message.sender] = vote_value
        if vote_round == current_round and len(votes) >= self.thresholds.t1:
            self._finish_round(vote_round)

    def _on_reset(self) -> None:
        self.round = None
        self.estimate = None
        self._votes = defaultdict(dict)
        self._processed_rounds = set()
        self._resyncing = True

    # ------------------------------------------------------------------
    # Round logic.
    # ------------------------------------------------------------------
    def _finish_round(self, finished_round: int) -> None:
        """Step 3: evaluate the collected votes for ``finished_round``."""
        votes = self._votes[finished_round]
        # Votes are validated to be 0/1, so a sum tallies the ones; this
        # replaces a Counter allocation on the per-round hot path.
        ones = sum(votes.values())
        zeros = len(votes) - ones
        if zeros >= ones:
            majority_value, majority_count = 0, zeros
        else:
            majority_value, majority_count = 1, ones
        if majority_count >= self.thresholds.t2 and not self.decided:
            self.decide(majority_value)
        if majority_count >= self.thresholds.t3:
            self.estimate = majority_value
        else:
            self.estimate = self.coin_flip()
        self._processed_rounds.add(finished_round)
        del self._votes[finished_round]
        self.round = finished_round + 1
        # Votes buffered for the new round may already satisfy the
        # threshold (possible under very asynchronous schedules).
        if len(self._votes.get(self.round, {})) >= self.thresholds.t1:
            self._finish_round(self.round)

    def _handle_resync_vote(self, sender: int, vote_round: int,
                            vote_value: int) -> None:
        """Reset recovery: collect votes until some round has T1 of them."""
        self._votes[vote_round][sender] = vote_value
        if len(self._votes[vote_round]) >= self.thresholds.t1:
            self._resyncing = False
            self.round = vote_round
            self.estimate = None  # will be set by step 3 below
            self._finish_round(vote_round)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def current_estimate(self) -> Optional[int]:
        """The bit this processor will vote for in its next message."""
        return self.estimate

    def current_round(self) -> Optional[int]:
        """The protocol's internal round number (``None`` while resyncing)."""
        return self.round

    def waiting_threshold(self) -> Optional[int]:
        """The protocol acts on the first ``T1`` same-round votes."""
        return self.thresholds.t1

    def will_send(self) -> bool:
        """Reset processors stay silent until they have resynchronised."""
        return not self._resyncing and self.round is not None

    def volatile_state(self) -> Tuple:
        vote_view = tuple(sorted(
            (vote_round, sender, value)
            for vote_round, votes in self._votes.items()
            for sender, value in votes.items()))
        return (self.round, self.estimate, self._resyncing, vote_view)

    @classmethod
    def estimate_from_fingerprint(cls, fingerprint: Tuple) -> Optional[int]:
        # fingerprint = (input, output, reset_count, volatile_state());
        # the estimate is the second volatile field (see volatile_state).
        return fingerprint[3][1]


__all__ = ["ResetTolerantAgreement", "VOTE"]
