"""Closed-form running-time analysis of the reset-tolerant algorithm.

Section 3 of the paper argues that against an adversary that splits the
inputs evenly and then keeps showing every processor a near-even split of
votes, the threshold-voting algorithm takes exponential time: since
``T3 > n/2`` (and ``T2 > (1/2 + c) n``), a decision requires a strong
majority among what are essentially ``n`` independent fair coins, which
happens with exponentially small probability per round.

This module turns that argument into concrete numbers: the per-round
probability that the adversary can no longer keep every processor below the
thresholds, and the implied expected number of acceptable windows — the
analytic curve that the E2 experiment compares against simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from scipy import stats

from repro.core.thresholds import ThresholdConfig


def binomial_tail_at_least(n: int, k: int, p: float = 0.5) -> float:
    """``P[Binomial(n, p) >= k]`` (1.0 when ``k <= 0``, 0.0 when ``k > n``)."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    return float(stats.binom.sf(k - 1, n, p))


def probability_all_coins_agree(n: int) -> float:
    """Probability that ``n`` independent fair coins all land the same way.

    This is the ``2^{1-n}`` bound the termination proof of Theorem 4 uses:
    in every acceptable window there is at least this much probability that
    all processors adopt the same estimate, after which they decide.
    """
    return math.pow(2.0, 1 - n)


@dataclass(frozen=True)
class SplitVoteAnalysis:
    """Analytic round/window statistics against the split-vote adversary.

    Attributes:
        thresholds: the protocol's threshold configuration.
        escape_probability: per-window probability that the random estimates
            are so lopsided that the adversary (who can hide at most ``t``
            votes from each processor, and reset at most ``t`` more) cannot
            keep every processor below the adoption threshold ``T3``.
        expected_windows: geometric expectation ``1 / escape_probability``
            (plus the constant number of windows needed to finish once the
            adversary has lost control).
    """

    thresholds: ThresholdConfig
    escape_probability: float
    expected_windows: float


def split_vote_analysis(thresholds: ThresholdConfig) -> SplitVoteAnalysis:
    """Analytic expected-window count against the vote-splitting adversary.

    After a round in which no value reached ``T3``, every processor's next
    estimate is an independent fair coin.  Let ``K ~ Binomial(n, 1/2)`` be
    the number of ones among the next round's estimates.  The adversary can
    hide up to ``n - T1 >= 2t`` votes from each processor (and additionally
    reset up to ``t`` processors), so it can keep every processor below the
    adoption threshold as long as both ``K`` and ``n - K`` stay below
    ``T3 + (n - T1)``; once the coin flips produce a majority of at least
    ``T3 + (n - T1)`` the adversary can no longer prevent every processor
    from deterministically adopting that value, after which decisions follow
    within two further windows.  The per-window escape probability is
    therefore the binomial tail at ``T3 + (n - T1)``.
    """
    n = thresholds.n
    hideable = n - thresholds.t1
    needed = thresholds.t3 + hideable
    escape = binomial_tail_at_least(n, needed) * 2.0
    escape = min(escape, 1.0)
    if escape <= 0.0:
        expected = math.inf
    else:
        expected = 1.0 / escape + 2.0
    return SplitVoteAnalysis(thresholds=thresholds,
                             escape_probability=escape,
                             expected_windows=expected)


def expected_windows_curve(configs: List[ThresholdConfig]) -> List[float]:
    """Expected windows against the split-vote adversary across a sweep."""
    return [split_vote_analysis(config).expected_windows
            for config in configs]


def unanimous_decision_windows() -> int:
    """Windows needed to decide when inputs are unanimous.

    With unanimous inputs every processor receives ``>= T1 >= T2`` identical
    votes in the very first acceptable window and decides immediately —
    the contrast the paper draws with the exponential split-input case.
    """
    return 1


def exponential_growth_rate(thresholds_by_n: List[ThresholdConfig]) -> float:
    """Fitted exponential growth rate of the analytic expected-window curve.

    Returns the least-squares slope of ``log(expected windows)`` against
    ``n``; a positive slope confirms the analytic curve is exponential in
    ``n`` for a fixed fault fraction.
    """
    points = [(config.n, split_vote_analysis(config).expected_windows)
              for config in thresholds_by_n]
    points = [(n, windows) for n, windows in points
              if math.isfinite(windows) and windows > 0]
    if len(points) < 2:
        raise ValueError("need at least two finite points to fit a slope")
    xs = [float(n) for n, _ in points]
    ys = [math.log(windows) for _, windows in points]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    denominator = sum((x - mean_x) ** 2 for x in xs)
    return numerator / denominator


__all__ = [
    "binomial_tail_at_least",
    "probability_all_coins_agree",
    "SplitVoteAnalysis",
    "split_vote_analysis",
    "expected_windows_curve",
    "unanimous_decision_windows",
    "exponential_growth_rate",
]
