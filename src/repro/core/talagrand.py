"""Talagrand's inequality and the lower-bound constants of Theorems 5 and 17.

The paper's lower bound rests on one probabilistic fact (its Lemma 9, a
consequence of Talagrand's concentration inequality): for any product
measure on ``Omega = Omega_1 x ... x Omega_n``, any set ``A`` and any
``d >= 0``,

    ``P[A] * (1 - P[B(A, d)]) <= exp(-d^2 / (4n))``,

where ``B(A, d)`` is the Hamming ball of radius ``d`` around ``A``.  From
this the paper derives the separation threshold ``tau = exp(-t^2 / 8n)``
(Lemma 13), the interpolation threshold ``eta = exp(-(t-1)^2 / 8n)``
(Lemma 14), the exponent ``alpha = c^2 / 9`` and the window count
``E = C * exp(alpha * n)`` with ``C`` chosen so that
``C * exp(alpha n) <= (1/4) * exp((c n - 1)^2 / 8n)`` for every positive
integer ``n`` (Equation (3)), which yields an overall success probability of
at least ``1 - 2 E exp(-(c n - 1)^2 / 8n) >= 1/2`` for the adversary.

This module computes all of those quantities, so experiments can plot the
predicted lower-bound curves and numerically check each inequality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional


def talagrand_bound(d: float, n: int) -> float:
    """Right-hand side of Lemma 9: ``exp(-d^2 / (4n))``.

    Args:
        d: Hamming-distance radius.
        n: number of coordinates of the product space.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if d < 0:
        raise ValueError("d must be non-negative")
    return math.exp(-(d * d) / (4.0 * n))


def talagrand_violated(p_a: float, p_ball: float, d: float, n: int,
                       slack: float = 0.0) -> bool:
    """Check whether empirical probabilities violate Lemma 9.

    Args:
        p_a: measured probability of the set ``A``.
        p_ball: measured probability of the Hamming ball ``B(A, d)``.
        d: radius.
        n: dimension.
        slack: additive tolerance for Monte-Carlo noise.

    Returns:
        True if ``p_a * (1 - p_ball)`` exceeds the Talagrand bound by more
        than ``slack`` — which would indicate a bug (or sampling error), as
        the inequality is a theorem.
    """
    return p_a * (1.0 - p_ball) > talagrand_bound(d, n) + slack


def two_set_bound(d: float, n: int) -> float:
    """Maximum weight a product measure can put on each of two far sets.

    If ``A`` and ``B`` are at Hamming distance ``> d`` then no product
    measure can satisfy ``P[A] > tau`` and ``P[B] > tau`` for
    ``tau = exp(-d^2 / (8n))`` — this is the form in which the paper uses
    Lemma 9 inside Lemma 13.
    """
    return math.exp(-(d * d) / (8.0 * n))


def separation_threshold(n: int, t: int) -> float:
    """The threshold ``tau = exp(-t^2 / 8n)`` from Lemma 13."""
    return two_set_bound(float(t), n)


def interpolation_threshold(n: int, t: int) -> float:
    """The threshold ``eta = exp(-(t-1)^2 / 8n)`` from Lemma 14."""
    return two_set_bound(float(t - 1), n)


@dataclass(frozen=True)
class LowerBoundConstants:
    """The constants of Theorem 5 / Theorem 17 for a fault fraction ``c``.

    Attributes:
        c: the fault fraction (``t = c * n``).
        alpha: the exponent ``c^2 / 9``.
        big_c: the constant ``C`` of Equation (3), the largest value for
            which ``C * exp(alpha n) <= (1/4) exp((cn - 1)^2 / 8n)`` holds
            for every positive integer ``n``.
    """

    c: float
    alpha: float
    big_c: float

    def predicted_windows(self, n: int) -> float:
        """The lower-bound window count ``E = C * exp(alpha * n)``."""
        return self.big_c * math.exp(self.alpha * n)

    def failure_term(self, n: int) -> float:
        """Per-window failure probability ``2 * exp(-(cn - 1)^2 / 8n)``."""
        t = self.c * n
        return 2.0 * math.exp(-((t - 1.0) ** 2) / (8.0 * n))

    def success_probability(self, n: int) -> float:
        """Adversary success probability ``1 - 2 E exp(-(cn-1)^2 / 8n)``.

        Theorem 5 shows this is at least ``1/2`` for every ``n``.
        """
        return 1.0 - self.predicted_windows(n) * self.failure_term(n)


def lower_bound_constants(c: float, max_n: int = 4096) -> LowerBoundConstants:
    """Compute the Theorem 5 constants for fault fraction ``c``.

    ``alpha = c^2 / 9`` is explicit; ``C`` is computed as the infimum over
    positive integers ``n <= max_n`` of
    ``(1/4) * exp((cn - 1)^2 / (8n) - alpha * n)``.  Because
    ``(cn - 1)^2 / 8n - alpha n`` grows linearly in ``n`` (the coefficient
    is ``c^2/8 - c^2/9 > 0``), the infimum is attained at small ``n`` and
    ``max_n`` only needs to be moderately large.

    Args:
        c: fault fraction in (0, 1).
        max_n: range of ``n`` over which the infimum is evaluated.
    """
    if not 0 < c < 1:
        raise ValueError(f"fault fraction c must lie in (0, 1), got {c}")
    alpha = (c * c) / 9.0
    log_candidates = []
    for n in range(1, max_n + 1):
        exponent = ((c * n - 1.0) ** 2) / (8.0 * n) - alpha * n
        log_candidates.append(math.log(0.25) + exponent)
    big_c = math.exp(min(log_candidates))
    return LowerBoundConstants(c=c, alpha=alpha, big_c=big_c)


def predicted_lower_bound(n: int, c: float) -> float:
    """Convenience wrapper: the Theorem 5 window count for ``n`` and ``c``."""
    return lower_bound_constants(c).predicted_windows(n)


def lower_bound_curve(ns: List[int], c: float) -> List[float]:
    """The predicted window counts across a sweep of ``n`` values."""
    constants = lower_bound_constants(c)
    return [constants.predicted_windows(n) for n in ns]


def equation_3_satisfied(constants: LowerBoundConstants,
                         ns: Optional[List[int]] = None) -> bool:
    """Verify Equation (3) numerically over a range of ``n``.

    ``C e^{alpha n} <= (1/4) e^{(cn-1)^2 / 8n}`` must hold for all positive
    integers ``n``; this checks it over the supplied range (default 1..512).
    """
    if ns is None:
        ns = list(range(1, 513))
    for n in ns:
        lhs = math.log(constants.big_c) + constants.alpha * n
        rhs = math.log(0.25) + ((constants.c * n - 1.0) ** 2) / (8.0 * n)
        if lhs > rhs + 1e-9:
            return False
    return True


__all__ = [
    "talagrand_bound",
    "talagrand_violated",
    "two_set_bound",
    "separation_threshold",
    "interpolation_threshold",
    "LowerBoundConstants",
    "lower_bound_constants",
    "predicted_lower_bound",
    "lower_bound_curve",
    "equation_3_satisfied",
]
