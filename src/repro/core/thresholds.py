"""Threshold parameters for the paper's reset-tolerant agreement algorithm.

The Section 3 algorithm is parameterized by three thresholds
``T1 >= T2 >= T3``:

* a processor waits for ``T1`` same-round messages before acting;
* ``T2`` matching values let it *decide* (write the output bit);
* ``T3`` matching values let it *adopt* the value deterministically, and
  otherwise it flips a fresh coin.

Theorem 4 proves measure-one correctness and termination against the
strongly adaptive adversary for ``t < n/6`` whenever

    ``n - 2t >= T1 >= T2 >= T3 + t``   and   ``2*T3 > n``

(with the structural requirement ``2*T3 > T1`` so step 3 is well defined).
This module encapsulates those constraints, provides the default settings
used in the proof (``T1 = n - 2t``, ``T2 = T1``, ``T3 = n - 3t``), and
exposes the relaxed-``T2`` variants used by the threshold-ablation
experiment (E7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class ThresholdError(ValueError):
    """Raised when a threshold configuration violates Theorem 4's constraints."""


@dataclass(frozen=True)
class ThresholdConfig:
    """A concrete (T1, T2, T3) setting for given ``n`` and ``t``.

    Attributes:
        n: number of processors.
        t: resetting-fault bound per acceptable window.
        t1: number of same-round messages a processor waits for.
        t2: matching-value count required to decide.
        t3: matching-value count required to adopt deterministically.
    """

    n: int
    t: int
    t1: int
    t2: int
    t3: int

    # ------------------------------------------------------------------
    # Constraint checks.
    # ------------------------------------------------------------------
    def violations(self) -> List[str]:
        """Human-readable list of violated Theorem 4 constraints (empty if valid)."""
        problems = []
        if not (0 <= self.t < self.n):
            problems.append(f"need 0 <= t < n, got t={self.t}, n={self.n}")
        if not (self.n - 2 * self.t >= self.t1):
            problems.append(
                f"need n - 2t >= T1 ({self.n - 2 * self.t} >= {self.t1})")
        if not (self.t1 >= self.t2):
            problems.append(f"need T1 >= T2 ({self.t1} >= {self.t2})")
        if not (self.t2 >= self.t3 + self.t):
            problems.append(
                f"need T2 >= T3 + t ({self.t2} >= {self.t3 + self.t})")
        if not (2 * self.t3 > self.n):
            problems.append(f"need 2*T3 > n ({2 * self.t3} > {self.n})")
        if not (2 * self.t3 > self.t1):
            problems.append(f"need 2*T3 > T1 ({2 * self.t3} > {self.t1})")
        if self.t3 <= 0:
            problems.append(f"need T3 > 0, got {self.t3}")
        return problems

    @property
    def valid(self) -> bool:
        """Whether all Theorem 4 constraints hold."""
        return not self.violations()

    def require_valid(self) -> "ThresholdConfig":
        """Return ``self`` if valid, otherwise raise :class:`ThresholdError`."""
        problems = self.violations()
        if problems:
            raise ThresholdError("; ".join(problems))
        return self

    # ------------------------------------------------------------------
    # Derived quantities used by the analysis module.
    # ------------------------------------------------------------------
    @property
    def decision_margin(self) -> int:
        """How far above ``n/2`` the decide threshold sits.

        Decision requires ``T2`` identical values among ``T1`` delivered
        ones; the adversary-facing obstacle is getting ``T2`` identical
        values among ``n`` sent values when it may hide up to
        ``n - T1 >= 2t`` of them.
        """
        return self.t2 - (self.n // 2)

    def describe(self) -> str:
        """One-line description for logs and experiment tables."""
        return (f"ThresholdConfig(n={self.n}, t={self.t}, T1={self.t1}, "
                f"T2={self.t2}, T3={self.t3})")


def default_thresholds(n: int, t: int) -> ThresholdConfig:
    """The settings used in the proof of Theorem 4.

    ``T1 = n - 2t``, ``T2 = T1``, ``T3 = n - 3t``.  Valid whenever
    ``t < n/6`` (for very small ``n`` the integer constraints may still
    fail; callers should check :attr:`ThresholdConfig.valid`).
    """
    config = ThresholdConfig(n=n, t=t, t1=n - 2 * t, t2=n - 2 * t,
                             t3=n - 3 * t)
    return config.require_valid()


def fast_decide_thresholds(n: int, t: int) -> ThresholdConfig:
    """A variant with the smallest admissible ``T2``.

    The paper notes that a smaller ``t`` allows ``T2 < T1``, which improves
    running time (a decision needs a smaller majority) without affecting
    measure-one correctness and termination.  This returns the minimal
    ``T2 = T3 + t`` setting, used by the threshold ablation (E7).
    """
    t3 = n // 2 + 1
    t2 = t3 + t
    t1 = n - 2 * t
    config = ThresholdConfig(n=n, t=t, t1=t1, t2=t2, t3=t3)
    return config.require_valid()


def max_tolerable_t(n: int) -> int:
    """Largest ``t`` for which the default thresholds are valid.

    Theorem 4 requires ``t < n/6``; integrality can shave this slightly for
    small ``n``.  The function searches downward from ``ceil(n/6) - 1``.
    """
    candidate = (n - 1) // 6
    while candidate > 0:
        config = ThresholdConfig(n=n, t=candidate, t1=n - 2 * candidate,
                                 t2=n - 2 * candidate, t3=n - 3 * candidate)
        if config.valid:
            return candidate
        candidate -= 1
    return 0


def threshold_grid(n: int, t: int) -> List[ThresholdConfig]:
    """Enumerate candidate (T1, T2, T3) settings for the ablation experiment.

    Includes both valid configurations and selected invalid ones (violating
    exactly one constraint), so the ablation can show which constraint
    failures break correctness or termination.
    """
    configs = []
    base = ThresholdConfig(n=n, t=t, t1=n - 2 * t, t2=n - 2 * t, t3=n - 3 * t)
    configs.append(base)
    if n // 2 + 1 + t <= n - 2 * t:
        configs.append(ThresholdConfig(n=n, t=t, t1=n - 2 * t,
                                       t2=n // 2 + 1 + t, t3=n // 2 + 1))
    # Violates 2*T3 > n: the termination argument (no two processors can
    # deterministically adopt conflicting values) breaks.
    configs.append(ThresholdConfig(n=n, t=t, t1=n - 2 * t, t2=n - 2 * t,
                                   t3=n // 2 - t if n // 2 - t > 0 else 1))
    # Violates T2 >= T3 + t: a reset-straddling decision can be missed by
    # other processors, breaking the agreement argument.
    configs.append(ThresholdConfig(n=n, t=t, t1=n - 2 * t,
                                   t2=max(n - 3 * t, 1), t3=n - 3 * t))
    return configs


__all__ = [
    "ThresholdConfig",
    "ThresholdError",
    "default_thresholds",
    "fast_decide_thresholds",
    "max_tolerable_t",
    "threshold_grid",
]
