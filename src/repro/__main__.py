"""``python -m repro`` — the unified experiment CLI (see repro.cli)."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
