"""The deterministic fault injector behind chaos runs.

A :class:`ChaosConfig` describes a *fault pattern*: per-kind firing
probabilities plus one chaos seed.  Whether a given trial is faulted — and
with which fault — is a pure function of ``(chaos seed, trial spec)``:
the spec is fingerprinted (:func:`spec_fingerprint`), the fingerprint is
hashed together with the chaos seed, and the resulting stream drives one
draw against the cumulative kind probabilities.  No wall clock, no OS
entropy, no per-process state: the same config faults the same trials on
any worker count, after any resume, in any process — which is what makes
chaos runs replayable and lets the tests pin the keystone property
(surviving results bit-identical to a fault-free serial run).

Fault kinds:

* ``crash`` — the worker process dies via ``os._exit`` mid-chunk
  (``BrokenProcessPool`` in the supervisor).  Transient: fires on a
  trial's first attempt only.
* ``hang`` — the trial sleeps past the supervisor's watchdog window.
  Transient.
* ``raise`` — the trial raises :class:`InjectedFault` instead of
  executing.  Transient.
* ``poison`` — like ``raise`` but *persistent*: it fires on every
  attempt, modelling a deterministically failing trial.  The supervisor's
  serial quarantine converts it into a recorded failure row.
* ``torn`` — the results store writes a torn (truncated, unparseable)
  line into ``rows.jsonl`` immediately before the real record, modelling
  a kill mid-write.  The JSONL loader skips torn lines, so the row
  survives; fires once per cell key per store lifetime.

In worker scope the kinds manifest literally (``os._exit``, a real
sleep).  In the serial (``workers=0``) and quarantine scopes a process
suicide or a sleep would take the supervisor down with it, so ``crash``
and ``hang`` degrade to a raised :class:`InjectedFault` — recorded and
retried exactly like ``raise`` — which is the graceful-degradation
contract of the resilient execution layer.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Set

from repro.runner.spec import TrialSpec, execute_trial

CRASH = "crash"
HANG = "hang"
RAISE = "raise"
POISON = "poison"
TORN = "torn"

FAULT_KINDS = (CRASH, HANG, RAISE, POISON)
"""Trial-level fault kinds, in cumulative-draw order."""

WORKER_SCOPE = "worker"
SERIAL_SCOPE = "serial"
QUARANTINE_SCOPE = "quarantine"

CHAOS_ENV = "REPRO_CHAOS"
"""Environment variable the CLI reads as the default ``--chaos`` spec."""

_EXIT_CODE = 23
"""The injected worker-suicide exit code (recognisable in core dumps)."""


class InjectedFault(RuntimeError):
    """An exception raised (or degraded to) by the fault injector."""


@dataclass(frozen=True)
class ChaosConfig:
    """One replayable fault pattern: kind probabilities plus a seed.

    Attributes:
        seed: the chaos seed; together with a trial's fingerprint it
            fully determines whether (and how) the trial is faulted.
        crash: probability a trial kills its worker process.
        hang: probability a trial sleeps for ``hang_seconds``.
        raise_: probability a trial raises on its first attempt.
        poison: probability a trial raises on *every* attempt.
        torn: probability a cell's first row write is torn.
        hang_seconds: how long an injected hang sleeps.
    """

    seed: int = 0
    crash: float = 0.0
    hang: float = 0.0
    raise_: float = 0.0
    poison: float = 0.0
    torn: float = 0.0
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        for name in (CRASH, HANG, "raise_", POISON, TORN):
            probability = getattr(self, name)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"chaos {name.rstrip('_')} probability must be in "
                    f"[0, 1], got {probability}")
        total = self.crash + self.hang + self.raise_ + self.poison
        if total > 1.0:
            raise ValueError(
                f"chaos kind probabilities must sum to <= 1, got {total}")
        if self.hang_seconds <= 0:
            raise ValueError(
                f"hang_seconds must be positive, got {self.hang_seconds}")

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire under this config."""
        return any(getattr(self, name) > 0.0
                   for name in (CRASH, HANG, "raise_", POISON, TORN))

    def probability(self, kind: str) -> float:
        return getattr(self, "raise_" if kind == RAISE else kind)

    def to_spec(self) -> str:
        """The canonical ``--chaos`` spec string (parse round-trips)."""
        rendered = [f"seed={self.seed}"]
        for spec_field in fields(self):
            if spec_field.name == "seed":
                continue
            value = getattr(self, spec_field.name)
            if value != spec_field.default:
                key = spec_field.name.rstrip("_").replace("_", "-")
                rendered.append(f"{key}={value}")
        return ",".join(rendered)


_SPEC_KEYS = {
    "seed": "seed",
    "crash": "crash",
    "hang": "hang",
    "raise": "raise_",
    "poison": "poison",
    "torn": "torn",
    "hang-seconds": "hang_seconds",
    "hang_seconds": "hang_seconds",
}


def parse_chaos_spec(raw: Optional[str]) -> Optional[ChaosConfig]:
    """Parse a ``--chaos`` spec string into a :class:`ChaosConfig`.

    The grammar is ``key=value`` pairs separated by commas, e.g.
    ``crash=0.2,hang=0.1,raise=0.1,seed=7``.  Keys: the fault kinds
    (``crash``, ``hang``, ``raise``, ``poison``, ``torn``), ``seed``
    and ``hang-seconds``.  ``None``/empty input returns ``None``
    (chaos off).

    Raises:
        ValueError: on an unknown key, an unparseable value, or
            probabilities the config itself rejects.
    """
    if raw is None or not raw.strip():
        return None
    values: Dict[str, Any] = {}
    for token in raw.split(","):
        token = token.strip()
        if not token:
            continue
        key, separator, value = token.partition("=")
        key = key.strip().lower()
        if not separator or key not in _SPEC_KEYS:
            known = ", ".join(sorted(set(_SPEC_KEYS) - {"hang_seconds"}))
            raise ValueError(
                f"bad chaos token {token!r}; expected key=value with key "
                f"in: {known}")
        attribute = _SPEC_KEYS[key]
        try:
            parsed: Any = int(value) if attribute == "seed" \
                else float(value)
        except ValueError:
            raise ValueError(
                f"chaos {key} expects a number, got {value!r}") from None
        values[attribute] = parsed
    return ChaosConfig(**values)


def spec_fingerprint(spec: TrialSpec) -> str:
    """A stable, content-based identity of one trial spec.

    Built from the spec's plain-data fields via :func:`repr` (stable for
    ints, strings, tuples and plain containers) and hashed, so it is
    identical across processes, worker counts and resumes — the property
    the injector needs for replayable fault decisions.
    """
    payload = repr((
        spec.protocol, spec.adversary, spec.n, spec.t, spec.inputs,
        spec.seed, sorted(spec.adversary_kwargs.items()),
        sorted(spec.protocol_kwargs.items()), spec.engine,
        spec.max_windows, spec.max_steps, spec.stop_when, spec.tag))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class FaultInjector:
    """Applies one :class:`ChaosConfig` deterministically to trials.

    The injector itself is cheap, picklable plain state (the config plus
    an in-memory torn-write ledger), so the supervisor ships it to worker
    processes alongside each chunk.
    """

    def __init__(self, chaos: ChaosConfig) -> None:
        self.chaos = chaos
        self._torn_fired: Set[str] = set()

    def __getstate__(self) -> Dict[str, Any]:
        # The torn ledger is supervisor-side state; workers only make
        # trial-level decisions, which are pure functions of the config.
        return {"chaos": self.chaos}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.chaos = state["chaos"]
        self._torn_fired = set()

    # -- decisions (pure) ---------------------------------------------
    def _stream(self, namespace: str, identity: str) -> random.Random:
        digest = hashlib.sha256(
            f"{self.chaos.seed}:{namespace}:{identity}"
            .encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def decide(self, spec: TrialSpec) -> Optional[str]:
        """The fault kind injected into ``spec``, or ``None``.

        A pure function of (chaos seed, spec): one uniform draw against
        the cumulative kind probabilities.
        """
        draw = self._stream("trial", spec_fingerprint(spec)).random()
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += self.chaos.probability(kind)
            if draw < cumulative:
                return kind
        return None

    @staticmethod
    def fires(kind: Optional[str], attempt: int) -> bool:
        """Whether ``kind`` manifests on this (0-based) attempt.

        Poison faults are persistent; every other kind is transient and
        fires on the first attempt only — a retry recovers it.
        """
        if kind is None:
            return False
        return True if kind == POISON else attempt == 0

    def decide_torn(self, key_id: str) -> bool:
        """Whether to tear the next row write for this cell key.

        Fires at most once per key per store lifetime, so the recovery
        write that follows always lands intact.
        """
        if self.chaos.torn <= 0.0 or key_id in self._torn_fired:
            return False
        self._torn_fired.add(key_id)
        return self._stream("torn", key_id).random() < self.chaos.torn

    # -- application --------------------------------------------------
    def apply(self, spec: TrialSpec, attempt: int,
              scope: str = WORKER_SCOPE):
        """Execute ``spec``, injecting this config's fault for it (if any).

        In :data:`WORKER_SCOPE` crashes and hangs manifest literally; in
        :data:`SERIAL_SCOPE`/:data:`QUARANTINE_SCOPE` they degrade to a
        raised :class:`InjectedFault` so the supervising process
        survives to record them.
        """
        kind = self.decide(spec)
        if self.fires(kind, attempt):
            if kind == POISON or kind == RAISE or scope != WORKER_SCOPE:
                raise InjectedFault(
                    f"injected {kind} fault "
                    f"(attempt {attempt}, scope {scope}, "
                    f"spec {spec_fingerprint(spec)})")
            if kind == CRASH:
                os._exit(_EXIT_CODE)
            if kind == HANG:
                # The watchdog terminates the worker mid-sleep; if the
                # budget is generous the trial simply completes late.
                time.sleep(self.chaos.hang_seconds)
        return execute_trial(spec)


def build_injector(chaos: Optional[ChaosConfig]) -> Optional[FaultInjector]:
    """An injector for ``chaos``, or ``None`` when chaos is off/inert."""
    if chaos is None or not chaos.active:
        return None
    return FaultInjector(chaos)


__all__ = [
    "CHAOS_ENV",
    "CRASH",
    "HANG",
    "RAISE",
    "POISON",
    "TORN",
    "FAULT_KINDS",
    "WORKER_SCOPE",
    "SERIAL_SCOPE",
    "QUARANTINE_SCOPE",
    "ChaosConfig",
    "FaultInjector",
    "InjectedFault",
    "build_injector",
    "parse_chaos_spec",
    "spec_fingerprint",
]
