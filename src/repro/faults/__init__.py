"""Deterministic fault injection for chaos-testing the execution layer.

The paper's protocols are measured under adversarial faults; this package
holds the *harness* to the same bar.  A :class:`ChaosConfig` is a seeded,
replayable fault pattern — worker crashes, trial hangs, raised
exceptions, deterministic poison trials, torn row writes — that the
supervising executor (:mod:`repro.runner.supervisor`) and the results
store thread through every trial.  Because every fault decision is a pure
function of the chaos seed and the trial's content fingerprint, a chaos
run is exactly reproducible: same faults, same recoveries, and (the
keystone property) surviving results bit-identical to a fault-free
serial run.

See the "Fault tolerance & chaos testing" section of ``PERFORMANCE.md``.
"""

from repro.faults.injector import (CHAOS_ENV, CRASH, FAULT_KINDS, HANG,
                                   POISON, QUARANTINE_SCOPE, RAISE,
                                   SERIAL_SCOPE, TORN, WORKER_SCOPE,
                                   ChaosConfig, FaultInjector, InjectedFault,
                                   build_injector, parse_chaos_spec,
                                   spec_fingerprint)

__all__ = [
    "CHAOS_ENV",
    "CRASH",
    "HANG",
    "RAISE",
    "POISON",
    "TORN",
    "FAULT_KINDS",
    "WORKER_SCOPE",
    "SERIAL_SCOPE",
    "QUARANTINE_SCOPE",
    "ChaosConfig",
    "FaultInjector",
    "InjectedFault",
    "build_injector",
    "parse_chaos_spec",
    "spec_fingerprint",
]
