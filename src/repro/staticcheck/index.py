"""A lightweight cross-file symbol index over the parsed project.

The checks reason about relationships *between* files — "is this class
registered over there", "does the step engine handle every ``StepType``
member" — so the index pre-digests each parse tree into cheap lookups:
class definitions with base names and ``__slots__`` facts, module-level
dict literals (the registries), string literals and attribute references
per file, and the scenario tables of the registry-completeness test.

Everything is derived statically from the AST.  Nothing here imports the
checked modules, which is what lets the registry checks run on code too
broken to import, and lets the completeness test delegate its
scenario-name discovery here (so the runtime test and the static linter
can never disagree about what the tables say).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.staticcheck.walker import ProjectFiles

COMPLETENESS_TEST = "tests/test_registry_completeness.py"
"""Relpath of the scenario-coverage contract the R3 check reads."""

MUTATION_CONTRACT_TEST = "tests/test_search_mutations.py"
"""Relpath of the hypothesis contract suite the P4 check reads."""


def _base_name(node: ast.expr) -> Optional[str]:
    """The identifier of a base-class expression (``Foo`` or ``mod.Foo``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_dataclass_slots(decorator: ast.expr) -> bool:
    """Whether a decorator is ``@dataclass(..., slots=True)``."""
    if not isinstance(decorator, ast.Call):
        return False
    name = _base_name(decorator.func)
    if name != "dataclass":
        return False
    return any(keyword.arg == "slots"
               and isinstance(keyword.value, ast.Constant)
               and keyword.value.value is True
               for keyword in decorator.keywords)


@dataclass
class ClassInfo:
    """One module-level class definition.

    Attributes:
        name: the class name.
        relpath: defining file, relative to the package root.
        lineno: definition line.
        bases: identifier names of the direct bases.
        has_slots: whether the class pins its layout — a ``__slots__``
            assignment in the body or ``@dataclass(slots=True)``.
        raises_not_implemented: whether any method raises
            ``NotImplementedError`` (the project's abstract-hook idiom).
        has_abstract_methods: whether any method carries an
            ``@abstractmethod`` decorator.
        node: the underlying AST node.
    """

    name: str
    relpath: str
    lineno: int
    bases: Tuple[str, ...]
    has_slots: bool
    raises_not_implemented: bool
    has_abstract_methods: bool
    node: ast.ClassDef

    @property
    def is_concrete(self) -> bool:
        """Whether the class looks instantiable-and-final enough to need
        registration: no abstract-hook raise, no ``@abstractmethod``."""
        return not (self.raises_not_implemented or
                    self.has_abstract_methods)


@dataclass(frozen=True)
class ScenarioTables:
    """The statically parsed scenario tables of the completeness test.

    Attributes:
        adversaries: keys of ``ADVERSARY_SCENARIOS``.
        strategies: keys of ``STRATEGY_SCENARIOS``.
        protocols: protocol names exercised by adversary scenarios (the
            first element of each scenario tuple).
    """

    adversaries: frozenset
    strategies: frozenset
    protocols: frozenset


@dataclass
class SymbolIndex:
    """Cross-file lookups derived from one :class:`ProjectFiles`."""

    project: ProjectFiles
    classes: List[ClassInfo] = field(default_factory=list)
    _by_name: Dict[str, List[ClassInfo]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for relpath in sorted(self.project.files):
            source = self.project.files[relpath]
            for node in source.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                info = ClassInfo(
                    name=node.name, relpath=relpath, lineno=node.lineno,
                    bases=tuple(name for name in map(_base_name, node.bases)
                                if name is not None),
                    has_slots=self._class_has_slots(node),
                    raises_not_implemented=self._raises_not_implemented(node),
                    has_abstract_methods=self._has_abstract_methods(node),
                    node=node)
                self.classes.append(info)
                self._by_name.setdefault(node.name, []).append(info)

    # ------------------------------------------------------------------
    # Class facts.
    # ------------------------------------------------------------------
    @staticmethod
    def _class_has_slots(node: ast.ClassDef) -> bool:
        if any(_is_dataclass_slots(decorator)
               for decorator in node.decorator_list):
            return True
        for statement in node.body:
            if isinstance(statement, ast.Assign):
                if any(isinstance(target, ast.Name)
                       and target.id == "__slots__"
                       for target in statement.targets):
                    return True
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name) and \
                        statement.target.id == "__slots__":
                    return True
        return False

    @staticmethod
    def _has_abstract_methods(node: ast.ClassDef) -> bool:
        for statement in node.body:
            if not isinstance(statement, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                continue
            for decorator in statement.decorator_list:
                if _base_name(decorator) == "abstractmethod":
                    return True
        return False

    @staticmethod
    def _raises_not_implemented(node: ast.ClassDef) -> bool:
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Raise) or inner.exc is None:
                continue
            exc = inner.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and \
                    exc.id == "NotImplementedError":
                return True
        return False

    def class_named(self, name: str) -> List[ClassInfo]:
        """Every module-level class with this name, across files."""
        return list(self._by_name.get(name, ()))

    def subclasses_of(self, *roots: str) -> List[ClassInfo]:
        """Transitive subclasses of the named root classes (by base name).

        Resolution is purely name-based — good enough for a project that
        does not reuse class names across unrelated hierarchies, and what
        keeps the index import-free.  The roots themselves are excluded.
        """
        known: Set[str] = set(roots)
        members: List[ClassInfo] = []
        changed = True
        while changed:
            changed = False
            for info in self.classes:
                if info.name in known:
                    continue
                if any(base in known for base in info.bases):
                    known.add(info.name)
                    members.append(info)
                    changed = True
        return sorted(members, key=lambda info: (info.relpath, info.lineno))

    # ------------------------------------------------------------------
    # Per-file digests.
    # ------------------------------------------------------------------
    def string_literals(self, relpath: str) -> Set[str]:
        """Every string constant appearing anywhere in one file."""
        source = self.project.get(relpath)
        if source is None:
            return set()
        return {node.value for node in ast.walk(source.tree)
                if isinstance(node, ast.Constant)
                and isinstance(node.value, str)}

    def attribute_pairs(self, relpath: str) -> Set[Tuple[str, str]]:
        """``(base, attr)`` pairs of every ``base.attr`` reference."""
        source = self.project.get(relpath)
        if source is None:
            return set()
        pairs: Set[Tuple[str, str]] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name):
                pairs.add((node.value.id, node.attr))
        return pairs

    def called_method_names(self, relpath: str) -> Set[str]:
        """Attribute names invoked as methods (``obj.name(...)``)."""
        source = self.project.get(relpath)
        if source is None:
            return set()
        return {node.func.attr for node in ast.walk(source.tree)
                if isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)}

    def referenced_names(self, relpath: str) -> Set[str]:
        """Every bare identifier referenced (or imported) in one file."""
        source = self.project.get(relpath)
        if source is None:
            return set()
        names: Set[str] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.ImportFrom):
                names.update(alias.name for alias in node.names)
        return names

    # ------------------------------------------------------------------
    # Registry dict literals.
    # ------------------------------------------------------------------
    def _module_assign(self, relpath: str,
                       name: str) -> Optional[ast.expr]:
        source = self.project.get(relpath)
        if source is None:
            return None
        for node in source.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            if any(isinstance(target, ast.Name) and target.id == name
                   for target in targets):
                return node.value
        return None

    def dict_string_keys(self, relpath: str,
                         name: str) -> Optional[Set[str]]:
        """String keys of a module-level dict literal, else ``None``."""
        value = self._module_assign(relpath, name)
        if not isinstance(value, ast.Dict):
            return None
        return {key.value for key in value.keys
                if isinstance(key, ast.Constant)
                and isinstance(key.value, str)}

    def dict_value_names(self, relpath: str, name: str) -> Set[str]:
        """Identifier names referenced in a dict literal's values."""
        value = self._module_assign(relpath, name)
        if not isinstance(value, ast.Dict):
            return set()
        names: Set[str] = set()
        for entry in value.values:
            for node in ast.walk(entry):
                if isinstance(node, ast.Name):
                    names.add(node.id)
                elif isinstance(node, ast.Attribute):
                    names.add(node.attr)
        return names

    def assign_line(self, relpath: str, name: str) -> int:
        """Line of a module-level assignment (1 when not found)."""
        value = self._module_assign(relpath, name)
        return value.lineno if value is not None else 1

    # ------------------------------------------------------------------
    # Project vocabularies the parity checks compare.
    # ------------------------------------------------------------------
    def trace_event_kinds(self) -> Dict[str, str]:
        """``record_*`` method -> event-kind literal, from the trace class.

        Derived from ``simulation/trace.py``: every ``record_<x>`` method
        of ``ExecutionTrace`` that constructs a ``TraceEvent`` with a
        ``kind=`` keyword (or first positional string) defines one entry
        of the engines' shared event vocabulary.
        """
        source = self.project.get("simulation/trace.py")
        if source is None:
            return {}
        kinds: Dict[str, str] = {}
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef) or \
                    node.name != "ExecutionTrace":
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef) or \
                        not method.name.startswith("record_"):
                    continue
                for call in ast.walk(method):
                    if not isinstance(call, ast.Call):
                        continue
                    if _base_name(call.func) != "TraceEvent":
                        continue
                    kind = None
                    if call.args and isinstance(call.args[0], ast.Constant):
                        kind = call.args[0].value
                    for keyword in call.keywords:
                        if keyword.arg == "kind" and \
                                isinstance(keyword.value, ast.Constant):
                            kind = keyword.value.value
                    if isinstance(kind, str):
                        kinds[method.name] = kind
        return kinds

    def step_type_members(self) -> Dict[str, int]:
        """``StepType`` enum member names -> definition lines."""
        source = self.project.get("simulation/events.py")
        if source is None:
            return {}
        members: Dict[str, int] = {}
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef) or \
                    node.name != "StepType":
                continue
            for statement in node.body:
                if isinstance(statement, ast.Assign) and \
                        isinstance(statement.value, ast.Constant):
                    for target in statement.targets:
                        if isinstance(target, ast.Name) and \
                                target.id.isupper():
                            members[target.id] = statement.lineno
        return members

    def mutation_operators(self) -> Dict[str, int]:
        """Public schedule-to-schedule operators -> definition lines.

        A mutation operator is a public module-level function of
        ``search/mutations.py`` whose return annotation is ``Schedule`` —
        the package's own contract for "maps admissible schedules to
        admissible schedules".
        """
        source = self.project.get("search/mutations.py")
        if source is None:
            return {}
        operators: Dict[str, int] = {}
        for node in source.tree.body:
            if not isinstance(node, ast.FunctionDef) or \
                    node.name.startswith("_"):
                continue
            returns = node.returns
            if isinstance(returns, ast.Name) and returns.id == "Schedule":
                operators[node.name] = node.lineno
            elif isinstance(returns, ast.Constant) and \
                    returns.value == "Schedule":
                operators[node.name] = node.lineno
        return operators

    def scenario_tables(self) -> Optional[ScenarioTables]:
        """The completeness test's scenario tables, parsed statically.

        Returns ``None`` when the test file is absent (e.g. in fixture
        trees that do not exercise the R3 check).
        """
        source = self.project.get(COMPLETENESS_TEST)
        if source is None:
            return None
        adversaries = self.dict_string_keys(COMPLETENESS_TEST,
                                            "ADVERSARY_SCENARIOS") or set()
        strategies = self.dict_string_keys(COMPLETENESS_TEST,
                                           "STRATEGY_SCENARIOS") or set()
        protocols: Set[str] = set()
        value = self._module_assign(COMPLETENESS_TEST,
                                    "ADVERSARY_SCENARIOS")
        if isinstance(value, ast.Dict):
            for entry in value.values:
                if isinstance(entry, ast.Tuple) and entry.elts and \
                        isinstance(entry.elts[0], ast.Constant) and \
                        isinstance(entry.elts[0].value, str):
                    protocols.add(entry.elts[0].value)
        return ScenarioTables(adversaries=frozenset(adversaries),
                              strategies=frozenset(strategies),
                              protocols=frozenset(protocols))


__all__ = ["ClassInfo", "ScenarioTables", "SymbolIndex",
           "COMPLETENESS_TEST", "MUTATION_CONTRACT_TEST"]
