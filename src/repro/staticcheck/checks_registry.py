"""R — registry completeness checks.

The parallel runner rebuilds adversaries and protocols in worker
processes from *names*, so a class that never makes it into its registry
is unreachable from every trial spec, every CLI invocation and every
persisted artifact — and a registered name without a scenario in the
completeness test is a code path the suite never exercises.  Both gaps
are invisible at import time; these checks find them from class
definitions alone:

* **R1** — a concrete window/step adversary (or Byzantine strategy)
  subclass is missing from ``adversaries/registry.py``.
* **R2** — a concrete protocol subclass is missing from
  ``protocols/registry.py``.
* **R3** — a registered name has no scenario in
  ``tests/test_registry_completeness.py`` (whose tables the symbol index
  parses statically — the same parse the runtime test delegates to, so
  the two can never disagree).

"Concrete" is judged statically: no ``@abstractmethod`` and no
``NotImplementedError``-raising hook.  Deliberately unregistrable
classes (e.g. ones needing live un-picklable constructor arguments)
carry a justified ``# repro: allow[R1]`` at their definition.
"""

from __future__ import annotations

from typing import List

from repro.staticcheck.index import SymbolIndex
from repro.staticcheck.report import Finding
from repro.staticcheck.walker import ProjectFiles

ADVERSARY_REGISTRY = "adversaries/registry.py"
PROTOCOL_REGISTRY = "protocols/registry.py"

ADVERSARY_ROOTS = ("WindowAdversary", "StepAdversary")
STRATEGY_ROOT = "ByzantineStrategy"
PROTOCOL_ROOT = "Protocol"


def _in_tests(relpath: str) -> bool:
    return relpath.startswith("tests/")


def check_registry(project: ProjectFiles,
                   index: SymbolIndex) -> List[Finding]:
    """Run the R checks."""
    findings: List[Finding] = []

    # R1: adversaries and strategies.
    if project.get(ADVERSARY_REGISTRY) is not None:
        registered = (index.dict_value_names(ADVERSARY_REGISTRY,
                                             "ADVERSARIES")
                      | index.dict_value_names(ADVERSARY_REGISTRY,
                                               "STRATEGIES"))
        candidates = (index.subclasses_of(*ADVERSARY_ROOTS)
                      + index.subclasses_of(STRATEGY_ROOT))
        for info in candidates:
            if _in_tests(info.relpath) or not info.is_concrete:
                continue
            if info.name not in registered:
                findings.append(Finding(
                    code="R1", path=info.relpath, line=info.lineno,
                    message=f"concrete adversary/strategy {info.name} "
                            f"is not registered in {ADVERSARY_REGISTRY}; "
                            "trial specs cannot reach it"))

    # R2: protocols.
    if project.get(PROTOCOL_REGISTRY) is not None:
        registered = index.dict_value_names(PROTOCOL_REGISTRY, "_REGISTRY")
        for info in index.subclasses_of(PROTOCOL_ROOT):
            if _in_tests(info.relpath) or not info.is_concrete:
                continue
            if info.name not in registered:
                findings.append(Finding(
                    code="R2", path=info.relpath, line=info.lineno,
                    message=f"concrete protocol {info.name} is not "
                            f"registered in {PROTOCOL_REGISTRY}"))

    # R3: every registered name is exercised by a scenario.
    tables = index.scenario_tables()
    if tables is not None:
        checks = (
            ("ADVERSARIES", ADVERSARY_REGISTRY, tables.adversaries,
             "adversary"),
            ("STRATEGIES", ADVERSARY_REGISTRY, tables.strategies,
             "Byzantine strategy"),
            ("_REGISTRY", PROTOCOL_REGISTRY, tables.protocols, "protocol"),
        )
        for table_name, registry_file, scenario_names, label in checks:
            if project.get(registry_file) is None:
                continue
            keys = index.dict_string_keys(registry_file, table_name)
            if keys is None:
                continue
            line = index.assign_line(registry_file, table_name)
            for key in sorted(keys - scenario_names):
                findings.append(Finding(
                    code="R3", path=registry_file, line=line,
                    message=f"registered {label} {key!r} has no scenario "
                            "in tests/test_registry_completeness.py"))

    return findings


__all__ = ["check_registry"]
