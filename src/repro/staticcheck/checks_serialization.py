"""S — serialization and hot-path layout checks.

* **S1** — the slots manifest.  The perf work pinned ``__slots__`` on
  the classes every simulated step allocates or touches; losing the
  declaration is an easy, silent regression during refactors (add one
  stray class attribute and every instance quietly grows a ``__dict__``).
  The manifest below names them; the check verifies each still pins its
  layout (an explicit ``__slots__`` or ``@dataclass(slots=True)``).

* **S2** — trial-spec picklability.  ``TrialSpec`` objects cross process
  boundaries in the parallel runner; a lambda (or anything defined
  inside a function) reaching a spec field only explodes once someone
  runs with ``--workers > 0``.  The check flags lambdas in ``TrialSpec``
  field defaults and in the arguments of ``TrialSpec(...)``
  construction sites anywhere in the tree.

* **S3** — strict JSON in the results layer.  Python's ``json.dumps``
  happily emits ``NaN``/``Infinity`` tokens by default, which are not
  JSON: the store's own loaders (and any columnar or SQL reader) reject
  them.  The store canonicalizes non-finite floats to ``null`` at the
  write boundary, and every ``json.dump(s)`` call under ``results/``
  must pass ``allow_nan=False`` so a non-finite value that slips past
  canonicalization fails loudly at write time instead of poisoning the
  file.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.staticcheck.index import SymbolIndex
from repro.staticcheck.report import Finding
from repro.staticcheck.walker import ProjectFiles

SLOTS_MANIFEST: Tuple[Tuple[str, str], ...] = (
    ("simulation/processor.py", "Processor"),
    ("simulation/message.py", "Message"),
    ("simulation/configuration.py", "Configuration"),
)
"""(relpath, class name) pairs that must keep ``__slots__``.

Extend this manifest when a profile shows a new class on the per-step
hot path and it gains ``__slots__``; the linter then guards the
declaration from accidental removal.
"""

TRIAL_SPEC_FILE = "runner/spec.py"
TRIAL_SPEC_CLASS = "TrialSpec"

STRICT_JSON_PREFIX = "results/"
"""Tree prefix whose ``json.dump(s)`` calls must pass allow_nan=False."""


def check_serialization(project: ProjectFiles,
                        index: SymbolIndex) -> List[Finding]:
    """Run the S checks."""
    findings: List[Finding] = []

    # S1: manifest classes keep __slots__.
    for relpath, class_name in SLOTS_MANIFEST:
        if project.get(relpath) is None:
            continue
        infos = [info for info in index.class_named(class_name)
                 if info.relpath == relpath]
        if not infos:
            findings.append(Finding(
                code="S1", path=relpath, line=1,
                message=f"slots-manifest class {class_name} not found; "
                        "update the manifest in "
                        "repro/staticcheck/checks_serialization.py"))
            continue
        for info in infos:
            if not info.has_slots:
                findings.append(Finding(
                    code="S1", path=relpath, line=info.lineno,
                    message=f"hot-path class {class_name} lost its "
                            "__slots__ declaration"))

    # S2: no lambdas in TrialSpec fields or construction sites.
    spec_source = project.get(TRIAL_SPEC_FILE)
    if spec_source is not None:
        for node in spec_source.tree.body:
            if isinstance(node, ast.ClassDef) and \
                    node.name == TRIAL_SPEC_CLASS:
                for inner in ast.walk(node):
                    if isinstance(inner, ast.Lambda):
                        findings.append(Finding(
                            code="S2", path=TRIAL_SPEC_FILE,
                            line=inner.lineno,
                            message="lambda in a TrialSpec field default "
                                    "is unpicklable; use a module-level "
                                    "function"))
    for relpath in sorted(project.files):
        source = project.files[relpath]
        if relpath.startswith("tests/"):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if name != TRIAL_SPEC_CLASS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for inner in ast.walk(arg):
                    if isinstance(inner, ast.Lambda):
                        findings.append(Finding(
                            code="S2", path=relpath, line=inner.lineno,
                            message="lambda passed into a TrialSpec is "
                                    "unpicklable under --workers > 0; "
                                    "use a module-level function"))

    # S3: every json.dump(s) in the results layer is strict about
    # non-finite floats.
    for relpath in sorted(project.files):
        if not relpath.startswith(STRICT_JSON_PREFIX):
            continue
        source = project.files[relpath]
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("dump", "dumps")
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "json"):
                continue
            strict = any(
                keyword.arg == "allow_nan"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
                for keyword in node.keywords)
            if not strict:
                findings.append(Finding(
                    code="S3", path=relpath, line=node.lineno,
                    message=f"json.{func.attr} in the results layer "
                            "without allow_nan=False; the default emits "
                            "NaN/Infinity tokens the store's loaders "
                            "reject"))

    return findings


__all__ = ["SLOTS_MANIFEST", "STRICT_JSON_PREFIX", "check_serialization"]
