"""T — telemetry isolation checks.

The observer-effect guarantee (result rows bit-identical with telemetry
on, off, or resumed mid-run) rests on two one-way walls that are easy
to breach by accident and invisible at runtime until a row changes:

* **T1** — simulation-layer code (``simulation/``, ``protocols/``,
  ``adversaries/``) must never import :mod:`repro.telemetry`.  The
  execution layers *above* the simulation record spans around it;  the
  moment protocol code can see the recorder, instrumentation can leak
  into decision logic.
* **T2** — telemetry code must never draw entropy: no ``seeded_rng``
  calls, no ``random.Random`` / ``SystemRandom`` construction.  The
  recorder observes wall-clock time only; pulling from a seeded stream
  would shift every downstream draw and silently change results.
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.index import SymbolIndex
from repro.staticcheck.report import Finding
from repro.staticcheck.walker import ProjectFiles, SourceFile

T1_SCOPE_DIRS = ("simulation", "protocols", "adversaries")
"""Package subdirectories that must stay telemetry-blind (T1)."""

T2_SCOPE_DIR = "telemetry"
"""Package subdirectory that must stay entropy-free (T2)."""

_ENTROPY_CALLS = frozenset({"seeded_rng", "Random", "SystemRandom"})


def _first_segment(source: SourceFile) -> str:
    return source.relpath.split("/", 1)[0]


def _imports_telemetry(node: ast.AST) -> bool:
    if isinstance(node, ast.Import):
        return any(alias.name.split(".")[:2] == ["repro", "telemetry"]
                   for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        if module.split(".")[:2] == ["repro", "telemetry"]:
            return True
        return module == "repro" and \
            any(alias.name == "telemetry" for alias in node.names)
    return False


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def check_telemetry(project: ProjectFiles,
                    index: SymbolIndex) -> List[Finding]:
    """Run the T checks over the simulation and telemetry layers."""
    findings: List[Finding] = []
    for relpath in sorted(project.files):
        source = project.files[relpath]
        first = _first_segment(source)
        if first in T1_SCOPE_DIRS:
            for node in ast.walk(source.tree):
                if _imports_telemetry(node):
                    findings.append(Finding(
                        code="T1", path=relpath, line=node.lineno,
                        message="simulation-layer module imports "
                                "repro.telemetry (protocol/adversary "
                                "code must stay telemetry-blind; record "
                                "spans in the execution layer instead)"))
        elif first == T2_SCOPE_DIR:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Call) and \
                        _call_name(node) in _ENTROPY_CALLS:
                    findings.append(Finding(
                        code="T2", path=relpath, line=node.lineno,
                        message="telemetry code draws entropy "
                                "(seeded_rng / random.Random); the "
                                "recorder may read wall-clock time but "
                                "never a random stream"))
    return findings


__all__ = ["T1_SCOPE_DIRS", "T2_SCOPE_DIR", "check_telemetry"]
