"""P — engine/verification parity checks.

The differential machinery (and every claim built on it) assumes the two
execution engines speak the same event vocabulary and that the
independent invariant checker understands all of it.  These checks pin
that vocabulary statically:

* **P1** — every ``ExecutionTrace.record_*`` event recorder defined in
  ``simulation/trace.py`` is invoked by *both* engines
  (``simulation/engine.py`` and ``simulation/windows.py``).
* **P2** — every event *kind* those recorders emit appears in
  ``verification/invariants.py``: the checker cannot re-derive
  guarantees from events it never looks at.
* **P3** — every ``StepType`` member of ``simulation/events.py`` is
  handled (referenced) by the step engine's dispatch.
* **P4** — every public mutation operator of ``search/mutations.py``
  (module-level function returning ``Schedule``) is exercised by the
  hypothesis admissibility contract suite
  ``tests/test_search_mutations.py``.

Each check skips silently when the files it compares are absent — that
is what lets the fixture corpus trigger one code at a time.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from repro.staticcheck.index import MUTATION_CONTRACT_TEST, SymbolIndex
from repro.staticcheck.report import Finding
from repro.staticcheck.walker import ProjectFiles

TRACE_FILE = "simulation/trace.py"
ENGINE_FILES = ("simulation/engine.py", "simulation/windows.py")
INVARIANTS_FILE = "verification/invariants.py"
EVENTS_FILE = "simulation/events.py"
STEP_ENGINE_FILE = "simulation/engine.py"
MUTATIONS_FILE = "search/mutations.py"


def _recorder_lines(project: ProjectFiles) -> Dict[str, int]:
    """``record_*`` method name -> definition line in the trace file."""
    source = project.get(TRACE_FILE)
    if source is None:
        return {}
    lines: Dict[str, int] = {}
    for node in source.tree.body:
        if not isinstance(node, ast.ClassDef) or \
                node.name != "ExecutionTrace":
            continue
        for method in node.body:
            if isinstance(method, ast.FunctionDef) and \
                    method.name.startswith("record_"):
                lines[method.name] = method.lineno
    return lines


def check_parity(project: ProjectFiles,
                 index: SymbolIndex) -> List[Finding]:
    """Run the P checks."""
    findings: List[Finding] = []
    kinds = index.trace_event_kinds()
    recorder_lines = _recorder_lines(project)

    # P1: both engines must invoke every event recorder.
    if kinds:
        for engine_file in ENGINE_FILES:
            if project.get(engine_file) is None:
                continue
            called = index.called_method_names(engine_file)
            for recorder in sorted(kinds):
                if recorder not in called:
                    findings.append(Finding(
                        code="P1", path=TRACE_FILE,
                        line=recorder_lines.get(recorder, 1),
                        message=f"event recorder {recorder}() (kind "
                                f"{kinds[recorder]!r}) is never called "
                                f"by {engine_file}; the engines must "
                                "emit the same event vocabulary"))

    # P2: the invariant checker must consume every event kind.
    if kinds and project.get(INVARIANTS_FILE) is not None:
        consumed = index.string_literals(INVARIANTS_FILE)
        for recorder in sorted(kinds):
            kind = kinds[recorder]
            if kind not in consumed:
                findings.append(Finding(
                    code="P2", path=INVARIANTS_FILE, line=1,
                    message=f"trace event kind {kind!r} (emitted by "
                            f"{recorder}()) is never examined by the "
                            "invariant checker"))

    # P3: the step engine must dispatch on every StepType member.
    members = index.step_type_members()
    if members and project.get(STEP_ENGINE_FILE) is not None:
        handled = {attr for base, attr
                   in index.attribute_pairs(STEP_ENGINE_FILE)
                   if base == "StepType"}
        for member in sorted(members):
            if member not in handled:
                findings.append(Finding(
                    code="P3", path=EVENTS_FILE, line=members[member],
                    message=f"StepType.{member} is never handled by the "
                            "step engine's dispatch"))

    # P4: every public mutation operator has a contract test.
    operators = index.mutation_operators()
    if operators and project.get(MUTATION_CONTRACT_TEST) is not None:
        referenced = index.referenced_names(MUTATION_CONTRACT_TEST)
        for name in sorted(operators):
            if name not in referenced:
                findings.append(Finding(
                    code="P4", path=MUTATIONS_FILE, line=operators[name],
                    message=f"mutation operator {name}() has no "
                            "hypothesis admissibility contract test in "
                            f"{MUTATION_CONTRACT_TEST}"))

    return findings


__all__ = ["check_parity"]
