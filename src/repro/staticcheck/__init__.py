"""``repro.staticcheck`` — a project-specific AST contract linter.

The test suite enforces this reproduction's core contracts (bit-identical
seeded execution, engine parity, registry completeness, hot-path layout)
at *runtime*, after a violation has already shipped.  This package
enforces them *statically*: it parses the whole ``src/repro`` tree with
:mod:`ast` (never importing it), builds a lightweight cross-file symbol
index, and emits coded findings with ``file:line`` anchors.

Check families (see ``STATIC_ANALYSIS.md`` for the full catalog):

* **D** — determinism: the only sanctioned entropy source is an
  injected, explicitly seeded ``random.Random``.
* **P** — parity: both engines and the invariant checker share one
  event vocabulary; every mutation operator is contract-tested.
* **R** — registry: every concrete adversary/protocol is registered and
  exercised by a scenario.
* **S** — serialization/perf: hot-path classes keep ``__slots__``;
  trial specs stay picklable; results-layer JSON writes refuse
  non-finite floats.
* **F** — fault tolerance: the resilient executor may catch broadly,
  but every broad handler re-raises or records the failure.
* **T** — telemetry isolation: simulation-layer code never imports
  :mod:`repro.telemetry`, and telemetry code never draws entropy.

Findings are silenced per line with ``# repro: allow[CODE] -- why``; a
suppression without the justification is itself a finding (``X1``).

Entry points: :func:`run_lint` (the ``repro lint`` CLI wraps it) and
:func:`project_scenarios` (the registry-completeness test delegates its
scenario-name discovery here so the static and runtime views of the
scenario tables can never disagree).
"""

from __future__ import annotations

import os
from typing import Optional, Set

import repro
from repro.staticcheck.checks_determinism import check_determinism
from repro.staticcheck.checks_faults import check_faults
from repro.staticcheck.checks_parity import check_parity
from repro.staticcheck.checks_registry import check_registry
from repro.staticcheck.checks_serialization import (SLOTS_MANIFEST,
                                                    check_serialization)
from repro.staticcheck.checks_telemetry import check_telemetry
from repro.staticcheck.index import ScenarioTables, SymbolIndex
from repro.staticcheck.report import (CHECK_CODES, CHECK_FAMILIES, Finding,
                                      LintResult, apply_suppressions,
                                      expand_code_selection, filter_findings)
from repro.staticcheck.walker import ProjectFiles, walk_project

ALL_CHECKS = (check_determinism, check_faults, check_parity,
              check_registry, check_serialization, check_telemetry)


def default_package_root() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(os.path.abspath(repro.__file__))


def default_tests_root() -> Optional[str]:
    """The repository ``tests/`` directory, when the layout exposes one.

    The package lives at ``<repo>/src/repro``; installed copies without
    an adjacent checkout simply lint the package alone.
    """
    repo = os.path.dirname(os.path.dirname(default_package_root()))
    tests = os.path.join(repo, "tests")
    return tests if os.path.isdir(tests) else None


def run_lint(package_root: Optional[str] = None,
             tests_root: Optional[str] = None,
             select: Optional[Set[str]] = None,
             ignore: Optional[Set[str]] = None) -> LintResult:
    """Lint a package tree and return the surviving findings.

    Args:
        package_root: directory to lint (defaults to the installed
            ``repro`` package).
        tests_root: accompanying tests directory, parsed under a
            ``tests/`` prefix (defaults to the repository ``tests/``
            next to the package; pass ``""`` via the CLI to disable).
        select: keep only these codes (``None`` keeps all).
        ignore: drop these codes.

    Returns:
        A :class:`~repro.staticcheck.report.LintResult`; ``result.ok``
        is the CLI's exit status.
    """
    if package_root is None:
        package_root = default_package_root()
        if tests_root is None:
            tests_root = default_tests_root()
    project = walk_project(package_root, tests_root)
    index = SymbolIndex(project)
    findings = []
    for check in ALL_CHECKS:
        findings.extend(check(project, index))
    suppressions = {relpath: source.suppressions
                    for relpath, source in project.files.items()
                    if source.suppressions}
    findings = apply_suppressions(findings, suppressions)
    findings = filter_findings(findings, select=select, ignore=ignore)
    return LintResult(findings=findings, files_scanned=len(project))


def default_fixture_root() -> Optional[str]:
    """The self-test corpus ``tests/staticcheck_fixtures/``, when present."""
    tests = default_tests_root()
    if tests is None:
        return None
    fixtures = os.path.join(tests, "staticcheck_fixtures")
    return fixtures if os.path.isdir(fixtures) else None


def iter_fixtures(fixtures_root: str):
    """Yield ``(name, expected_code, package_root, tests_root)`` per fixture.

    Each fixture is a directory named ``<code>_<slug>`` holding a minimal
    package tree that must yield *exactly* its code; a ``tests/`` subtree,
    when present, is linted under the usual ``tests/`` prefix (for checks
    that compare package code against the test suite).
    """
    for name in sorted(os.listdir(fixtures_root)):
        package_root = os.path.join(fixtures_root, name)
        if not os.path.isdir(package_root) or name.startswith((".", "_")):
            continue
        expected = name.split("_", 1)[0].upper()
        if expected not in CHECK_CODES:
            raise ValueError(
                f"fixture directory {name!r} does not start with a known "
                f"check code")
        tests_root = os.path.join(package_root, "tests")
        yield (name, expected, package_root,
               tests_root if os.path.isdir(tests_root) else None)


def run_fixture_selftest(fixtures_root: Optional[str] = None):
    """Lint every fixture; returns ``(name, expected, got, ok)`` rows.

    A fixture passes when the linter reports *exactly* its expected code
    (one or more findings, no other codes).
    """
    if fixtures_root is None:
        fixtures_root = default_fixture_root()
    if fixtures_root is None:
        raise RuntimeError("no tests/staticcheck_fixtures directory found")
    rows = []
    for name, expected, package_root, tests_root in \
            iter_fixtures(fixtures_root):
        result = run_lint(package_root=package_root, tests_root=tests_root)
        got = result.codes()
        rows.append((name, expected, got, got == {expected}))
    return rows


def project_scenarios() -> ScenarioTables:
    """The completeness test's scenario tables, statically parsed.

    Raises:
        RuntimeError: when the repository layout (and with it the
            completeness test) is not available.
    """
    project = walk_project(default_package_root(), default_tests_root())
    tables = SymbolIndex(project).scenario_tables()
    if tables is None:
        raise RuntimeError(
            "tests/test_registry_completeness.py not found next to the "
            "repro package; scenario tables are only available from a "
            "repository checkout")
    return tables


__all__ = [
    "ALL_CHECKS",
    "CHECK_CODES",
    "CHECK_FAMILIES",
    "Finding",
    "LintResult",
    "ProjectFiles",
    "ScenarioTables",
    "SLOTS_MANIFEST",
    "SymbolIndex",
    "default_fixture_root",
    "default_package_root",
    "default_tests_root",
    "expand_code_selection",
    "iter_fixtures",
    "run_fixture_selftest",
    "project_scenarios",
    "run_lint",
]
