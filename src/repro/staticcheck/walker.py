"""Source discovery and parsing: files, trees, parents, suppressions.

The walker turns a package tree (and, when present, its ``tests/``
sibling) into :class:`SourceFile` objects: the parsed AST plus the
derived helpers every check needs — a child-to-parent node map (for
context-sensitive checks like "is this ``list(...)`` inside a
``sorted(...)``") and the parsed suppression comments.

The linter never imports the code it checks: everything downstream works
off these parse trees, so a broken import graph (the very thing some
checks exist to prevent) cannot take the linter down with it.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.staticcheck.report import Suppression, parse_suppressions

D_SCOPE_DIRS = ("simulation", "protocols", "adversaries", "search",
                "verification", "batched")
"""Package subdirectories the determinism (D) checks apply to."""

SKIP_DIRS = ("staticcheck_fixtures",)
"""Directories never walked: the self-test corpus is deliberately bad
code and is linted one fixture at a time, never as part of its host."""


@dataclass
class SourceFile:
    """One parsed Python source file.

    Attributes:
        path: absolute filesystem path.
        relpath: path relative to the linted package root, ``/``-separated
            (test files are prefixed ``tests/``).
        tree: the parsed module AST.
        lines: the raw source lines.
        parents: child AST node id -> parent node, for upward walks.
        suppressions: parsed ``# repro: allow[...]`` comments.
    """

    path: str
    relpath: str
    tree: ast.Module
    lines: List[str]
    parents: Dict[int, ast.AST] = field(default_factory=dict)
    suppressions: List[Suppression] = field(default_factory=list)

    @property
    def in_determinism_scope(self) -> bool:
        """Whether the D checks apply to this file."""
        first = self.relpath.split("/", 1)[0]
        return first in D_SCOPE_DIRS

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node``, or ``None`` at the module root."""
        return self.parents.get(id(node))


def load_source_file(path: str, relpath: str) -> Optional[SourceFile]:
    """Parse one file; returns ``None`` on a syntax error.

    Unparseable files are skipped rather than fatal: the interpreter (and
    CI's import of the package) reports syntax errors already, and a
    half-broken tree should not block linting the rest.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        tree = ast.parse(text, filename=path)
    except SyntaxError:
        return None
    source = SourceFile(path=path, relpath=relpath, tree=tree,
                        lines=text.splitlines())
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            source.parents[id(child)] = parent
    source.suppressions = parse_suppressions(source.lines)
    return source


def _iter_python_files(root: str) -> Iterator[Tuple[str, str]]:
    """Yield ``(path, relpath)`` for every ``.py`` under ``root``."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(name for name in dirnames
                             if not name.startswith((".", "__pycache__"))
                             and name not in SKIP_DIRS)
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relpath = os.path.relpath(path, root).replace(os.sep, "/")
            yield path, relpath


@dataclass
class ProjectFiles:
    """Every parsed source file of one lint invocation.

    Attributes:
        package_root: the linted package directory (``src/repro`` in the
            real tree; a fixture directory in the self-test corpus).
        tests_root: the accompanying tests directory, when one exists.
        files: parsed files keyed by relpath; test files appear under
            ``tests/<name>.py``.
    """

    package_root: str
    tests_root: Optional[str]
    files: Dict[str, SourceFile] = field(default_factory=dict)

    def get(self, relpath: str) -> Optional[SourceFile]:
        """The parsed file at ``relpath``, or ``None`` when absent.

        Cross-file checks use this and skip silently when a fixture tree
        does not carry the file they reason about.
        """
        return self.files.get(relpath)

    def __len__(self) -> int:
        return len(self.files)


def walk_project(package_root: str,
                 tests_root: Optional[str] = None) -> ProjectFiles:
    """Parse a package tree (plus optional tests directory)."""
    project = ProjectFiles(package_root=package_root, tests_root=tests_root)
    for path, relpath in _iter_python_files(package_root):
        if tests_root is not None and \
                os.path.commonpath([os.path.abspath(path),
                                    os.path.abspath(tests_root)]) == \
                os.path.abspath(tests_root):
            continue  # nested tests dir: picked up below under tests/
        source = load_source_file(path, relpath)
        if source is not None:
            project.files[relpath] = source
    if tests_root is not None and os.path.isdir(tests_root):
        for path, relpath in _iter_python_files(tests_root):
            source = load_source_file(path, "tests/" + relpath)
            if source is not None:
                project.files["tests/" + relpath] = source
    return project


__all__ = ["D_SCOPE_DIRS", "SKIP_DIRS", "SourceFile", "ProjectFiles",
           "load_source_file", "walk_project"]
