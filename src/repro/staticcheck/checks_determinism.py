"""D — determinism checks.

The reproduction's headline contract is bit-identical Monte-Carlo
execution: the same seed must produce the same rows on any worker count,
and search/fuzz counterexamples must replay exactly.  The *only*
sanctioned entropy source inside the execution stack is an injected,
explicitly seeded ``random.Random``; wall clocks, OS entropy, the
module-level ``random`` API and unordered-container iteration orders are
all ways a schedule or seed draw can silently depend on something the
seed does not determine.

These checks apply to files under :data:`~repro.staticcheck.walker.
D_SCOPE_DIRS` (``simulation/``, ``protocols/``, ``adversaries/``,
``search/``, ``verification/``, ``batched/``).

* **D1** — call into the module-level ``random`` API (or importing a
  draw function from it): all draws share one hidden global stream.
* **D2** — wall-clock / OS-entropy calls: ``time.time``,
  ``datetime.now``, ``uuid.uuid4``, ``os.urandom``, anything in
  ``secrets``.
* **D3** — truncating/indexing a ``list()``/``tuple()`` built straight
  from a set (``list(s)[:t]``), or iterating a set display while drawing
  from an RNG: set order is hash order, not a deterministic function of
  the contents.  Wrap in ``sorted(...)`` to canonicalise.
* **D4** — float ``==``/``!=`` in a predicate: representation-dependent
  decisions.  Exact sentinel comparisons (``probability == 0.0``) are
  legitimate and should carry a justified suppression.
* **D5** — constructing ``random.Random`` unseeded, from ``None``, or
  from a parameter that *defaults* to ``None``: ``Random(None)`` seeds
  from OS entropy.  Route optional seeds through
  :func:`repro.determinism.seeded_rng` instead.
* **D6** — numpy's entropy: a ``numpy.random.<draw>`` call (the legacy
  module-level API is one hidden global ``RandomState``), or a numpy
  generator (``default_rng``, ``RandomState``, ``SeedSequence``, bit
  generators) constructed unseeded / from ``None`` / from a parameter
  defaulting to ``None`` — all of which fall back to OS entropy.  The
  batched engine's only sanctioned randomness is the per-trial
  ``random.Random`` replicas it mirrors from the per-trial oracle, so
  in practice the fix is "don't draw from numpy at all".
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.staticcheck.index import SymbolIndex
from repro.staticcheck.report import Finding
from repro.staticcheck.walker import ProjectFiles, SourceFile

_RANDOM_MODULE_OK = frozenset({"Random", "SystemRandom"})
"""``random.<attr>`` references that are not global-stream draws.

``SystemRandom`` is still OS entropy, but constructing it is caught by
its own right below; the *class* references themselves (annotations,
``isinstance`` checks) are fine.
"""

_CLOCK_CALLS = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("os", "urandom"), ("os", "getrandom"),
})
"""Attribute calls that read the wall clock or OS entropy."""

_NUMPY_NAMES = frozenset({"np", "numpy", "_np"})
"""Names the numpy module is conventionally bound to in this tree."""

_NUMPY_GENERATOR_NAMES = frozenset({
    "default_rng", "RandomState", "Generator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
})
"""``numpy.random`` attributes that *construct* generators (seedable —
D6 only when built unseeded) rather than draw from the global stream
(D6 always)."""

_SET_BUILDERS = frozenset({"set", "frozenset"})
_SET_RETURNING_HELPERS = frozenset({
    "senders_excluding", "random_subset", "crashed_victims",
})
"""Project helpers statically known to return (frozen)sets."""


def _enclosing_function(source: SourceFile,
                        node: ast.AST) -> Optional[ast.FunctionDef]:
    while node is not None:
        node = source.parent(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node
    return None


def _params_defaulting_to_none(func: ast.FunctionDef) -> Set[str]:
    """Parameter names of ``func`` whose default value is ``None``."""
    names: Set[str] = set()
    positional = func.args.posonlyargs + func.args.args
    for arg, default in zip(positional[len(positional)
                                       - len(func.args.defaults):],
                            func.args.defaults):
        if isinstance(default, ast.Constant) and default.value is None:
            names.add(arg.arg)
    for arg, default in zip(func.args.kwonlyargs, func.args.kw_defaults):
        if default is not None and isinstance(default, ast.Constant) and \
                default.value is None:
            names.add(arg.arg)
    return names


def _set_typed_names(func: ast.AST) -> Set[str]:
    """Local names of ``func`` statically inferable as set-typed.

    A deliberately shallow, two-pass fixpoint: names assigned from set
    displays, ``set()``/``frozenset()`` calls, known frozenset-returning
    project helpers, or set-algebra ``BinOp``s over already-inferred
    names.  Misses aliasing through attributes and calls — by design; D3
    favours precision over recall.
    """
    names: Set[str] = set()
    for _ in range(2):
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            if not _is_set_typed(node.value, names):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_typed(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name in _SET_BUILDERS or name in _SET_RETURNING_HELPERS:
            return True
        return False
    if isinstance(node, ast.BinOp) and \
            isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        return _is_set_typed(node.left, set_names) or \
            _is_set_typed(node.right, set_names)
    return False


def _is_rng_draw(node: ast.AST) -> bool:
    """Whether the subtree draws from an RNG-looking receiver."""
    for inner in ast.walk(node):
        if isinstance(inner, ast.Call) and \
                isinstance(inner.func, ast.Attribute):
            value = inner.func.value
            if isinstance(value, ast.Name) and (
                    value.id == "rng" or value.id.endswith("_rng")):
                return True
    return False


def _check_file(source: SourceFile) -> Iterator[Finding]:
    imported_clock_names: Set[str] = set()
    imported_np_generators: Set[str] = set()
    for node in ast.walk(source.tree):
        # D1: `from random import <draw>` (anything but the classes).
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                bad = [alias.name for alias in node.names
                       if alias.name not in _RANDOM_MODULE_OK]
                if bad:
                    yield Finding(
                        code="D1", path=source.relpath, line=node.lineno,
                        message="imports the module-level random API "
                                f"({', '.join(bad)}); draw from an "
                                "injected random.Random instead")
            elif node.module == "numpy.random":
                # D6: importing a global-stream draw; generator classes
                # are tracked and checked at their construction sites.
                bad = [alias.name for alias in node.names
                       if alias.name not in _NUMPY_GENERATOR_NAMES]
                if bad:
                    yield Finding(
                        code="D6", path=source.relpath, line=node.lineno,
                        message="imports numpy.random global-stream "
                                f"draws ({', '.join(bad)}); numpy "
                                "randomness is off the execution path")
                for alias in node.names:
                    if alias.name in _NUMPY_GENERATOR_NAMES:
                        imported_np_generators.add(
                            alias.asname or alias.name)
            elif node.module in ("time", "datetime", "uuid", "os",
                                 "secrets"):
                for alias in node.names:
                    if (node.module, alias.name) in _CLOCK_CALLS or \
                            node.module == "secrets":
                        imported_clock_names.add(alias.asname or alias.name)

        if not isinstance(node, ast.Call):
            continue
        func = node.func

        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            # D1: random.<draw>(...) on the global stream.
            if base == "random" and attr not in _RANDOM_MODULE_OK:
                yield Finding(
                    code="D1", path=source.relpath, line=node.lineno,
                    message=f"random.{attr}() draws from the shared "
                            "global stream; use the injected "
                            "random.Random")
            # D2: wall clock / OS entropy.
            if (base, attr) in _CLOCK_CALLS or base == "secrets":
                yield Finding(
                    code="D2", path=source.relpath, line=node.lineno,
                    message=f"{base}.{attr}() is wall-clock/OS entropy; "
                            "executions must be a function of the seed")
            # D5: random.Random(...) mis-seeded.
            if base == "random" and attr in ("Random", "SystemRandom"):
                yield from _check_random_construction(source, node)
        elif isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Attribute) and \
                func.value.attr == "random" and \
                isinstance(func.value.value, ast.Name) and \
                func.value.value.id in _NUMPY_NAMES:
            # D6: np.random.<attr>(...) — global-stream draw, or a
            # generator construction that must be seeded.
            if func.attr in _NUMPY_GENERATOR_NAMES:
                yield from _check_numpy_generator_construction(
                    source, node, f"numpy.random.{func.attr}")
            else:
                yield Finding(
                    code="D6", path=source.relpath, line=node.lineno,
                    message=f"numpy.random.{func.attr}() draws from "
                            "numpy's hidden global RandomState; numpy "
                            "randomness is off the execution path")
        elif isinstance(func, ast.Name):
            if func.id in imported_clock_names:
                yield Finding(
                    code="D2", path=source.relpath, line=node.lineno,
                    message=f"{func.id}() is wall-clock/OS entropy; "
                            "executions must be a function of the seed")
            if func.id == "Random":
                yield from _check_random_construction(source, node)
            if func.id in imported_np_generators:
                yield from _check_numpy_generator_construction(
                    source, node, func.id)

    # D3 / D4 need per-function type context.
    yield from _check_order_and_floats(source)


def _check_random_construction(source: SourceFile,
                               node: ast.Call) -> Iterator[Finding]:
    func_name = node.func.attr if isinstance(node.func, ast.Attribute) \
        else node.func.id
    if func_name == "SystemRandom":
        yield Finding(
            code="D5", path=source.relpath, line=node.lineno,
            message="SystemRandom draws OS entropy and cannot be seeded")
        return
    if not node.args and not node.keywords:
        yield Finding(
            code="D5", path=source.relpath, line=node.lineno,
            message="random.Random() is seeded from OS entropy; pass an "
                    "explicit seed (see repro.determinism.seeded_rng)")
        return
    seed_arg = node.args[0] if node.args else None
    if seed_arg is None:
        for keyword in node.keywords:
            if keyword.arg == "x":
                seed_arg = keyword.value
    if isinstance(seed_arg, ast.Constant) and seed_arg.value is None:
        yield Finding(
            code="D5", path=source.relpath, line=node.lineno,
            message="random.Random(None) is seeded from OS entropy")
        return
    if isinstance(seed_arg, ast.Name):
        enclosing = _enclosing_function(source, node)
        if enclosing is not None and \
                seed_arg.id in _params_defaulting_to_none(enclosing):
            yield Finding(
                code="D5", path=source.relpath, line=node.lineno,
                message=f"random.Random({seed_arg.id}) where "
                        f"{seed_arg.id} defaults to None falls back to "
                        "OS entropy; use repro.determinism.seeded_rng")


def _check_numpy_generator_construction(source: SourceFile, node: ast.Call,
                                        name: str) -> Iterator[Finding]:
    """D6 on ``default_rng``/``RandomState``/bit-generator constructions.

    Mirrors the D5 seeding rules: no argument, a literal ``None``, or a
    first argument naming a parameter that defaults to ``None`` all fall
    back to OS entropy.
    """
    if not node.args and not node.keywords:
        yield Finding(
            code="D6", path=source.relpath, line=node.lineno,
            message=f"{name}() without a seed draws OS entropy; pass an "
                    "explicit seed")
        return
    seed_arg = node.args[0] if node.args else None
    if seed_arg is None and node.keywords:
        seed_arg = node.keywords[0].value
    if isinstance(seed_arg, ast.Constant) and seed_arg.value is None:
        yield Finding(
            code="D6", path=source.relpath, line=node.lineno,
            message=f"{name}(None) is seeded from OS entropy")
        return
    if isinstance(seed_arg, ast.Name):
        enclosing = _enclosing_function(source, node)
        if enclosing is not None and \
                seed_arg.id in _params_defaulting_to_none(enclosing):
            yield Finding(
                code="D6", path=source.relpath, line=node.lineno,
                message=f"{name}({seed_arg.id}) where {seed_arg.id} "
                        "defaults to None falls back to OS entropy")


def _check_order_and_floats(source: SourceFile) -> Iterator[Finding]:
    functions = [node for node in ast.walk(source.tree)
                 if isinstance(node, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]
    for func in functions:
        set_names = _set_typed_names(func)
        for node in ast.walk(func):
            # D3a: list(<set>)[...] / tuple(<set>)[...] — truncation or
            # indexing inherits hash order.
            if isinstance(node, ast.Subscript) and \
                    isinstance(node.value, ast.Call) and \
                    isinstance(node.value.func, ast.Name) and \
                    node.value.func.id in ("list", "tuple") and \
                    node.value.args and \
                    _is_set_typed(node.value.args[0], set_names):
                yield Finding(
                    code="D3", path=source.relpath, line=node.lineno,
                    message="indexing/slicing a list built from a set "
                            "inherits hash order; sort first "
                            "(sorted(...)[:k])")
            # D3b: iterating a set display/builder while drawing from an
            # RNG inside the loop — the draw order follows hash order.
            if isinstance(node, ast.For) and \
                    _is_set_display(node.iter) and \
                    any(_is_rng_draw(stmt) for stmt in node.body):
                yield Finding(
                    code="D3", path=source.relpath, line=node.iter.lineno,
                    message="RNG draws inside iteration over an "
                            "unordered set make the stream depend on "
                            "hash order; iterate sorted(...)")
            # D4: float equality in a predicate.
            if isinstance(node, ast.Compare) and \
                    any(isinstance(op, (ast.Eq, ast.NotEq))
                        for op in node.ops):
                operands = [node.left] + list(node.comparators)
                if any(isinstance(operand, ast.Constant) and
                       isinstance(operand.value, float)
                       for operand in operands):
                    yield Finding(
                        code="D4", path=source.relpath, line=node.lineno,
                        message="float ==/!= in a predicate is "
                                "representation-dependent; compare with "
                                "a tolerance or justify the sentinel")


def _is_set_display(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and \
        isinstance(node.func, ast.Name) and \
        node.func.id in _SET_BUILDERS


def check_determinism(project: ProjectFiles,
                      index: SymbolIndex) -> List[Finding]:
    """Run the D checks over every in-scope file."""
    findings: List[Finding] = []
    for relpath in sorted(project.files):
        source = project.files[relpath]
        if not source.in_determinism_scope:
            continue
        findings.extend(_check_file(source))
    return findings


__all__ = ["check_determinism"]
